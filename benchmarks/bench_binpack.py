"""E9b: bin-packing solver ablation (FFD heuristic vs exact branch-and-bound).

DESIGN.md calls this ablation out: the paper "applies ILP techniques to
obtain the best solution"; we compare our exact solver (equivalent to the
ILP optimum) with first-fit-decreasing on realistic cardinality profiles —
how often FFD is optimal, the bin-count gap when not, and solve times.
"""

import math
import time

import numpy as np
import pytest

from repro.optimizer.binpack import branch_and_bound_pack, first_fit_decreasing
from repro.util.rng import derive_rng


def random_instance(rng, n_items: int):
    """Cardinality-like weights: log-uniform in [2, 5000]."""
    cards = np.exp(rng.uniform(np.log(2), np.log(5000), size=n_items))
    weights = {f"d{i}": float(np.log(c)) for i, c in enumerate(cards)}
    capacity = math.log(100_000)
    return weights, capacity


def test_ffd_vs_exact_gap(benchmark, record_rows):
    rows = benchmark.pedantic(_gap_sweep, rounds=1, iterations=1)
    record_rows("e9b_binpack_ablation", rows)
    # FFD is near-optimal on these profiles but not free of gaps overall;
    # the exact solver must never lose and must stay sub-millisecond-ish.
    assert all(row["ffd_optimal_rate"] >= 0.5 for row in rows)


def _gap_sweep():
    rng = derive_rng(2024)
    rows = []
    for n_items in (6, 8, 10, 12):
        gaps = []
        ffd_times = []
        exact_times = []
        for _ in range(20):
            weights, capacity = random_instance(rng, n_items)
            start = time.perf_counter()
            ffd = first_fit_decreasing(weights, capacity)
            ffd_times.append(time.perf_counter() - start)
            start = time.perf_counter()
            exact = branch_and_bound_pack(weights, capacity)
            exact_times.append(time.perf_counter() - start)
            assert exact.n_bins <= ffd.n_bins
            gaps.append(ffd.n_bins - exact.n_bins)
        rows.append(
            {
                "n_dimensions": n_items,
                "ffd_optimal_rate": round(
                    sum(1 for g in gaps if g == 0) / len(gaps), 2
                ),
                "mean_gap_bins": round(float(np.mean(gaps)), 3),
                "ffd_mean_us": round(float(np.mean(ffd_times)) * 1e6, 1),
                "exact_mean_us": round(float(np.mean(exact_times)) * 1e6, 1),
            }
        )
    return rows


def test_exact_solver_speed(benchmark):
    rng = derive_rng(7)
    weights, capacity = random_instance(rng, 12)
    benchmark(lambda: branch_and_bound_pack(weights, capacity))


def test_ffd_speed(benchmark):
    rng = derive_rng(7)
    weights, capacity = random_instance(rng, 40)
    benchmark(lambda: first_fit_decreasing(weights, capacity))
