"""E8: combining multiple aggregates (§3.3, optimization 2).

"SEEDB combines all view queries with the same group-by attribute into a
single query. This rewriting provides a speed up linear in the number of
aggregate attributes." We sweep the number of measures per dimension and
compare one-query-per-view against one-combined-query-per-dimension:
query count drops from m to 1 and the latency ratio should grow roughly
linearly with m.
"""

import time

import pytest

from repro.backends.memory import MemoryBackend
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic
from repro.model.view import ViewSpec
from repro.optimizer.plan import ExecutionPlan, FlagStep, ViewGroup


@pytest.fixture(scope="module")
def workload():
    dataset = generate_synthetic(
        SyntheticConfig(n_rows=100_000, n_dimensions=1, n_measures=12,
                        cardinality=16),
        seed=7,
    )
    backend = MemoryBackend()
    backend.register_table(dataset.table)
    return backend, dataset


def plans_for(n_measures: int, predicate):
    views = tuple(ViewSpec("d0", f"m{i}", "sum") for i in range(n_measures))
    one_per_view = ExecutionPlan(
        [FlagStep("synthetic", predicate, ViewGroup("d0", (v,))) for v in views]
    )
    combined = ExecutionPlan(
        [FlagStep("synthetic", predicate, ViewGroup("d0", views))]
    )
    return one_per_view, combined


def test_aggregate_combining_sweep(benchmark, record_rows, workload):
    backend, dataset = workload

    def sweep():
        rows = []
        for n_measures in (1, 2, 4, 8, 12):
            separate, combined = plans_for(n_measures, dataset.predicate)
            start = time.perf_counter()
            separate.run(backend)
            separate_seconds = time.perf_counter() - start
            start = time.perf_counter()
            combined.run(backend)
            combined_seconds = time.perf_counter() - start
            rows.append(
                {
                    "n_aggregates": n_measures,
                    "separate_queries": separate.total_queries(),
                    "combined_queries": combined.total_queries(),
                    "separate_s": round(separate_seconds, 5),
                    "combined_s": round(combined_seconds, 5),
                    "speedup": round(separate_seconds / combined_seconds, 2),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_rows("e8_combine_aggregates", rows)
    # Query count is m -> 1 by construction; speedup must grow with m.
    assert rows[0]["separate_queries"] == 1
    assert rows[-1]["separate_queries"] == 12
    assert all(row["combined_queries"] == 1 for row in rows)
    assert rows[-1]["speedup"] > rows[0]["speedup"]
    assert rows[-1]["speedup"] > 3.0  # strongly superlinear saving at m=12


def test_combined_query_latency(benchmark, workload):
    backend, dataset = workload
    _separate, combined = plans_for(12, dataset.predicate)
    benchmark.pedantic(lambda: combined.run(backend), rounds=3, iterations=1)
