"""E9: combining multiple group-bys (§3.3, optimization 3).

Three strategies over the same 8-dimension workload: no combining (one
query per dimension), shared-scan GROUPING SETS, and bin-packed rollup
queries with post-hoc marginalization. Scan counts fall from 8 to 1 to
#bins; results are identical by the equivalence tests. Wall-clock and scan
accounting are recorded per strategy.
"""

import time

import pytest

from repro.backends.memory import MemoryBackend
from repro.core.config import SeeDBConfig
from repro.core.recommender import SeeDB
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic
from repro.db.query import RowSelectQuery
from repro.optimizer.plan import GroupByCombining

NO_PRUNING = dict(
    prune_low_variance=False,
    prune_cardinality=False,
    prune_correlated=False,
)


@pytest.fixture(scope="module")
def workload():
    dataset = generate_synthetic(
        SyntheticConfig(n_rows=100_000, n_dimensions=8, n_measures=2,
                        cardinality=12),
        seed=31,
    )
    backend = MemoryBackend()
    backend.register_table(dataset.table)
    return backend, dataset


def run_mode(backend, dataset, mode, budget=100_000):
    config = SeeDBConfig(
        groupby_combining=mode, memory_budget_cells=budget, **NO_PRUNING
    )
    seedb = SeeDB(backend, config)
    query = RowSelectQuery(dataset.table.name, dataset.predicate)
    backend.engine.stats.reset()
    start = time.perf_counter()
    result = seedb.recommend(query, k=5)
    elapsed = time.perf_counter() - start
    return result, elapsed, backend.engine.stats.snapshot()


def test_groupby_combining_strategies(benchmark, record_rows, workload):
    backend, dataset = workload

    def sweep():
        rows = []
        reference_top = None
        for label, mode in (
            ("none", GroupByCombining.NONE),
            ("grouping_sets", GroupByCombining.GROUPING_SETS),
            ("rollup", GroupByCombining.ROLLUP),
        ):
            result, elapsed, stats = run_mode(backend, dataset, mode)
            rows.append(
                {
                    "strategy": label,
                    "queries": result.n_queries,
                    "view_query_scans": stats.table_scans,
                    "latency_s": round(elapsed, 4),
                }
            )
            top = [v.spec for v in result.recommendations]
            if reference_top is None:
                reference_top = top
            else:
                assert top == reference_top  # strategies agree on the answer
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_rows("e9_combine_groupbys", rows)
    by_strategy = {row["strategy"]: row for row in rows}
    assert by_strategy["grouping_sets"]["queries"] == 1
    assert by_strategy["none"]["queries"] == 8
    assert (
        by_strategy["rollup"]["queries"] < by_strategy["none"]["queries"]
    )


def test_memory_budget_controls_rollup_width(benchmark, record_rows, workload):
    """The working-memory knob: tighter budgets -> more rollup queries."""
    backend, dataset = workload

    def sweep():
        rows = []
        for budget in (100, 2_000, 50_000, 1_000_000):
            result, elapsed, _stats = run_mode(
                backend, dataset, GroupByCombining.ROLLUP, budget=budget
            )
            rows.append(
                {
                    "budget_cells": budget,
                    "queries": result.n_queries,
                    "latency_s": round(elapsed, 4),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_rows("e9_rollup_budget", rows)
    queries = [row["queries"] for row in rows]
    assert queries == sorted(queries, reverse=True)  # monotone non-increasing


def test_grouping_sets_latency(benchmark, workload):
    backend, dataset = workload
    benchmark.pedantic(
        lambda: run_mode(backend, dataset, GroupByCombining.GROUPING_SETS),
        rounds=3,
        iterations=1,
    )
