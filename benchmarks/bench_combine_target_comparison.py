"""E7: combining target and comparison queries (§3.3, optimization 1).

"This simple optimization halves the time required to compute the results
for a single view." Deterministically the rewrite halves DBMS round trips
and table scans; the benchmark verifies both and measures the wall-clock
ratio on the in-memory backend (where scans are cheap, so the wall-clock
gain is smaller than 2x — see EXPERIMENTS.md notes).
"""

import pytest

from repro.backends.memory import MemoryBackend
from repro.model.view import ViewSpec
from repro.optimizer.plan import ExecutionPlan, FlagStep, SeparateStep, ViewGroup

VIEWS = [ViewSpec(f"d{i}", "m0", "sum") for i in range(5)]


@pytest.fixture(scope="module")
def backend(synth_large):
    backend = MemoryBackend()
    backend.register_table(synth_large.table)
    return backend


def make_plan(predicate, combined: bool) -> ExecutionPlan:
    step_type = FlagStep if combined else SeparateStep
    return ExecutionPlan(
        [
            step_type("synthetic", predicate, ViewGroup(v.dimension, (v,)))
            for v in VIEWS
        ]
    )


def test_separate_queries_baseline(benchmark, backend, synth_large):
    plan = make_plan(synth_large.predicate, combined=False)
    backend.engine.stats.reset()
    benchmark.pedantic(lambda: plan.run(backend), rounds=3, iterations=1)
    assert backend.engine.stats.queries == 3 * 2 * len(VIEWS)


def test_combined_flag_queries(benchmark, backend, synth_large, record_rows):
    plan = make_plan(synth_large.predicate, combined=True)
    backend.engine.stats.reset()
    benchmark.pedantic(lambda: plan.run(backend), rounds=3, iterations=1)
    # Exactly half the queries and half the scans of the baseline.
    assert backend.engine.stats.queries == 3 * len(VIEWS)
    record_rows(
        "e7_combine_target_comparison",
        [
            {"plan": "separate", "queries_per_view": 2, "scans_per_view": 2},
            {"plan": "flag-combined", "queries_per_view": 1, "scans_per_view": 1},
        ],
    )


def test_results_identical(benchmark, backend, synth_large):
    benchmark.pedantic(
        lambda: _check_identical(backend, synth_large), rounds=1, iterations=1
    )


def _check_identical(backend, synth_large):
    separate = make_plan(synth_large.predicate, combined=False).run(backend)
    combined = make_plan(synth_large.predicate, combined=True).run(backend)
    import numpy as np

    for view in VIEWS:
        np.testing.assert_allclose(
            separate[view].comparison_values,
            combined[view].comparison_values,
            equal_nan=True,
        )


@pytest.fixture(scope="module")
def sqlite_backend_e7(synth_small):
    from repro.backends.sqlite import SqliteBackend

    backend = SqliteBackend()
    backend.register_table(synth_small.table)
    yield backend
    backend.close()


def test_separate_queries_sqlite(benchmark, sqlite_backend_e7, synth_small):
    """On a scan-bound DBMS the 2x query saving shows up in wall time."""
    plan = make_plan(synth_small.predicate, combined=False)
    benchmark.pedantic(lambda: plan.run(sqlite_backend_e7), rounds=3, iterations=1)


def test_combined_flag_queries_sqlite(benchmark, sqlite_backend_e7, synth_small):
    plan = make_plan(synth_small.predicate, combined=True)
    benchmark.pedantic(lambda: plan.run(sqlite_backend_e7), rounds=3, iterations=1)
