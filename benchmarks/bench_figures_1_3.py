"""E1-E3: Table 1 and Figures 1-3 — the paper's running example.

Benchmarks the full §1 pipeline (filter + group + aggregate producing
Table 1) and records the Figure 2 vs Figure 3 utility comparison for every
metric. Shape assertion: utility(Scenario A) > 5x utility(Scenario B).
"""

import pytest

from repro.experiments.figures import figures_2_3_utilities, verify_table_1


def test_table_1_pipeline(benchmark, record_rows):
    result = benchmark.pedantic(
        lambda: verify_table_1(n_rows=20_000), rounds=3, iterations=1
    )
    assert result["max_abs_error"] < 0.01
    record_rows(
        "e1_table1",
        [
            {"store": store, "computed": value,
             "expected": result["expected"][store]}
            for store, value in result["computed"].items()
        ],
    )


def test_figures_2_3_utilities(benchmark, record_rows):
    rows = benchmark.pedantic(figures_2_3_utilities, rounds=3, iterations=1)
    record_rows("e3_scenario_a_vs_b", rows)
    for row in rows:
        assert row["utility_scenario_a"] > 5 * row["utility_scenario_b"], row
