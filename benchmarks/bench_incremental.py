"""E19 (extension): incremental execution with early termination.

The latency/accuracy trade-off of §1 challenge (d), realized as phased
execution with confidence-based view pruning. Recorded per delta setting:
work saved (fraction of per-view phase executions skipped), top-k
precision vs. the exact run, and wall-clock latency vs. single-shot
execution.
"""

import time

import pytest

from repro.core.incremental import IncrementalRecommender
from repro.core.space import enumerate_views, split_predicate_dimensions
from repro.core.view_processor import ViewProcessor
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic
from repro.metrics.registry import get_metric
from repro.optimizer.plan import ExecutionPlan, FlagStep, ViewGroup
from repro.sampling.accuracy import topk_precision


@pytest.fixture(scope="module")
def workload():
    dataset = generate_synthetic(
        SyntheticConfig(n_rows=120_000, n_dimensions=8, n_measures=2,
                        cardinality=12, planted_dimensions=(0, 4)),
        seed=901,
    )
    views = enumerate_views(dataset.table.schema, functions=("sum", "avg"))
    views, _excluded = split_predicate_dimensions(views, dataset.predicate)
    return dataset, views


def exact_run(dataset, views):
    from repro.backends.memory import MemoryBackend

    backend = MemoryBackend()
    backend.register_table(dataset.table)
    grouped = {}
    for view in views:
        grouped.setdefault(view.dimension, []).append(view)
    plan = ExecutionPlan(
        [
            FlagStep(dataset.table.name, dataset.predicate,
                     ViewGroup(dim, tuple(members)))
            for dim, members in grouped.items()
        ]
    )
    start = time.perf_counter()
    raw = plan.run(backend)
    scored = ViewProcessor(get_metric("js")).score_all(raw)
    elapsed = time.perf_counter() - start
    return {spec: view.utility for spec, view in scored.items()}, elapsed


def test_early_termination_tradeoff(benchmark, record_rows, workload):
    dataset, views = workload
    truth, exact_seconds = exact_run(dataset, views)

    def sweep():
        rows = [
            {
                "configuration": "exact single-shot",
                "work_saved": 0.0,
                "topk_precision": 1.0,
                "latency_s": round(exact_seconds, 4),
            }
        ]
        for label, delta, scale in (
            ("conservative (d=0.05, c=0.25)", 0.05, 0.25),
            ("balanced (d=0.2, c=0.25)", 0.2, 0.25),
            ("aggressive (d=0.2, c=0.1)", 0.2, 0.1),
        ):
            recommender = IncrementalRecommender(dataset.table, metric="js")
            start = time.perf_counter()
            result = recommender.recommend(
                dataset.predicate, views, k=5, n_phases=10, delta=delta,
                epsilon_scale=scale,
            )
            elapsed = time.perf_counter() - start
            rows.append(
                {
                    "configuration": label,
                    "work_saved": round(result.work_saved_fraction, 3),
                    "topk_precision": round(
                        topk_precision(truth, result.utilities, k=5), 2
                    ),
                    "latency_s": round(elapsed, 4),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_rows("e19_incremental", rows)
    # Shape: more aggressive settings save more work; precision stays high.
    saved = [row["work_saved"] for row in rows]
    assert saved == sorted(saved), rows
    assert saved[-1] > 0.2, rows
    for row in rows:
        assert row["topk_precision"] >= 0.8, row
