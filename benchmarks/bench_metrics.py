"""E18: distance metrics — cost and ranking agreement (§2).

Per-metric scoring cost on realistic view distributions, plus the pairwise
Kendall-tau agreement between the rankings different metrics induce over
the same view space — quantifying "how the choice of metric affects view
quality".
"""

import numpy as np
import pytest

from repro.backends.memory import MemoryBackend
from repro.core.config import SeeDBConfig
from repro.core.recommender import SeeDB
from repro.db.query import RowSelectQuery
from repro.metrics.normalize import normalize_distribution
from repro.metrics.registry import available_metrics, get_metric
from repro.sampling.accuracy import kendall_tau
from repro.util.rng import derive_rng


@pytest.fixture(scope="module")
def distribution_pairs():
    rng = derive_rng(601)
    pairs = []
    for _ in range(200):
        size = int(rng.integers(4, 50))
        pairs.append(
            (
                normalize_distribution(rng.dirichlet(np.ones(size))),
                normalize_distribution(rng.dirichlet(np.ones(size))),
            )
        )
    return pairs


@pytest.mark.parametrize("metric_name", ["emd", "euclidean", "kl", "js",
                                         "chisquare", "total_variation"])
def test_metric_scoring_cost(benchmark, metric_name, distribution_pairs):
    metric = get_metric(metric_name)

    def score_all():
        return sum(metric.distance(p, q) for p, q in distribution_pairs)

    total = benchmark(score_all)
    assert total > 0


def test_metric_ranking_agreement(benchmark, record_rows, synth_small):
    rows = benchmark.pedantic(
        lambda: _agreement_rows(synth_small), rounds=1, iterations=1
    )
    record_rows("e18_metric_agreement", rows)
    # All metrics measure deviation: rankings correlate positively overall.
    taus = [row["kendall_tau"] for row in rows]
    assert np.mean(taus) > 0.3
    # But not perfectly -- the metric choice genuinely matters.
    assert min(taus) < 0.95


def _agreement_rows(synth_small):
    backend = MemoryBackend()
    backend.register_table(synth_small.table)
    query = RowSelectQuery(synth_small.table.name, synth_small.predicate)
    utilities = {}
    for metric in available_metrics():
        config = SeeDBConfig(metric=metric, prune_correlated=False)
        result = SeeDB(backend, config).recommend(query, k=5)
        utilities[metric] = result.utilities

    rows = []
    names = available_metrics()
    for i, metric_a in enumerate(names):
        for metric_b in names[i + 1 :]:
            rows.append(
                {
                    "metric_a": metric_a,
                    "metric_b": metric_b,
                    "kendall_tau": round(
                        kendall_tau(utilities[metric_a], utilities[metric_b]), 3
                    ),
                }
            )
    return rows
