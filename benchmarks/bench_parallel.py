"""E11: parallel query execution (§3.3, last optimization).

"We observe that as the number of queries executed in parallel increases,
the total latency decreases at the cost of increased per query execution
time." The workload is a plan of independent per-dimension steps on the
SQLite backend (whose C-level execution releases the GIL, so threads give
real concurrency); we sweep the worker count and record both total and
mean per-step latency.

Executors run in the engines' production mode — bounded views over the
process-wide shared :class:`WorkerPool`, warmed before timing — so the
numbers reflect steady-state service throughput, not cold pool startup
(the old sweep built a throwaway executor per run and paid thread-spawn
cost inside every measurement).
"""

import os

import pytest

from repro.backends.sqlite import SqliteBackend
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic
from repro.model.view import ViewSpec
from repro.optimizer.parallel import (
    DEFAULT_MAX_TOTAL_WORKERS,
    ParallelExecutor,
    configure_shared_pool,
    get_shared_pool,
)
from repro.optimizer.plan import ExecutionPlan, FlagStep, ViewGroup

#: The sweep goes up to 8 workers; on small machines the shared pool's
#: default bound (cpu-derived) would silently cap effective parallelism
#: below the row label, so widen it for the sweep and restore after.
SWEEP_MAX_WORKERS = 8


@pytest.fixture(scope="module")
def workload():
    dataset = generate_synthetic(
        SyntheticConfig(n_rows=60_000, n_dimensions=12, n_measures=2,
                        cardinality=10),
        seed=55,
    )
    backend = SqliteBackend()
    backend.register_table(dataset.table)
    views = [ViewSpec(f"d{i}", "m0", "sum") for i in range(12)]
    plan = ExecutionPlan(
        [
            FlagStep(dataset.table.name, dataset.predicate,
                     ViewGroup(v.dimension, (v,)))
            for v in views
        ]
    )
    yield backend, plan
    backend.close()


def test_parallelism_sweep(benchmark, record_rows, workload):
    backend, plan = workload
    n_cores = len(os.sched_getaffinity(0))
    pool = configure_shared_pool(
        max(SWEEP_MAX_WORKERS, DEFAULT_MAX_TOTAL_WORKERS)
    )

    def sweep():
        rows = []
        for n_workers in (1, 2, 4, 8):
            # One persistent shared-pool executor per configuration, with a
            # warmup run before timing: measurements see warm threads, the
            # steady state a long-lived service actually runs in.
            executor = ParallelExecutor(n_workers, pool=pool)
            executor.run(plan, backend)
            # Best-of-2 per configuration: thread scheduling on small
            # containers is noisy and a single run misleads.
            reports = [executor.run(plan, backend)[1] for _ in range(2)]
            best = min(reports, key=lambda r: r.total_seconds)
            rows.append(
                {
                    "workers": n_workers,
                    "cores": n_cores,
                    "pool_reuses": executor.pool_reuses,
                    "total_s": round(best.total_seconds, 4),
                    "mean_per_step_s": round(best.mean_step_seconds, 4),
                    "max_step_s": round(best.max_step_seconds, 4),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    configure_shared_pool(DEFAULT_MAX_TOTAL_WORKERS)  # restore the default
    record_rows("e11_parallelism", rows)
    by_workers = {row["workers"]: row for row in rows}
    # Per-query latency rises under concurrency — the robust half of the
    # paper's claim, visible even on core-limited containers.
    assert (
        by_workers[8]["mean_per_step_s"]
        >= by_workers[1]["mean_per_step_s"] * 0.8
    )
    # Total latency: parallelism must not be pathological, and on machines
    # with real parallel headroom it must win outright.
    best_parallel = min(
        by_workers[n]["total_s"] for n in (2, 4, 8)
    )
    assert best_parallel <= by_workers[1]["total_s"] * 1.2
    if n_cores >= 4:
        assert best_parallel < by_workers[1]["total_s"] * 0.95


def test_four_workers_latency(benchmark, workload):
    backend, plan = workload
    executor = ParallelExecutor(4, pool=get_shared_pool())
    executor.run(plan, backend)  # warm the shared pool before timing
    benchmark.pedantic(lambda: executor.run(plan, backend), rounds=3, iterations=1)
