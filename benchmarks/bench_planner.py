"""E21: cost-based planning vs the static capability branch.

The static resolution of ``groupby_combining=AUTO`` knows only what the
backend *declares* (grouping sets → shared scan, else rollup); it cannot
see the data. This benchmark builds the workload that punishes that
blindness: SQLite (no native grouping sets, so static AUTO picks ROLLUP)
with high-cardinality dimensions, where each rollup bin materializes a
near-row-count cross product that the client then fetches and
marginalizes. The cost-based planner prices that group blow-up and picks
the single-statement UNION ALL grouping-sets plan instead.

Headline: ``planner_vs_static_ratio`` — end-to-end static/cost-based
wall clock on the adversarial workload, gated > 1.0 by
``check_trend.py``. The run also asserts what must not move: the same
top-k views with utilities equal to the rollup path's documented
marginalization tolerance (summation order, ~1e-15), and a control
workload where both planners agree.
"""

import time

import numpy as np
import pytest

from repro.backends.sqlite import SqliteBackend
from repro.core.config import SeeDBConfig
from repro.core.recommender import SeeDB
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic
from repro.db.query import RowSelectQuery
from repro.optimizer.plan import GroupByCombining

#: The acceptance bar: cost-based must beat static on the adversarial
#: workload (check_trend's portable floor for the ratio is 1.0).
MIN_RATIO = 1.05
REPETITIONS = 3
#: Rollup marginalization sums groups in a different order than a direct
#: group-by; utilities agree to summation-order noise (same bar as the
#: plan-equivalence property tests).
UTILITY_ATOL = 1e-9


@pytest.fixture(scope="module")
def adversarial_workload():
    """30k rows, four ~150-cardinality dimensions: rollup bins degenerate
    to near-row-count results while grouping-set arms return ~150 rows."""
    dataset = generate_synthetic(
        SyntheticConfig(
            n_rows=30_000, n_dimensions=4, n_measures=2, cardinality=150
        ),
        seed=11,
    )
    return dataset, RowSelectQuery(dataset.table.name, dataset.predicate)


@pytest.fixture(scope="module")
def control_workload():
    """Low-cardinality control: the static choice is already right."""
    dataset = generate_synthetic(
        SyntheticConfig(
            n_rows=30_000, n_dimensions=4, n_measures=2, cardinality=8
        ),
        seed=12,
    )
    return dataset, RowSelectQuery(dataset.table.name, dataset.predicate)


def _config(cost_based: bool) -> SeeDBConfig:
    return SeeDBConfig(
        groupby_combining=GroupByCombining.AUTO,
        cost_based_planning=cost_based,
        # Execute the whole view space: the benchmark measures plan
        # execution, not the pruning rules.
        prune_low_variance=False,
        prune_cardinality=False,
        prune_correlated=False,
        exclude_predicate_dimensions=False,
    )


def _measure(workload, cost_based: bool):
    """Best-of-N end-to-end recommend on a fresh sqlite backend.

    One SeeDB session across repetitions: both planners get warm caches,
    and the cost-based side's statistics pass amortizes exactly as it
    does in service deployments.
    """
    dataset, query = workload
    backend = SqliteBackend()
    backend.register_table(dataset.table)
    result, best = None, None
    with SeeDB(backend, _config(cost_based)) as seedb:
        for _ in range(REPETITIONS):
            start = time.perf_counter()
            result = seedb.recommend(query, k=5)
            elapsed = time.perf_counter() - start
            best = elapsed if best is None or elapsed < best else best
    queries = backend.queries_executed
    backend.close()
    return result, best, queries


def _assert_same_answers(a, b):
    assert [v.spec for v in a.recommendations] == [
        v.spec for v in b.recommendations
    ]
    assert set(a.utilities) == set(b.utilities)
    for spec, utility in a.utilities.items():
        np.testing.assert_allclose(
            utility, b.utilities[spec], atol=UTILITY_ATOL, err_msg=spec.label
        )


def test_planner_beats_static_on_adversarial_workload(
    record_rows, adversarial_workload, control_workload
):
    rows = []
    cost_result, cost_seconds, cost_queries = _measure(adversarial_workload, True)
    static_result, static_seconds, static_queries = _measure(
        adversarial_workload, False
    )
    _assert_same_answers(cost_result, static_result)

    decision = cost_result.plan_decision
    # The adversarial premise: static AUTO on sqlite resolves to rollup,
    # the cost model steers away from it.
    assert "rollup" in static_result.plan_description
    assert decision["kind"] != "rollup"
    assert decision["cost_based"] is True

    ratio = static_seconds / cost_seconds
    for mode, result, seconds, queries in (
        ("cost_based", cost_result, cost_seconds, cost_queries),
        ("static", static_result, static_seconds, static_queries),
    ):
        rows.append(
            {
                "workload": "adversarial_high_cardinality",
                "mode": mode,
                "plan_kind": (
                    result.plan_decision["kind"]
                    if result.plan_decision
                    else "static_auto"
                ),
                "total_seconds": seconds,
                "execute_seconds": result.stopwatch.phases["execute"],
                "queries_executed": queries,
                "n_views": result.n_executed_views,
            }
        )

    control_cost, control_cost_seconds, _ = _measure(control_workload, True)
    control_static, control_static_seconds, _ = _measure(control_workload, False)
    _assert_same_answers(control_cost, control_static)
    control_ratio = control_static_seconds / control_cost_seconds
    rows.append(
        {
            "workload": "control_low_cardinality",
            "mode": "cost_based",
            "plan_kind": control_cost.plan_decision["kind"],
            "total_seconds": control_cost_seconds,
        }
    )
    rows.append(
        {
            "workload": "summary",
            "mode": "ratio",
            "planner_vs_static_ratio": round(ratio, 3),
            "control_ratio": round(control_ratio, 3),
            "predicted_seconds": decision["predicted_seconds"],
            "observed_seconds": decision["observed_seconds"],
        }
    )
    record_rows("planner", rows)

    assert ratio >= MIN_RATIO, (
        f"cost-based planning only {ratio:.2f}x vs static "
        f"({static_seconds:.4f}s -> {cost_seconds:.4f}s)"
    )
    # The control must not regress materially: when static is already
    # right, cost-based pays only the (cached) statistics pass.
    assert control_ratio >= 0.8, (
        f"cost-based planning slowed the control workload {control_ratio:.2f}x"
    )
