"""Progressive delivery: time-to-first-recommendation vs full-batch latency.

The point of ``recommend_iter()`` / ``POST /recommend/stream`` is that an
analyst sees a useful top-k long before the full pipeline finishes
(§1: "analysis must happen in real-time"). Measured per workload size:

* ``first_round_latency_s`` — wall-clock until the first
  :class:`~repro.api.PartialResult` arrives (the stream's "time to first
  recommendation");
* ``stream_total_latency_s`` — until the final round (full incremental
  execution, delivered progressively);
* ``batch_latency_s`` — the blocking batch ``recommend()`` for the same
  request;
* ``first_round_topk_precision`` — how much of the definitive top-k the
  first round already gets right.

Asserts the first partial arrives well before the batch answer and emits
``BENCH_progressive.json`` for the perf-smoke CI trajectory.
"""

import time

import pytest

from repro.api import RecommendationRequest
from repro.backends.memory import MemoryBackend
from repro.core.config import SeeDBConfig
from repro.core.recommender import SeeDB
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic
from repro.db.query import RowSelectQuery

K = 5
N_PHASES = 10
WORKLOAD_SIZES = (60_000, 150_000)


@pytest.fixture(scope="module")
def workloads():
    return [
        (
            n_rows,
            generate_synthetic(
                SyntheticConfig(
                    n_rows=n_rows,
                    n_dimensions=8,
                    n_measures=2,
                    cardinality=12,
                    planted_dimensions=(0, 4),
                ),
                seed=907,
            ),
        )
        for n_rows in WORKLOAD_SIZES
    ]


def run_once(seedb, request):
    """One streamed run: (first-round latency, total latency, rounds)."""
    start = time.perf_counter()
    first_latency = None
    rounds = []
    for partial in seedb.recommend_iter(request):
        if first_latency is None:
            first_latency = time.perf_counter() - start
        rounds.append(partial)
    total = time.perf_counter() - start
    return first_latency, total, rounds


def measure(n_rows, dataset):
    backend = MemoryBackend()
    backend.register_table(dataset.table)
    request = RecommendationRequest(
        target=RowSelectQuery(dataset.table.name, dataset.predicate),
        k=K,
        options={"n_phases": N_PHASES},
    )
    with SeeDB(backend, SeeDBConfig(k=K)) as seedb:
        # Warm the engine cache so both paths start from the same state.
        seedb.recommend(request)
        batch_start = time.perf_counter()
        seedb.recommend(request)
        batch_latency = time.perf_counter() - batch_start
        first_latency, stream_total, rounds = run_once(seedb, request)

    final = rounds[-1]
    assert final.is_final
    # Every phase yields a round, plus the definitive final round.
    assert len(rounds) == N_PHASES + 1
    definitive = {view.spec for view in final.result.recommendations}
    first_topk = {view.spec for view in rounds[0].recommendations}
    precision = len(definitive & first_topk) / max(len(definitive), 1)
    return {
        "n_rows": n_rows,
        "n_phases": N_PHASES,
        "first_round_latency_s": round(first_latency, 4),
        "stream_total_latency_s": round(stream_total, 4),
        "batch_latency_s": round(batch_latency, 4),
        "speedup_to_first": round(batch_latency / first_latency, 2),
        "first_round_topk_precision": round(precision, 2),
        "rounds_delivered": len(rounds),
    }


def test_time_to_first_recommendation(benchmark, record_rows, workloads):
    rows = benchmark.pedantic(
        lambda: [measure(n_rows, dataset) for n_rows, dataset in workloads],
        rounds=1,
        iterations=1,
    )
    record_rows("progressive", rows)

    # The stream's first useful answer must beat the full batch answer on
    # every workload — otherwise progressive delivery buys nothing. Phased
    # execution does ~1/n_phases of the work before the first round, so
    # this bar is low even on noisy shared runners.
    for row in rows:
        assert row["first_round_latency_s"] < row["batch_latency_s"], rows
