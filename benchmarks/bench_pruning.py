"""E17: view-space pruning — work saved vs quality retained (§3.3).

The workload plants everything the three pruning families exist for: a
constant column (variance), bijective copies of two dimensions
(correlation), and an access log that has only ever touched half the
columns (access frequency). Recorded per rule: views pruned, queries
saved, and whether the planted top-k survives.
"""

import time

import pytest

from repro.backends.memory import MemoryBackend
from repro.core.config import SeeDBConfig
from repro.core.recommender import SeeDB
from repro.datasets.synthetic import (
    SyntheticConfig,
    add_constant_column,
    add_correlated_copy,
    generate_synthetic,
)
from repro.db.query import RowSelectQuery
from repro.metadata.collector import MetadataCollector
from repro.metadata.access_log import AccessLog


@pytest.fixture(scope="module")
def workload():
    dataset = generate_synthetic(
        SyntheticConfig(n_rows=60_000, n_dimensions=5, n_measures=2,
                        cardinality=12, planted_dimensions=(0,)),
        seed=501,
    )
    table = add_constant_column(dataset.table, "constant_dim")
    table = add_correlated_copy(table, "d1", "d1_alias", seed=1)
    table = add_correlated_copy(table, "d2", "d2_alias", seed=2)
    return dataset, table


def run_config(table, predicate, config, access_log=None):
    backend = MemoryBackend()
    backend.register_table(table)
    collector = None
    if access_log is not None:
        collector = MetadataCollector(access_log=access_log)
    seedb = SeeDB(backend, config, metadata_collector=collector)
    query = RowSelectQuery(table.name, predicate)
    start = time.perf_counter()
    result = seedb.recommend(query, k=5)
    return result, time.perf_counter() - start


def test_pruning_rules_ablation(benchmark, record_rows, workload):
    rows = benchmark.pedantic(
        lambda: _pruning_sweep(workload), rounds=1, iterations=1
    )
    record_rows("e17_pruning", rows)
    by_rule = {row["rules"]: row for row in rows}
    assert by_rule["variance"]["views_executed"] < by_rule["none"]["views_executed"]
    assert by_rule["correlation"]["views_executed"] < by_rule["none"]["views_executed"]
    assert by_rule["access_frequency"]["views_executed"] < by_rule["none"]["views_executed"]
    # Metadata-driven pruning must not disturb the recommended set.
    assert by_rule["all_metadata_rules"]["top5_overlap_vs_unpruned"] >= 0.8


def _pruning_sweep(workload):
    dataset, table = workload
    none = SeeDBConfig(
        prune_low_variance=False, prune_cardinality=False,
        prune_correlated=False, prune_rare_access=False,
    )
    baseline, baseline_seconds = run_config(table, dataset.predicate, none)
    baseline_top = {v.spec for v in baseline.recommendations}

    configurations = [
        ("none", none, None),
        ("variance", none.with_overrides(prune_low_variance=True), None),
        ("correlation", none.with_overrides(prune_correlated=True), None),
        ("all_metadata_rules", SeeDBConfig(prune_rare_access=False), None),
    ]
    # Access-frequency config: history that never touched d3/d4/m1.
    log = AccessLog()
    for _ in range(30):
        log.record_columns(table.name, {"d0", "d1", "d2", "m0", "segment"})
    configurations.append(
        (
            "access_frequency",
            none.with_overrides(prune_rare_access=True, min_access_frequency=0.2),
            log,
        )
    )

    rows = []
    for label, config, access_log in configurations:
        result, elapsed = run_config(table, dataset.predicate, config, access_log)
        kept_top = {v.spec for v in result.recommendations}
        rows.append(
            {
                "rules": label,
                "views_executed": result.n_executed_views,
                "views_pruned": len(result.pruned_views()),
                "queries": result.n_queries,
                "latency_s": round(elapsed, 4),
                "top5_overlap_vs_unpruned": round(
                    len(kept_top & baseline_top) / 5, 2
                ),
            }
        )
    return rows


def test_pruned_recommendation_latency(benchmark, workload):
    dataset, table = workload
    backend = MemoryBackend()
    backend.register_table(table)
    seedb = SeeDB(backend, SeeDBConfig())
    query = RowSelectQuery(table.name, dataset.predicate)
    benchmark.pedantic(lambda: seedb.recommend(query, k=5), rounds=3, iterations=1)
