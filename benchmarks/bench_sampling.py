"""E10: the sampling optimization — latency vs accuracy (§3.3).

"We construct a sample of the dataset that can fit in memory and run all
view queries against the sample. However, as expected, the sampling
technique and size of the sample both affect view accuracy." Sweep the
fraction on a 200k-row workload and record latency, top-k precision,
Kendall's tau, and mean utility error against the exact run. Includes the
sampler-choice ablation (Bernoulli vs stratified on zipf-skewed data).
"""

import pytest

from repro.core.view_processor import ViewProcessor
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic
from repro.experiments.accuracy import sampling_accuracy_sweep
from repro.metrics.registry import get_metric
from repro.model.view import ViewSpec
from repro.optimizer.plan import ExecutionPlan, FlagStep, ViewGroup
from repro.sampling import BernoulliSampler, StratifiedSampler, topk_precision


def test_sampling_fraction_sweep(benchmark, record_rows, synth_large):
    rows = benchmark.pedantic(
        lambda: sampling_accuracy_sweep(
            synth_large, fractions=[0.5, 0.2, 0.1, 0.05, 0.01], k=5
        ),
        rounds=1,
        iterations=1,
    )
    record_rows("e10_sampling_fractions", rows)
    # Accuracy degrades gracefully: error grows as the fraction shrinks...
    errors = [row["mean_abs_error"] for row in rows]
    assert errors == sorted(errors)
    # ...while the recommended set stays nearly intact down to 5%.
    for row in rows:
        if row["fraction"] >= 0.05:
            assert row["topk_precision"] >= 0.6, row
    # Latency at 1% must clearly beat exact.
    assert rows[-1]["latency_s"] < rows[0]["latency_s"]


def test_recommend_on_one_percent_sample(benchmark, synth_large):
    from repro.backends.memory import MemoryBackend
    from repro.core.config import SeeDBConfig
    from repro.core.recommender import SeeDB
    from repro.db.query import RowSelectQuery

    backend = MemoryBackend()
    backend.register_table(synth_large.table)
    config = SeeDBConfig(sample_fraction=0.01, min_rows_for_sampling=0,
                         prune_correlated=False)
    seedb = SeeDB(backend, config)
    query = RowSelectQuery(synth_large.table.name, synth_large.predicate)
    benchmark.pedantic(lambda: seedb.recommend(query, k=5), rounds=3, iterations=1)


def _utilities_on(table, predicate, views):
    from repro.backends.memory import MemoryBackend

    backend = MemoryBackend()
    backend.register_table(table)
    plan = ExecutionPlan(
        [FlagStep(table.name, predicate, ViewGroup(v.dimension, (v,))) for v in views]
    )
    processor = ViewProcessor(get_metric("js"))
    return {
        spec: scored.utility
        for spec, scored in processor.score_all(plan.run(backend)).items()
    }


def test_sampler_choice_ablation(benchmark, record_rows):
    """Stratified sampling preserves rankings better on skewed dimensions."""
    dataset = generate_synthetic(
        SyntheticConfig(
            n_rows=150_000,
            n_dimensions=4,
            n_measures=1,
            cardinality=30,
            dimension_distribution="zipf",
            zipf_exponent=1.8,
        ),
        seed=77,
    )
    views = [ViewSpec(f"d{i}", "m0", "sum") for i in range(4)] + [
        ViewSpec(f"d{i}", None, "count") for i in range(4)
    ]
    exact = _utilities_on(dataset.table, dataset.predicate, views)

    def sweep():
        rows = []
        for fraction in (0.05, 0.01):
            for label, sampler in (
                ("bernoulli", BernoulliSampler(fraction)),
                ("stratified_d0", StratifiedSampler("d0", fraction, min_per_stratum=3)),
            ):
                precisions = []
                for seed in range(3):
                    sample = sampler.sample(dataset.table, seed=seed)
                    sample = sample.rename(dataset.table.name)
                    estimated = _utilities_on(sample, dataset.predicate, views)
                    precisions.append(topk_precision(exact, estimated, k=3))
                rows.append(
                    {
                        "fraction": fraction,
                        "sampler": label,
                        "mean_topk_precision": round(sum(precisions) / 3, 3),
                    }
                )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_rows("e10b_sampler_ablation", rows)
    assert all(0.0 <= row["mean_topk_precision"] <= 1.0 for row in rows)
