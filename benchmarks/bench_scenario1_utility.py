"""E12: demo Scenario 1 — recommendation quality per distance metric.

Planted-deviation synthetic data gives objective ground truth; every
registered metric is scored by precision@5 against it, reproducing the
demo's "experiment with a variety of distance metrics and observe the
effects on the resulting views".
"""

import pytest

from repro.backends.memory import MemoryBackend
from repro.core.config import SeeDBConfig
from repro.core.recommender import SeeDB
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic
from repro.db.query import RowSelectQuery
from repro.experiments.accuracy import metric_quality_on_planted


@pytest.fixture(scope="module")
def planted():
    return generate_synthetic(
        SyntheticConfig(
            n_rows=80_000,
            n_dimensions=6,
            n_measures=2,
            cardinality=14,
            planted_dimensions=(0, 3),
        ),
        seed=301,
    )


def test_metric_quality_table(benchmark, record_rows, planted):
    rows = benchmark.pedantic(
        lambda: metric_quality_on_planted(planted, k=5), rounds=1, iterations=1
    )
    record_rows("e12_metric_quality", rows)
    assert len(rows) >= 7
    for row in rows:
        assert row["precision_at_k"] >= 0.6, row
    # The default metric must be at the top of its game on planted data.
    js_row = next(row for row in rows if row["metric"] == "js")
    assert js_row["precision_at_k"] >= 0.8


def test_recommendation_latency_on_planted(benchmark, planted):
    backend = MemoryBackend()
    backend.register_table(planted.table)
    seedb = SeeDB(backend, SeeDBConfig(prune_correlated=False))
    query = RowSelectQuery(planted.table.name, planted.predicate)
    result = benchmark.pedantic(
        lambda: seedb.recommend(query, k=5), rounds=3, iterations=1
    )
    planted_dimensions = set(planted.planted_dimensions)
    top_dimensions = {v.spec.dimension for v in result.recommendations}
    assert top_dimensions <= planted_dimensions
