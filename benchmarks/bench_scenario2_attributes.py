"""E14: Scenario 2 knob — number of attributes.

The view space grows quadratically in attributes (E6), so latency grows
superlinearly for the basic framework; aggregate+group-by combining makes
the optimized configuration grow with the number of *dimensions* (queries)
rather than views.
"""

import time

import pytest

from repro.backends.memory import MemoryBackend
from repro.core.basic import BasicFramework
from repro.core.config import SeeDBConfig
from repro.core.recommender import SeeDB
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic
from repro.db.query import RowSelectQuery
from repro.optimizer.plan import GroupByCombining

ATTRIBUTE_COUNTS = (4, 8, 16, 24)

OPTIMIZED = SeeDBConfig(
    groupby_combining=GroupByCombining.GROUPING_SETS,
    prune_low_variance=False,
    prune_cardinality=False,
    prune_correlated=False,
)


def make_workload(n_attributes: int):
    dataset = generate_synthetic(
        SyntheticConfig(
            n_rows=30_000,
            n_dimensions=n_attributes // 2,
            n_measures=n_attributes - n_attributes // 2,
            cardinality=10,
        ),
        seed=402,
    )
    backend = MemoryBackend()
    backend.register_table(dataset.table)
    return backend, dataset


def test_latency_vs_attributes(benchmark, record_rows):
    rows = benchmark.pedantic(_attribute_sweep, rounds=1, iterations=1)
    record_rows("e14_attributes", rows)
    views = [row["views"] for row in rows]
    # Quadratic-ish view growth: 6x attributes -> far more than 6x views.
    assert views[-1] > 6 * views[0]
    for row in rows:
        assert row["optimized_s"] < row["basic_s"], row
    # Optimized query count tracks dimensions (1-2 GS queries), basic 2x views.
    assert rows[-1]["optimized_queries"] <= 4
    assert rows[-1]["basic_queries"] == 2 * rows[-1]["views"]


def _attribute_sweep():
    rows = []
    for n_attributes in ATTRIBUTE_COUNTS:
        backend, dataset = make_workload(n_attributes)
        query = RowSelectQuery(dataset.table.name, dataset.predicate)

        basic = BasicFramework(backend)
        start = time.perf_counter()
        basic_result = basic.recommend(query, k=5)
        basic_seconds = time.perf_counter() - start

        seedb = SeeDB(backend, OPTIMIZED)
        start = time.perf_counter()
        optimized_result = seedb.recommend(query, k=5)
        optimized_seconds = time.perf_counter() - start

        rows.append(
            {
                "attributes": n_attributes,
                "views": basic_result.n_executed_views,
                "basic_s": round(basic_seconds, 4),
                "optimized_s": round(optimized_seconds, 4),
                "basic_queries": basic_result.n_queries,
                "optimized_queries": optimized_result.n_queries,
            }
        )
    return rows


def test_optimized_latency_at_24_attributes(benchmark):
    backend, dataset = make_workload(24)
    seedb = SeeDB(backend, OPTIMIZED)
    query = RowSelectQuery(dataset.table.name, dataset.predicate)
    benchmark.pedantic(lambda: seedb.recommend(query, k=5), rounds=3, iterations=1)
