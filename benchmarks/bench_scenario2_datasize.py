"""E13: Scenario 2 knob — data size.

Latency of the basic framework vs optimized SeeDB as rows grow. The shape
the demo showcases: both grow roughly linearly in rows, the optimized
configuration stays well below the baseline, and the gap is explained by
the deterministic scan counts recorded alongside.
"""

import time

import pytest

from repro.backends.memory import MemoryBackend
from repro.core.basic import BasicFramework
from repro.core.config import SeeDBConfig
from repro.core.recommender import SeeDB
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic
from repro.db.query import RowSelectQuery
from repro.optimizer.plan import GroupByCombining

SIZES = (20_000, 50_000, 100_000, 200_000)

OPTIMIZED = SeeDBConfig(
    groupby_combining=GroupByCombining.GROUPING_SETS,
    prune_low_variance=False,
    prune_cardinality=False,
    prune_correlated=False,
)


def make_workload(n_rows: int):
    dataset = generate_synthetic(
        SyntheticConfig(n_rows=n_rows, n_dimensions=5, n_measures=2,
                        cardinality=16),
        seed=401,
    )
    backend = MemoryBackend()
    backend.register_table(dataset.table)
    return backend, dataset


def test_latency_vs_datasize(benchmark, record_rows):
    rows = benchmark.pedantic(_datasize_sweep, rounds=1, iterations=1)
    record_rows("e13_datasize", rows)
    # Shape: the optimized configuration has fixed planning/merging
    # overheads, so there is a crossover — it must win clearly at scale
    # and its advantage must grow with the data size. (Threshold 1.25
    # rather than the ~1.8 typically measured: 2-core CI containers under
    # concurrent load compress wall-clock ratios.)
    speedups = [row["speedup"] for row in rows]
    assert speedups[-1] > 1.25, rows
    assert speedups[-1] > speedups[0], rows
    for row in rows:
        if row["rows"] >= 100_000:
            assert row["optimized_s"] < row["basic_s"], row


def _datasize_sweep():
    rows = []
    for n_rows in SIZES:
        backend, dataset = make_workload(n_rows)
        query = RowSelectQuery(dataset.table.name, dataset.predicate)

        basic = BasicFramework(backend)
        start = time.perf_counter()
        basic_result = basic.recommend(query, k=5)
        basic_seconds = time.perf_counter() - start

        seedb = SeeDB(backend, OPTIMIZED)
        start = time.perf_counter()
        optimized_result = seedb.recommend(query, k=5)
        optimized_seconds = time.perf_counter() - start

        rows.append(
            {
                "rows": n_rows,
                "basic_s": round(basic_seconds, 4),
                "optimized_s": round(optimized_seconds, 4),
                "speedup": round(basic_seconds / optimized_seconds, 2),
                "basic_queries": basic_result.n_queries,
                "optimized_queries": optimized_result.n_queries,
            }
        )
        # Same recommendations either way.
        assert [v.spec for v in basic_result.recommendations] == [
            v.spec for v in optimized_result.recommendations
        ]
    return rows


def test_optimized_latency_at_200k(benchmark):
    backend, dataset = make_workload(200_000)
    seedb = SeeDB(backend, OPTIMIZED)
    query = RowSelectQuery(dataset.table.name, dataset.predicate)
    benchmark.pedantic(lambda: seedb.recommend(query, k=5), rounds=3, iterations=1)
