"""E15: Scenario 2 knob — data distribution.

Latency and recommendation quality across dimension-value distributions
(uniform, mild/strong zipf, normal). Skew changes group-size profiles —
and therefore sampling risk — but must not change exactness or blow up
latency on the shared-scan engine.
"""

import time

import pytest

from repro.backends.memory import MemoryBackend
from repro.core.config import SeeDBConfig
from repro.core.recommender import SeeDB
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic
from repro.db.query import RowSelectQuery
from repro.experiments.accuracy import precision_at_k

PROFILES = (
    ("uniform", dict(dimension_distribution="uniform")),
    ("zipf_1.1", dict(dimension_distribution="zipf", zipf_exponent=1.1)),
    ("zipf_2.0", dict(dimension_distribution="zipf", zipf_exponent=2.0)),
    ("normal", dict(dimension_distribution="normal")),
)


def make_dataset(overrides):
    return generate_synthetic(
        SyntheticConfig(
            n_rows=60_000, n_dimensions=5, n_measures=2, cardinality=20,
            **overrides,
        ),
        seed=403,
    )


def test_latency_and_quality_vs_distribution(benchmark, record_rows):
    rows = benchmark.pedantic(_distribution_sweep, rounds=1, iterations=1)
    record_rows("e15_distribution", rows)
    latencies = [row["latency_s"] for row in rows]
    # No distribution should be pathologically slower than another (4x band).
    assert max(latencies) < 4 * min(latencies)
    for row in rows:
        assert row["precision_at_5"] >= 0.6, row


def _distribution_sweep():
    rows = []
    for label, overrides in PROFILES:
        dataset = make_dataset(overrides)
        backend = MemoryBackend()
        backend.register_table(dataset.table)
        seedb = SeeDB(backend, SeeDBConfig(prune_correlated=False))
        query = RowSelectQuery(dataset.table.name, dataset.predicate)
        start = time.perf_counter()
        result = seedb.recommend(query, k=5)
        elapsed = time.perf_counter() - start
        rows.append(
            {
                "distribution": label,
                "latency_s": round(elapsed, 4),
                "precision_at_5": round(precision_at_k(result, dataset), 3),
                "views_executed": result.n_executed_views,
            }
        )
    return rows


def test_zipf_latency(benchmark):
    dataset = make_dataset(dict(dimension_distribution="zipf", zipf_exponent=2.0))
    backend = MemoryBackend()
    backend.register_table(dataset.table)
    seedb = SeeDB(backend, SeeDBConfig(prune_correlated=False))
    query = RowSelectQuery(dataset.table.name, dataset.predicate)
    benchmark.pedantic(lambda: seedb.recommend(query, k=5), rounds=3, iterations=1)
