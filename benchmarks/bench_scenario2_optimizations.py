"""E16: Scenario 2 knob — the optimization toggles (cumulative ablation).

"Attendees will also be able to select the optimizations that SEEDB
applies and observe the effect on response times and accuracy." One row
per cumulative optimization bundle, with latency, query count, and scan
count; recommendations must stay identical across all bundles (the
optimizations trade work, not answers — sampling, which does trade
accuracy, is benchmarked separately in E10).
"""

import pytest

from repro.backends.memory import MemoryBackend
from repro.core.config import SeeDBConfig
from repro.core.recommender import SeeDB
from repro.db.query import RowSelectQuery
from repro.experiments.latency import OPTIMIZATION_GRID, latency_vs_optimizations


def test_optimization_ablation(benchmark, record_rows, synth_large):
    rows = benchmark.pedantic(
        lambda: latency_vs_optimizations(
            synth_large.table, synth_large.predicate, repeats=2
        ),
        rounds=1,
        iterations=1,
    )
    record_rows("e16_optimization_ablation", rows)
    by_config = {row["configuration"]: row for row in rows}
    basic = by_config["basic (none)"]
    combined = by_config["+combine aggregates"]
    grouped = by_config["+combine group-bys"]

    # Deterministic work reductions, in order.
    assert (
        by_config["+combine target/comparison"]["queries"] * 2
        == basic["queries"]
    )
    assert combined["queries"] < by_config["+combine target/comparison"]["queries"]
    assert grouped["queries"] <= combined["queries"]
    # Wall-clock: the fully combined configuration must beat basic clearly.
    assert grouped["latency_s"] < basic["latency_s"]


def test_answers_invariant_across_bundles(benchmark, synth_large):
    benchmark.pedantic(
        lambda: _check_invariance(synth_large), rounds=1, iterations=1
    )


def _check_invariance(synth_large):
    query = RowSelectQuery(synth_large.table.name, synth_large.predicate)
    reference = None
    for label, overrides in OPTIMIZATION_GRID:
        if label == "+pruning":
            continue  # pruning may drop low-utility views; compared in E17
        backend = MemoryBackend()
        backend.register_table(synth_large.table)
        result = SeeDB(backend, SeeDBConfig(**overrides)).recommend(query, k=5)
        top = [v.spec for v in result.recommendations]
        if reference is None:
            reference = top
        else:
            assert top == reference, label


def test_fastest_bundle_latency(benchmark, synth_large):
    backend = MemoryBackend()
    backend.register_table(synth_large.table)
    _label, overrides = OPTIMIZATION_GRID[-1]
    seedb = SeeDB(backend, SeeDBConfig(**overrides))
    query = RowSelectQuery(synth_large.table.name, synth_large.predicate)
    benchmark.pedantic(lambda: seedb.recommend(query, k=5), rounds=3, iterations=1)
