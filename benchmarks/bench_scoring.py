"""E20: the columnar Score data plane — batch vs per-view scoring (§3.1).

The View Processor promises "shared processing of view results"; this
benchmark measures exactly the stage the columnar rebuild vectorizes. One
500+-view workload runs through the full engine twice on the memory
backend — once with the per-view scoring loop, once with the dense
``score_batch`` path — and the recorded rows compare the Score-phase
wall-clock. Everything else is held fixed, and the run asserts the parts
that must not move: identical utilities bit-for-bit and an unchanged
backend query count.
"""

import dataclasses
import time

import pytest

from repro.backends.duckdb import duckdb_available
from repro.backends.memory import MemoryBackend
from repro.core.config import SeeDBConfig
from repro.core.recommender import SeeDB
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic
from repro.db.query import RowSelectQuery
from repro.optimizer.plan import GroupByCombining

#: Minimum Score-phase speedup the columnar path must show (the PR's
#: acceptance bar; measured batch/per-view on the 500+ view workload).
MIN_SPEEDUP = 3.0
REPETITIONS = 3


@pytest.fixture(scope="module")
def workload():
    """~510 candidate views: 10 dims x 10 measures x 5 functions + counts."""
    dataset = generate_synthetic(
        SyntheticConfig(
            n_rows=20_000, n_dimensions=10, n_measures=10, cardinality=24
        ),
        seed=77,
    )
    query = RowSelectQuery(dataset.table.name, dataset.predicate)
    return dataset, query


def _config(batch_scoring: bool) -> SeeDBConfig:
    return SeeDBConfig(
        aggregate_functions=("sum", "avg", "min", "max", "var"),
        batch_scoring=batch_scoring,
        # Score every enumerated view: this benchmark measures the Score
        # phase, not the pruning rules.
        prune_low_variance=False,
        prune_cardinality=False,
        prune_correlated=False,
        exclude_predicate_dimensions=False,
    )


def _run(dataset, query, batch_scoring: bool):
    """One fresh-backend recommendation; returns (result, queries_executed)."""
    backend = MemoryBackend()
    backend.register_table(dataset.table)
    result = SeeDB(backend, _config(batch_scoring)).recommend(query, k=10)
    return result, backend.queries_executed


def test_batch_scoring_speedup(record_rows, workload):
    dataset, query = workload
    rows = []
    best = {}
    utilities = {}
    queries = {}
    for batch_scoring in (False, True):
        mode = "batch" if batch_scoring else "per_view"
        score_seconds = []
        for _ in range(REPETITIONS):
            result, executed = _run(dataset, query, batch_scoring)
            score_seconds.append(result.stopwatch.phases["score"])
        best[mode] = min(score_seconds)
        utilities[mode] = result.utilities
        queries[mode] = executed
        rows.append(
            {
                "mode": mode,
                "n_views_scored": len(result.all_scored),
                "score_seconds": best[mode],
                "total_seconds": result.total_seconds,
                "queries_executed": executed,
            }
        )

    n_views = rows[0]["n_views_scored"]
    speedup = best["per_view"] / best["batch"]
    rows.append(
        {
            "mode": "speedup",
            "n_views_scored": n_views,
            "score_seconds": best["per_view"] - best["batch"],
            "speedup_x": round(speedup, 2),
        }
    )
    record_rows("scoring", rows)

    assert n_views >= 500, f"workload too small: {n_views} views"
    # The columnar path must not change what the DBMS sees or what the
    # analyst gets — only how fast the Score phase runs.
    assert queries["batch"] == queries["per_view"]
    assert utilities["batch"] == utilities["per_view"]  # bit-for-bit
    assert speedup >= MIN_SPEEDUP, (
        f"batch scoring only {speedup:.2f}x faster "
        f"({best['per_view']:.4f}s -> {best['batch']:.4f}s)"
    )


@pytest.mark.skipif(
    not duckdb_available(), reason="optional 'duckdb' wheel not installed"
)
def test_duckdb_backend_axis(record_rows, workload):
    """The DuckDB axis of the scoring benchmark: the same 500+-view
    workload on a real columnar engine, native shared scan vs the UNION
    ALL fallback for the identical plan. Emits ``BENCH_scoring_duckdb.json``
    and asserts the paper's headline effect — the native path issues
    strictly fewer logical queries for the same view space and identical
    recommendations."""
    from repro.backends.duckdb import DuckDbBackend

    dataset, query = workload
    rows = []
    utilities = {}
    queries = {}
    for mode, force_fallback in (("native_shared_scan", False),
                                 ("union_fallback", True)):
        backend = DuckDbBackend(force_union_fallback=force_fallback)
        try:
            backend.register_table(dataset.table)
            config = dataclasses.replace(
                _config(batch_scoring=True),
                groupby_combining=GroupByCombining.AUTO,
            )
            start = time.perf_counter()
            result = SeeDB(backend, config).recommend(query, k=10)
            total = time.perf_counter() - start
            utilities[mode] = result.utilities
            queries[mode] = backend.queries_executed
            rows.append(
                {
                    "mode": mode,
                    "n_views_scored": len(result.all_scored),
                    "total_seconds": round(total, 4),
                    "queries_executed": backend.queries_executed,
                    "statements_executed": backend.statements_executed,
                }
            )
        finally:
            backend.close()
    rows.append(
        {
            "mode": "query_reduction",
            "queries_saved": queries["union_fallback"]
            - queries["native_shared_scan"],
        }
    )
    record_rows("scoring_duckdb", rows)

    # Same recommendations (to float tolerance — DuckDB's parallel hash
    # aggregation may combine float partials in either plan's order);
    # strictly fewer logical queries natively.
    native, fallback = utilities["native_shared_scan"], utilities["union_fallback"]
    assert set(native) == set(fallback)
    for label in native:
        assert native[label] == pytest.approx(fallback[label], rel=1e-9, abs=1e-12)
    assert queries["native_shared_scan"] < queries["union_fallback"]


def test_score_batch_microbench(benchmark, workload):
    """Direct View-Processor cost on the extracted raw views (no engine)."""
    from repro.core.space import enumerate_views
    from repro.core.view_processor import ViewProcessor
    from repro.metrics.registry import get_metric
    from repro.optimizer.plan import ExecutionPlan, FlagStep, ViewGroup

    dataset, _query = workload
    backend = MemoryBackend()
    backend.register_table(dataset.table)
    views = enumerate_views(
        dataset.table.schema, functions=("sum", "avg", "min", "max", "var")
    )
    grouped = {}
    for view in views:
        grouped.setdefault(view.dimension, []).append(view)
    plan = ExecutionPlan(
        [
            FlagStep(dataset.table.name, dataset.predicate,
                     ViewGroup(dimension, tuple(members)))
            for dimension, members in grouped.items()
        ]
    )
    raw_views = plan.run(backend)
    processor = ViewProcessor(get_metric("js"))

    scored = benchmark(lambda: processor.score_batch(raw_views))
    assert len(scored) == len(raw_views)
