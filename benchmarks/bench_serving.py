"""Serving benchmark: concurrent multi-session throughput vs a serial loop.

The serving acceptance bar for the service layer: 8 concurrent sessions
hammering one shared :class:`SeeDBService` must beat the same request
stream executed serially by ≥ 2× throughput on the memory backend, with
request coalescing observably engaged. The win comes from exactly the
mechanisms the service adds — identical in-flight requests collapse to
one execution, finished results fan out from the shared LRU, and the
engine cache is warm across every session — so this benchmark doubles as
a regression tripwire for all three.

The workers axis measures the *process* tier instead: a stream of unique
predicates (nothing coalesces, nothing caches — pure execution
throughput) against the thread tier and against clusters of 1/2/4 worker
processes, emitting the ``process_scaling_ratio`` headline =
cluster-of-4 throughput over single-process-thread-tier throughput. The
strict ≥ 2.5× bar only applies where it is physically reachable (≥ 4
usable cores); constrained boxes record the honest number and assert
sanity only.

Emits ``BENCH_serving.json`` (rows: serial baseline, coalesced+cached
service, ablation with both off, then the workers axis) with throughput
and p50/p95 latency.
"""

import os
import time
from concurrent.futures import ThreadPoolExecutor
from threading import Barrier, Lock

import pytest

from repro.backends.duckdb import duckdb_available
from repro.backends.memory import MemoryBackend
from repro.core.config import SeeDBConfig
from repro.core.recommender import SeeDB
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic
from repro.db.expressions import col
from repro.db.query import RowSelectQuery
from repro.service import single_backend_cluster, single_backend_service

N_SESSIONS = 8
REQUESTS_PER_SESSION = 8
K = 3

#: Workers axis: unique requests (no two coalesce) and the process tiers.
SCALING_REQUESTS = 24
WORKER_TIERS = (1, 2, 4)
USABLE_CORES = len(os.sched_getaffinity(0))


@pytest.fixture(scope="module")
def workload():
    dataset = generate_synthetic(
        SyntheticConfig(n_rows=20_000, n_dimensions=6, n_measures=2,
                        cardinality=12),
        seed=77,
    )
    table = dataset.table
    # Four distinct analyst queries; sessions all walk them in the same
    # order, so identical requests overlap in flight (coalescing) and
    # repeat across sessions (result cache).
    queries = [RowSelectQuery(table.name, dataset.predicate)]
    for dim in ("d0", "d1", "d2"):
        value = table.column(dim)[0]
        queries.append(RowSelectQuery(table.name, col(dim) == value))
    stream = [
        queries[step % len(queries)] for step in range(REQUESTS_PER_SESSION)
    ]
    return table, stream


def percentile(sorted_values, q):
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


def run_serial(table, stream, backend_factory=MemoryBackend):
    """The baseline: one warm facade, every request of every session in a
    loop (same total work, no concurrency, no service machinery)."""
    backend = backend_factory()
    backend.register_table(table)
    seedb = SeeDB(backend, SeeDBConfig(k=K))
    latencies = []
    start = time.perf_counter()
    for _ in range(N_SESSIONS):
        for query in stream:
            t0 = time.perf_counter()
            seedb.recommend(query)
            latencies.append(time.perf_counter() - t0)
    total = time.perf_counter() - start
    seedb.close()
    backend.close()
    return total, sorted(latencies), None


def run_service(
    table, stream, coalesce: bool, cache_size: int, backend_factory=MemoryBackend
):
    backend = backend_factory()
    backend.register_table(table)
    service = single_backend_service(
        backend,
        SeeDBConfig(k=K),
        max_workers=N_SESSIONS,
        coalesce_requests=coalesce,
        result_cache_size=cache_size,
    )
    latencies = []
    barrier = Barrier(N_SESSIONS)
    lock = Lock()

    def session(_: int):
        barrier.wait(timeout=60)
        mine = []
        for query in stream:
            t0 = time.perf_counter()
            service.recommend(query)
            mine.append(time.perf_counter() - t0)
        with lock:
            latencies.extend(mine)

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=N_SESSIONS) as pool:
        for future in [pool.submit(session, i) for i in range(N_SESSIONS)]:
            future.result(timeout=600)
    total = time.perf_counter() - start
    stats = service.snapshot()
    service.close()
    backend.close()
    return total, sorted(latencies), stats


@pytest.fixture(scope="module")
def scaling_workload(workload):
    """Unique-predicate stream: every request is distinct work.

    Coalescing and the result cache cannot collapse any of it, so
    throughput here is raw execution parallelism — exactly what worker
    processes buy past the GIL and threads cannot."""
    table, _ = workload
    queries = []
    for dim in ("d0", "d1"):
        for value in sorted(set(table.column(dim).tolist())):
            queries.append(RowSelectQuery(table.name, col(dim) == value))
    assert len(queries) >= SCALING_REQUESTS
    return table, queries[:SCALING_REQUESTS]


def _wait_booted(service, deadline_s: float = 60.0) -> None:
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        workers = service.health().get("workers", [])
        if workers and all(w["alive"] and w["booted"] for w in workers):
            return
        time.sleep(0.05)
    raise TimeoutError("cluster workers did not boot")


def run_scaling_tier(table, queries, workers: int):
    """One tier of the workers axis: 0 = threads, N >= 1 = cluster of N.

    Spawn/boot cost stays outside the timed window (a serving tier boots
    once and then serves); the storm itself is N_SESSIONS client threads
    splitting the unique stream."""
    backend = MemoryBackend()
    backend.register_table(table)
    kwargs = dict(
        max_workers=N_SESSIONS, coalesce_requests=True, result_cache_size=256
    )
    if workers == 0:
        service = single_backend_service(backend, SeeDBConfig(k=K), **kwargs)
    else:
        service = single_backend_cluster(
            backend, SeeDBConfig(k=K), workers=workers, **kwargs
        )
        service.start()
        _wait_booted(service)
    try:
        slices = [queries[i::N_SESSIONS] for i in range(N_SESSIONS)]
        barrier = Barrier(N_SESSIONS)

        def session(index: int):
            barrier.wait(timeout=60)
            for query in slices[index]:
                service.recommend(query)

        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=N_SESSIONS) as pool:
            for future in [pool.submit(session, i) for i in range(N_SESSIONS)]:
                future.result(timeout=600)
        total = time.perf_counter() - start
        stats = service.snapshot()
    finally:
        service.close()
        backend.close()
    return total, stats


def test_concurrent_sessions_beat_serial_loop(
    benchmark, record_rows, workload, scaling_workload
):
    table, stream = workload
    _, scale_queries = scaling_workload
    n_requests = N_SESSIONS * len(stream)

    def sweep():
        rows = []
        serial_total, serial_lat, _ = run_serial(table, stream)
        configs = [
            ("serial_loop", None, serial_total, serial_lat, None),
        ]
        for label, coalesce, cache in (
            ("service_coalesce_cache", True, 256),
            ("service_no_coalesce_no_cache", False, 0),
        ):
            total, lat, stats = run_service(table, stream, coalesce, cache)
            configs.append((label, coalesce, total, lat, stats))
        for label, _, total, lat, stats in configs:
            row = {
                "mode": label,
                "sessions": 1 if label == "serial_loop" else N_SESSIONS,
                "requests": n_requests,
                "total_s": round(total, 4),
                "throughput_rps": round(n_requests / total, 2),
                "p50_latency_ms": round(percentile(lat, 0.50) * 1e3, 2),
                "p95_latency_ms": round(percentile(lat, 0.95) * 1e3, 2),
                "speedup_vs_serial": round(serial_total / total, 2),
            }
            if stats is not None:
                row["executions"] = stats["executions"]
                row["coalesced"] = stats["coalesced"]
                row["result_cache_hits"] = stats["result_cache_hits"]
            rows.append(row)
        # The workers axis: the same unique-predicate storm against the
        # thread tier and 1/2/4-process clusters. process_scaling_ratio
        # is each cluster's throughput over the thread tier's.
        thread_total, thread_stats = run_scaling_tier(table, scale_queries, 0)
        thread_rps = len(scale_queries) / thread_total
        rows.append(
            {
                "mode": "scaling_threads",
                "sessions": N_SESSIONS,
                "worker_processes": 0,
                "requests": len(scale_queries),
                "total_s": round(thread_total, 4),
                "throughput_rps": round(thread_rps, 2),
                "executions": thread_stats["executions"],
                "usable_cores": USABLE_CORES,
            }
        )
        for tier in WORKER_TIERS:
            total, stats = run_scaling_tier(table, scale_queries, tier)
            rows.append(
                {
                    "mode": f"scaling_cluster_{tier}w",
                    "sessions": N_SESSIONS,
                    "worker_processes": tier,
                    "requests": len(scale_queries),
                    "total_s": round(total, 4),
                    "throughput_rps": round(len(scale_queries) / total, 2),
                    "process_scaling_ratio": round(
                        (len(scale_queries) / total) / thread_rps, 3
                    ),
                    "executions": stats["executions"],
                    "usable_cores": USABLE_CORES,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_rows("serving", rows)
    by_mode = {row["mode"]: row for row in rows}
    served = by_mode["service_coalesce_cache"]
    # The acceptance bar: ≥ 2× the serial-loop baseline at 8 sessions,
    # with coalescing observed (every session issues the same first
    # request simultaneously — at most one of them may execute it).
    assert served["speedup_vs_serial"] >= 2.0
    assert served["coalesced"] > 0
    assert served["executions"] < N_SESSIONS * len(stream)
    # The workers-axis bar: 4 processes ≥ 2.5× the thread tier — but only
    # where 4 processes can actually run in parallel. On constrained
    # boxes (CI sandboxes pinned to 1-2 cores) the ratio is recorded
    # honestly and only sanity is asserted: every unique request executed
    # exactly once on every tier (sharding did not drop or double work).
    cluster4 = by_mode["scaling_cluster_4w"]
    for tier in WORKER_TIERS:
        assert by_mode[f"scaling_cluster_{tier}w"]["executions"] == len(
            scale_queries
        )
    if USABLE_CORES >= 4:
        assert cluster4["process_scaling_ratio"] >= 2.5
    else:
        assert cluster4["process_scaling_ratio"] > 0.2


@pytest.mark.skipif(
    not duckdb_available(), reason="optional 'duckdb' wheel not installed"
)
def test_concurrent_sessions_duckdb_axis(record_rows, workload):
    """The DuckDB axis of the serving benchmark: the same session storm
    against a real columnar engine (per-thread cursors on one in-memory
    database). Emits ``BENCH_serving_duckdb.json``; asserts the service
    machinery still engages (coalescing observed, executions collapsed) —
    the throughput bar stays with the memory axis, where backend time is
    negligible and the service layer dominates."""
    from repro.backends.duckdb import DuckDbBackend

    table, stream = workload
    n_requests = N_SESSIONS * len(stream)
    serial_total, serial_lat, _ = run_serial(
        table, stream, backend_factory=DuckDbBackend
    )
    total, lat, stats = run_service(
        table, stream, True, 256, backend_factory=DuckDbBackend
    )
    rows = []
    for label, run_total, run_lat, run_stats in (
        ("serial_loop", serial_total, serial_lat, None),
        ("service_coalesce_cache", total, lat, stats),
    ):
        row = {
            "mode": label,
            "sessions": 1 if label == "serial_loop" else N_SESSIONS,
            "requests": n_requests,
            "total_s": round(run_total, 4),
            "throughput_rps": round(n_requests / run_total, 2),
            "p50_latency_ms": round(percentile(run_lat, 0.50) * 1e3, 2),
            "p95_latency_ms": round(percentile(run_lat, 0.95) * 1e3, 2),
            "speedup_vs_serial": round(serial_total / run_total, 2),
        }
        if run_stats is not None:
            row["executions"] = run_stats["executions"]
            row["coalesced"] = run_stats["coalesced"]
            row["result_cache_hits"] = run_stats["result_cache_hits"]
        rows.append(row)
    record_rows("serving_duckdb", rows)

    assert stats["coalesced"] > 0
    assert stats["executions"] < n_requests


def test_deadline_axis(record_rows, workload):
    """The deadline-lifecycle axis: the same memory-backend workload with
    per-request budgets attached. ``deadline_hit_rate`` — the fraction of
    requests that came back *complete* within their budget — is the
    headline the trend gate watches (generous budgets must stay ~1.0; a
    drop means executions got slower or deadline accounting broke).
    Starved budgets are recorded honestly on their own row: those
    requests must still terminate typed (a partial result or
    ``DeadlineExceeded``), which the loop enforces by construction.
    """
    from repro.util.errors import DeadlineExceeded

    table, stream = workload
    requests = stream * 2
    rows = []
    for label, deadline_ms in (
        ("deadline_generous", 30_000),
        ("deadline_tight", 5),
    ):
        backend = MemoryBackend()
        backend.register_table(table)
        # No coalescing, no cache: every request is a real execution with
        # its own budget, so the hit rate measures the engine, not reuse.
        service = single_backend_service(
            backend,
            SeeDBConfig(k=K),
            max_workers=N_SESSIONS,
            coalesce_requests=False,
            result_cache_size=0,
        )
        full = partials = exceeded = 0
        latencies = []
        start = time.perf_counter()
        for query in requests:
            t0 = time.perf_counter()
            try:
                result = service.recommend(query, deadline_ms=deadline_ms)
                if result.partial:
                    partials += 1
                else:
                    full += 1
            except DeadlineExceeded:
                exceeded += 1
            latencies.append(time.perf_counter() - t0)
        total = time.perf_counter() - start
        service.close()
        backend.close()
        n = len(requests)
        latencies.sort()
        rows.append(
            {
                "mode": label,
                "deadline_ms": deadline_ms,
                "requests": n,
                "deadline_hit_rate": round(full / n, 3),
                "partial_results": partials,
                "deadline_exceeded": exceeded,
                "total_s": round(total, 4),
                "p50_latency_ms": round(percentile(latencies, 0.50) * 1e3, 2),
                "p95_latency_ms": round(percentile(latencies, 0.95) * 1e3, 2),
            }
        )
    record_rows("serving_deadlines", rows)
    by_mode = {row["mode"]: row for row in rows}
    generous = by_mode["deadline_generous"]
    tight = by_mode["deadline_tight"]
    # The portable bar: with 30s budgets on this workload every request
    # completes in full. Tight budgets assert only the ledger: every
    # request terminated in exactly one of the three typed outcomes.
    assert generous["deadline_hit_rate"] >= 0.9
    assert (
        tight["deadline_hit_rate"] * tight["requests"]
        + tight["partial_results"]
        + tight["deadline_exceeded"]
        == tight["requests"]
    )
