"""E6: the candidate view space grows as the square of the attribute count.

§1 challenge (b): "the number of candidate views (or visualizations)
increases as the square of the number of attributes in a table". With n
attributes split evenly between dimensions and measures and f aggregate
functions, |views| = f(n/2)^2 (+count views): doubling n must quadruple
the space. The benchmark enumerates real schemas and fits the growth.
"""

import numpy as np

from repro.core.space import enumerate_views, view_space_size
from repro.db.schema import ColumnSpec, Schema
from repro.db.types import AttributeRole, DataType


def make_schema(n_attributes: int) -> Schema:
    n_dimensions = n_attributes // 2
    specs = [
        ColumnSpec(f"d{i}", DataType.STR, AttributeRole.DIMENSION)
        for i in range(n_dimensions)
    ] + [
        ColumnSpec(f"m{i}", DataType.FLOAT, AttributeRole.MEASURE)
        for i in range(n_attributes - n_dimensions)
    ]
    return Schema(tuple(specs))


def test_view_space_quadratic_growth(benchmark, record_rows):
    attribute_counts = [10, 20, 40, 80]
    rows = []
    for n in attribute_counts:
        schema = make_schema(n)
        views = enumerate_views(schema, functions=("sum", "avg"),
                                include_count=False)
        assert len(views) == view_space_size(n // 2, n // 2, 2,
                                             include_count=False)
        rows.append({"attributes": n, "views": len(views)})
    record_rows("e6_view_space", rows)

    # Quadratic fit: log(views) vs log(attributes) slope must be ~2.
    logs_n = np.log([row["attributes"] for row in rows])
    logs_v = np.log([row["views"] for row in rows])
    slope = np.polyfit(logs_n, logs_v, 1)[0]
    assert 1.9 < slope < 2.1, f"growth exponent {slope}"

    # Benchmark enumeration cost at the largest size.
    schema = make_schema(80)
    views = benchmark(lambda: enumerate_views(schema, functions=("sum", "avg")))
    assert len(views) > 3000
