"""Bench-trend gate: diff fresh BENCH_*.json against committed baselines.

``perf-smoke`` runs the benchmarks, then this script compares each fresh
``BENCH_<name>.json`` with the baseline committed in
``benchmarks/results/`` and fails (exit 1) only when a benchmark's
*headline metric* regresses beyond the tolerance (default 30%).

Headline metrics are chosen to be machine-portable:

1. a known dimensionless ratio column (speedups, precisions) when the
   benchmark has one — CI runners and dev laptops differ wildly in
   absolute speed, but "batch is N× the per-view loop on the same box"
   travels; ratio headlines additionally carry a *portable floor*
   (:data:`PORTABLE_FLOORS`): trailing a fast dev machine's committed
   baseline is fine as long as the benchmark's own asserted bar holds;
2. otherwise the total logical query count (deterministic: the unit the
   paper's optimizations minimize);
3. benchmarks with neither are reported informationally, never gated
   (absolute wall-clock across machines is noise, not signal).

A markdown trend table goes to stdout and, when set, to the file named by
``$GITHUB_STEP_SUMMARY``.

Usage::

    python benchmarks/check_trend.py \
        --baseline-dir /tmp/bench-baseline --fresh-dir benchmarks/results \
        [--tolerance 0.30]
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
from dataclasses import dataclass
from pathlib import Path

#: Known ratio columns, in priority order; higher is always better.
RATIO_COLUMNS = (
    "speedup_x",
    "process_scaling_ratio",
    "speedup_vs_serial",
    "speedup_to_first",
    "planner_vs_static_ratio",
    "work_saved",
    "topk_precision",
    "first_round_topk_precision",
    "deadline_hit_rate",
)

#: Machine-portable floors for ratio headlines. Committed baselines come
#: from whatever machine last refreshed them (a fast dev box records an
#: 8× serving speedup a 4-vCPU CI runner can never reach), so a fresh
#: value that trails the baseline by more than the tolerance is still OK
#: as long as it clears the benchmark's own asserted portable bar. Query
#: counts are deterministic and get no floor — they gate strictly.
PORTABLE_FLOORS = {
    "speedup_x": 3.0,          # bench_scoring MIN_SPEEDUP
    "process_scaling_ratio": 2.5,  # bench_serving workers-axis bar (≥4 cores)
    "speedup_vs_serial": 2.0,  # bench_serving acceptance bar
    "speedup_to_first": 2.0,   # bench_progressive time-to-first bar
    "planner_vs_static_ratio": 1.0,  # bench_planner adversarial-workload bar
    "deadline_hit_rate": 0.9,  # bench_serving deadline axis (generous row)
}

#: Substrings marking a query-count column (lower is better).
QUERY_HINTS = ("queries", "query")


@dataclass
class Headline:
    """One benchmark's comparable metric."""

    metric: str
    value: float
    direction: str  # "higher" or "lower" is better

    def change_vs(self, baseline: "Headline") -> float:
        """Signed fractional change, positive = improvement."""
        if baseline.value == 0:
            return 0.0
        raw = (self.value - baseline.value) / abs(baseline.value)
        return raw if self.direction == "higher" else -raw


@dataclass
class TrendRow:
    """One line of the trend table."""

    benchmark: str
    metric: str
    baseline: "float | None"
    fresh: "float | None"
    change: "float | None"
    status: str  # "ok" | "regression" | "new" | "missing" | "info"


def _finite(values) -> list[float]:
    out = []
    for value in values:
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            value = float(value)
            if math.isfinite(value):
                out.append(value)
    return out


def headline_of(payload: dict) -> "Headline | None":
    """Pick the benchmark's headline metric from its BENCH payload."""
    rows = payload.get("rows", [])
    for column in RATIO_COLUMNS:
        values = _finite(row.get(column) for row in rows)
        if values:
            return Headline(metric=column, value=max(values), direction="higher")
    query_counts = payload.get("query_counts", {})
    for column in sorted(query_counts):
        if any(hint in column.lower() for hint in QUERY_HINTS):
            values = _finite(query_counts[column])
            if values:
                return Headline(
                    metric=column, value=sum(values), direction="lower"
                )
    return None


def load_bench_files(directory: Path) -> dict[str, dict]:
    payloads = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        name = path.stem[len("BENCH_"):]
        try:
            payloads[name] = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            print(f"warning: unreadable {path}: {error}", file=sys.stderr)
    return payloads


def compare(
    baselines: dict[str, dict], fresh: dict[str, dict], tolerance: float
) -> list[TrendRow]:
    """Trend rows for the union of baseline and fresh benchmarks."""
    rows: list[TrendRow] = []
    for name in sorted(set(baselines) | set(fresh)):
        if name not in fresh:
            rows.append(
                TrendRow(name, "-", None, None, None, "missing")
            )
            continue
        fresh_headline = headline_of(fresh[name])
        if name not in baselines:
            rows.append(
                TrendRow(
                    name,
                    fresh_headline.metric if fresh_headline else "-",
                    None,
                    fresh_headline.value if fresh_headline else None,
                    None,
                    "new",
                )
            )
            continue
        base_headline = headline_of(baselines[name])
        if fresh_headline is None or base_headline is None:
            rows.append(TrendRow(name, "-", None, None, None, "info"))
            continue
        if fresh_headline.metric != base_headline.metric:
            # Benchmark changed shape; treat as new rather than diffable.
            rows.append(
                TrendRow(
                    name, fresh_headline.metric, None, fresh_headline.value,
                    None, "new",
                )
            )
            continue
        change = fresh_headline.change_vs(base_headline)
        if change >= -tolerance:
            status = "ok"
        else:
            floor = PORTABLE_FLOORS.get(fresh_headline.metric)
            if floor is not None and fresh_headline.value >= floor:
                status = "above-floor"
            else:
                status = "regression"
        rows.append(
            TrendRow(
                name,
                fresh_headline.metric,
                base_headline.value,
                fresh_headline.value,
                change,
                status,
            )
        )
    return rows


def _fmt(value: "float | None") -> str:
    if value is None:
        return "–"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    return f"{value:.3g}"


def markdown_table(rows: list[TrendRow], tolerance: float) -> str:
    lines = [
        f"## Bench trend (tolerance ±{tolerance:.0%})",
        "",
        "| benchmark | headline metric | baseline | fresh | change | status |",
        "|---|---|---:|---:|---:|---|",
    ]
    icons = {
        "ok": "✅ ok",
        "above-floor": "✅ below baseline, above portable floor",
        "regression": "❌ regression",
        "new": "🆕 new",
        "missing": "⚠️ missing",
        "info": "ℹ️ timings only",
    }
    for row in rows:
        change = "–" if row.change is None else f"{row.change:+.1%}"
        lines.append(
            f"| {row.benchmark} | {row.metric} | {_fmt(row.baseline)} "
            f"| {_fmt(row.fresh)} | {change} | {icons[row.status]} |"
        )
    return "\n".join(lines)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline-dir", required=True, type=Path)
    parser.add_argument("--fresh-dir", required=True, type=Path)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="max fractional headline regression before failing (default 0.30)",
    )
    args = parser.parse_args(argv)

    baselines = load_bench_files(args.baseline_dir)
    fresh = load_bench_files(args.fresh_dir)
    rows = compare(baselines, fresh, args.tolerance)
    table = markdown_table(rows, args.tolerance)
    print(table)

    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as handle:
            handle.write(table + "\n")

    # Fail closed: a gate that compared nothing proves nothing. An empty
    # fresh dir (typo'd path — glob on a missing directory is silently
    # empty) or a baseline whose benchmark stopped emitting its BENCH
    # file must not pass green.
    failures = []
    if not fresh:
        failures.append(
            f"no BENCH_*.json found in fresh dir {args.fresh_dir} — "
            "wrong path or benchmarks did not run"
        )
    missing = [row.benchmark for row in rows if row.status == "missing"]
    if missing:
        failures.append(
            "baseline benchmark(s) missing from the fresh run: "
            + ", ".join(missing)
        )
    regressions = [row for row in rows if row.status == "regression"]
    if regressions:
        failures.append(
            f"{len(regressions)} headline regression(s) beyond "
            f"{args.tolerance:.0%}: "
            + ", ".join(row.benchmark for row in regressions)
        )
    if failures:
        for failure in failures:
            print(f"\nFAIL: {failure}", file=sys.stderr)
        return 1
    print("\nno headline regressions beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
