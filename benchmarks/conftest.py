"""Shared benchmark fixtures and result recording.

Every benchmark writes the rows behind its table/figure to
``benchmarks/results/<experiment>.csv`` so EXPERIMENTS.md can be
regenerated from the same artifacts the benchmarks assert on, plus a
machine-readable ``BENCH_<experiment>.json`` (rows with their timing and
query-count columns surfaced) so the performance trajectory can be diffed
across PRs without parsing CSV.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path

import pytest

from repro.datasets.synthetic import SyntheticConfig, generate_synthetic
from repro.experiments.report import write_rows_csv

RESULTS_DIR = Path(__file__).parent / "results"

#: Column-name fragments/suffixes classified as timings / query counts.
_TIMING_FRAGMENTS = ("latency", "seconds", "time")
_TIMING_SUFFIXES = ("_s", "_ms", "_us")
_QUERY_HINTS = ("queries", "query")


def _is_timing_column(column: str) -> bool:
    lowered = column.lower()
    return any(hint in lowered for hint in _TIMING_FRAGMENTS) or lowered.endswith(
        _TIMING_SUFFIXES
    )


def _jsonable(value):
    """Coerce numpy scalars and other exotica into plain JSON values.

    Non-finite floats become null: json.dumps would otherwise emit bare
    NaN/Infinity tokens that strict parsers (jq, JSON.parse) reject.
    """
    if hasattr(value, "item"):
        value = value.item()
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def write_bench_json(name: str, rows: list[dict], results_dir: Path = RESULTS_DIR) -> Path:
    """Write ``BENCH_<name>.json``: the rows plus timing/query summaries."""
    clean_rows = [
        {key: _jsonable(value) for key, value in row.items()} for row in rows
    ]
    columns = sorted({key for row in clean_rows for key in row})
    timings = {
        column: [row.get(column) for row in clean_rows]
        for column in columns
        if _is_timing_column(column)
    }
    query_counts = {
        column: [row.get(column) for row in clean_rows]
        for column in columns
        if any(hint in column.lower() for hint in _QUERY_HINTS)
    }
    payload = {
        "benchmark": name,
        "recorded_unix": time.time(),
        "n_rows": len(clean_rows),
        "columns": columns,
        "timings": timings,
        "query_counts": query_counts,
        "rows": clean_rows,
    }
    results_dir.mkdir(parents=True, exist_ok=True)
    path = results_dir / f"BENCH_{name}.json"
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True, allow_nan=False) + "\n"
    )
    return path


@pytest.fixture(scope="session")
def record_rows():
    """Callable ``record_rows(name, rows)`` persisting experiment rows.

    Writes both the CSV artifact EXPERIMENTS.md regenerates from and the
    ``BENCH_<name>.json`` performance-trajectory artifact.
    """

    def _record(name: str, rows: list[dict]) -> Path:
        write_bench_json(name, rows)
        return write_rows_csv(rows, RESULTS_DIR / f"{name}.csv")

    return _record


@pytest.fixture(scope="session")
def synth_small():
    """50k rows, 5 dims x 2 measures — the workhorse workload."""
    return generate_synthetic(
        SyntheticConfig(n_rows=50_000, n_dimensions=5, n_measures=2,
                        cardinality=16),
        seed=101,
    )


@pytest.fixture(scope="session")
def synth_large():
    """200k rows — the data-size and sampling benchmarks."""
    return generate_synthetic(
        SyntheticConfig(n_rows=200_000, n_dimensions=5, n_measures=2,
                        cardinality=16),
        seed=102,
    )


@pytest.fixture(scope="session")
def synth_wide():
    """30k rows, 10 dims x 4 measures — the attribute-count benchmark."""
    return generate_synthetic(
        SyntheticConfig(n_rows=30_000, n_dimensions=10, n_measures=4,
                        cardinality=12),
        seed=103,
    )
