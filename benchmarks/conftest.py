"""Shared benchmark fixtures and result recording.

Every benchmark writes the rows behind its table/figure to
``benchmarks/results/<experiment>.csv`` so EXPERIMENTS.md can be
regenerated from the same artifacts the benchmarks assert on.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.datasets.synthetic import SyntheticConfig, generate_synthetic
from repro.experiments.report import write_rows_csv

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def record_rows():
    """Callable ``record_rows(name, rows)`` persisting experiment rows."""

    def _record(name: str, rows: list[dict]) -> Path:
        return write_rows_csv(rows, RESULTS_DIR / f"{name}.csv")

    return _record


@pytest.fixture(scope="session")
def synth_small():
    """50k rows, 5 dims x 2 measures — the workhorse workload."""
    return generate_synthetic(
        SyntheticConfig(n_rows=50_000, n_dimensions=5, n_measures=2,
                        cardinality=16),
        seed=101,
    )


@pytest.fixture(scope="session")
def synth_large():
    """200k rows — the data-size and sampling benchmarks."""
    return generate_synthetic(
        SyntheticConfig(n_rows=200_000, n_dimensions=5, n_measures=2,
                        cardinality=16),
        seed=102,
    )


@pytest.fixture(scope="session")
def synth_wide():
    """30k rows, 10 dims x 4 measures — the attribute-count benchmark."""
    return generate_synthetic(
        SyntheticConfig(n_rows=30_000, n_dimensions=10, n_measures=4,
                        cardinality=12),
        seed=103,
    )
