"""Extensions beyond the demo paper: multi-attribute views, incremental
execution with early termination, and shareable HTML reports.

Run:  python examples/advanced_extensions.py
"""

from pathlib import Path

from repro import MemoryBackend, RowSelectQuery, SeeDB, SeeDBConfig
from repro.core.incremental import IncrementalRecommender
from repro.core.multiview import MultiViewRecommender
from repro.core.space import enumerate_views, split_predicate_dimensions
from repro.datasets import generate_store_orders
from repro.db.expressions import col
from repro.viz.html_report import write_html_report

OUTPUT_DIR = Path(__file__).parent / "output" / "extensions"


def main() -> None:
    backend = MemoryBackend()
    table = generate_store_orders(n_rows=40_000, seed=11)
    backend.register_table(table)
    predicate = col("category") == "Technology"
    query = RowSelectQuery("store_orders", predicate)

    # ------------------------------------------------------------------
    # 1. Multi-attribute views (§2's "> 2 columns" generalization).
    # ------------------------------------------------------------------
    print("=== multi-attribute views: f(m) by (a1, a2) ===")
    multi = MultiViewRecommender(backend, metric="js")
    for rank, view in enumerate(multi.recommend(query, k=4, n_dimensions=2), 1):
        print(f"  {rank}. {view.spec.label:42s} u={view.utility:.4f} "
              f"({len(view.groups)} combination groups)")

    # ------------------------------------------------------------------
    # 2. Incremental execution with early termination (§1 challenge d).
    # ------------------------------------------------------------------
    print("\n=== incremental execution with early termination ===")
    views = enumerate_views(table.schema, functions=("sum", "avg"))
    views, _ = split_predicate_dimensions(views, predicate)
    incremental = IncrementalRecommender(table, metric="js")
    result = incremental.recommend(predicate, views, k=5, n_phases=10, delta=0.2)
    print(f"  views considered: {len(views)}")
    print(f"  phases executed:  {result.phases_executed}/{result.n_phases}")
    print(f"  work saved:       {result.work_saved_fraction:.1%} "
          f"({result.work_done}/{result.work_possible} view-phase executions)")
    print(f"  pruned early:     {len(result.pruned_at_phase)} views")
    for rank, view in enumerate(result.recommendations, 1):
        print(f"  {rank}. {view.spec.label:36s} u={view.utility:.4f}")

    # ------------------------------------------------------------------
    # 3. Shareable HTML report of a standard recommendation (§1 step 4).
    # ------------------------------------------------------------------
    print("\n=== standalone HTML report ===")
    seedb = SeeDB(backend, SeeDBConfig(metric="js"))
    standard = seedb.recommend(query, k=4)
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    path = write_html_report(
        standard,
        OUTPUT_DIR / "technology_report.html",
        backend.schema("store_orders"),
        title="Technology orders vs all orders",
    )
    print(f"  wrote {path} ({path.stat().st_size} bytes, fully self-contained)")


if __name__ == "__main__":
    main()
