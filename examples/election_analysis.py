"""Election contributions: a journalist's workflow (§4, dataset [1]).

"With this dataset, we demonstrate how non-experts can use SEEDB to
quickly arrive at interesting visualizations." The journalist asks a plain
SQL question per candidate, compares what different distance metrics
surface, and uses the top_category template instead of writing SQL.

Run:  python examples/election_analysis.py
"""

from repro import MemoryBackend, SeeDB, SeeDBConfig
from repro.datasets import generate_elections
from repro.frontend.templates import build_template
from repro.metrics import available_metrics


def main() -> None:
    backend = MemoryBackend()
    table = generate_elections(n_rows=30_000, seed=23)
    backend.register_table(table)
    seedb = SeeDB(backend)

    # Question 1 (SQL box): what is distinctive about Rivera's funding?
    print("=== Who funds candidate Rivera? ===")
    result = seedb.recommend(
        "SELECT * FROM contributions WHERE candidate = 'Rivera'", k=3
    )
    print(result.summary())

    # Question 2: same question for Stone — expect a different story.
    print("\n=== Who funds candidate Stone? ===")
    result = seedb.recommend(
        "SELECT * FROM contributions WHERE candidate = 'Stone'", k=3
    )
    print(result.summary())

    # Question 3 (template, no SQL): slice to the most common entity type.
    print("\n=== Template: top entity type slice ===")
    query = build_template("top_category", table, column="entity_type")
    result = seedb.recommend(query, k=3)
    print(result.summary())

    # Metric experimentation (§2: "attendees can experiment with different
    # distance metrics and examine how the choice affects view quality").
    print("\n=== Metric comparison for the Rivera query ===")
    print(f"{'metric':16s}  top view")
    for metric in available_metrics():
        config = SeeDBConfig(metric=metric)
        result = seedb.recommend(
            "SELECT * FROM contributions WHERE candidate = 'Rivera'",
            k=1,
            config=config,
        )
        top = result.recommendations[0]
        print(f"{metric:16s}  {top.spec.label}  (u={top.utility:.4f})")


if __name__ == "__main__":
    main()
