"""Medical cohort analysis over a real relational DBMS (sqlite3).

Exercises the "wrapper over any relational database" architecture (§3.1):
the MIMIC-II-like dataset is loaded into SQLite, SeeDB generates SQL view
queries against it, and a clinical researcher compares an emergency-
admission cohort and an outlier cohort against the full population.

Run:  python examples/medical_cohort.py
"""

from repro import SeeDB, SeeDBConfig, SqliteBackend
from repro.datasets import generate_medical
from repro.frontend.templates import build_template


def main() -> None:
    backend = SqliteBackend()
    table = generate_medical(n_rows=25_000, seed=37)
    backend.register_table(table)
    try:
        seedb = SeeDB(backend, SeeDBConfig(metric="js"))

        # Cohort 1: emergency admissions.
        print("=== Emergency admissions vs all admissions ===")
        result = seedb.recommend(
            "SELECT * FROM admissions WHERE admission_type = 'Emergency'", k=4
        )
        print(result.summary())
        print("\ntop view per-group detail:")
        top = result.recommendations[0]
        for group, target, comparison in zip(
            top.groups, top.target_distribution, top.comparison_distribution
        ):
            print(f"  {group!r}: cohort {target:.3f} vs population {comparison:.3f}")

        # Cohort 2: long-stay outliers, via the paper's outlier template.
        print("\n=== Length-of-stay outliers (template) ===")
        # Templates need column stats -> fetch the table once for analysis.
        stats_table = backend.fetch_table("admissions")
        query = build_template(
            "outliers", stats_table, column="los_days", side="high", z=2.0
        )
        result = seedb.recommend(query, k=4)
        print(result.summary())

        print(f"\nSQL round trips issued this session: {backend.queries_executed}")
    finally:
        backend.close()


if __name__ == "__main__":
    main()
