"""Demo Scenario 2: performance knobs, interactively printed (§4).

"Attendees will be able to easily experiment with a range of synthetic
datasets and input queries by adjusting various 'knobs' such as data size,
number of attributes, and data distribution. In addition, attendees will
also be able to select the optimizations that SEEDB applies and observe
the effect on response times and accuracy."

This script sweeps each knob once and prints the resulting tables. The
benchmarks/ directory contains the pytest-benchmark versions of the same
sweeps used for EXPERIMENTS.md.

Run:  python examples/performance_knobs.py
"""

from repro.core.config import SeeDBConfig
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic
from repro.experiments.accuracy import sampling_accuracy_sweep
from repro.experiments.harness import rows_to_table, sweep_rows
from repro.experiments.latency import latency_vs_optimizations, measure_recommendation


def knob_data_size() -> None:
    print("=== knob: data size (rows) ===")

    def run(n_rows):
        dataset = generate_synthetic(
            SyntheticConfig(n_rows=n_rows, n_dimensions=5, n_measures=2), seed=1
        )
        return measure_recommendation(
            dataset.table, dataset.predicate, SeeDBConfig(), repeats=1
        )

    print(rows_to_table(sweep_rows("rows", [10_000, 50_000, 100_000], run)))


def knob_attributes() -> None:
    print("\n=== knob: number of attributes ===")

    def run(n_attributes):
        dataset = generate_synthetic(
            SyntheticConfig(
                n_rows=30_000,
                n_dimensions=n_attributes // 2,
                n_measures=n_attributes - n_attributes // 2,
            ),
            seed=1,
        )
        return measure_recommendation(
            dataset.table, dataset.predicate, SeeDBConfig(), repeats=1
        )

    print(rows_to_table(sweep_rows("attributes", [4, 8, 16], run)))


def knob_distribution() -> None:
    print("\n=== knob: data distribution ===")

    def run(distribution):
        dataset = generate_synthetic(
            SyntheticConfig(
                n_rows=30_000, dimension_distribution=distribution, zipf_exponent=1.5
            ),
            seed=1,
        )
        return measure_recommendation(
            dataset.table, dataset.predicate, SeeDBConfig(), repeats=1
        )

    print(rows_to_table(sweep_rows("distribution", ["uniform", "zipf", "normal"], run)))


def knob_optimizations() -> None:
    print("\n=== knob: optimization toggles (cumulative) ===")
    dataset = generate_synthetic(
        SyntheticConfig(n_rows=50_000, n_dimensions=6, n_measures=2), seed=1
    )
    rows = latency_vs_optimizations(dataset.table, dataset.predicate, repeats=1)
    print(rows_to_table(rows))


def knob_sampling() -> None:
    print("\n=== knob: sampling fraction (latency vs accuracy) ===")
    dataset = generate_synthetic(
        SyntheticConfig(n_rows=100_000, n_dimensions=5, n_measures=2), seed=1
    )
    rows = sampling_accuracy_sweep(dataset, fractions=[0.5, 0.1, 0.01], k=5)
    print(rows_to_table(rows))


if __name__ == "__main__":
    knob_data_size()
    knob_attributes()
    knob_distribution()
    knob_optimizations()
    knob_sampling()
