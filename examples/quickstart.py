"""Quickstart: the paper's running example, end to end (§1, Table 1, Figs 1-3).

Builds the Laserwave sales history, asks SeeDB for the most interesting
views of ``SELECT * FROM sales WHERE product = 'Laserwave'``, prints the
recommendation table and an ASCII chart of the top view, and writes the
Figure 1 chart plus the top recommendations as SVG into
``examples/output/quickstart/``.

Run:  python examples/quickstart.py
"""

from pathlib import Path

from repro import MemoryBackend, RowSelectQuery, SeeDB, SeeDBConfig, col
from repro.datasets import laserwave_sales_history
from repro.experiments.figures import figure_1_spec, figures_2_3_utilities
from repro.experiments.harness import rows_to_table
from repro.viz.export import export_recommendations
from repro.viz.render_text import render_ascii
from repro.viz.spec import view_to_chart_spec
from repro.viz.svg import render_svg

OUTPUT_DIR = Path(__file__).parent / "output" / "quickstart"


def main() -> None:
    # 1. Load the fact table into the in-memory DBMS.
    backend = MemoryBackend()
    table = laserwave_sales_history(n_rows=20_000, seed=42, scenario="a")
    backend.register_table(table)

    # 2. The analyst's query Q from the paper's introduction.
    query = RowSelectQuery("sales", col("product") == "Laserwave")

    # 3. Ask SeeDB for the top-3 most interesting views.
    seedb = SeeDB(backend, SeeDBConfig(metric="js", k=3))
    result = seedb.recommend(query)
    print(result.summary())
    print()
    print("plan:", result.plan_description)
    print()
    print(result.stopwatch.breakdown())

    # 4. Show the top view as an ASCII chart (target vs whole dataset).
    top = result.recommendations[0]
    schema = backend.schema("sales")
    print()
    print(render_ascii(view_to_chart_spec(top, schema[top.spec.dimension])))

    # 5. Figures 2 vs 3: the same view is interesting against an opposite
    #    overall trend and boring against a similar one.
    print()
    print("Figure 2 vs Figure 3 (utility of the sales-by-store view):")
    print(rows_to_table(figures_2_3_utilities(["js", "emd", "euclidean", "kl"])))

    # 6. Export charts.
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    (OUTPUT_DIR / "figure_1.svg").write_text(render_svg(figure_1_spec()))
    paths = export_recommendations(result, OUTPUT_DIR, schema)
    print(f"\nwrote figure_1.svg and {len(paths)} chart files to {OUTPUT_DIR}")


if __name__ == "__main__":
    main()
