"""Serving demo: one warm SeeDB service, many concurrent consumers.

Builds a service over the store-orders dataset, starts the HTTP/JSON
frontend on a free port, then drives it from both transports at once —
eight threaded analyst sessions issuing overlapping declarative
:class:`~repro.api.RecommendationRequest` objects through the service
while HTTP clients hit ``/recommend`` and stream ``/recommend/stream`` —
then exercises visualization serving (``options.render`` → Vega-Lite
specs, ``GET /dashboard`` → a self-contained live-dashboard HTML artifact
written next to this script) and prints the service stats showing request
coalescing and shared-result reuse at work.

Run:  python examples/serving_demo.py

(For a standalone server use the CLI instead:
``python -m repro.frontend.cli serve --dataset store_orders --port 8080``.)
"""

import json
import pathlib
import urllib.parse
import urllib.request
from concurrent.futures import ThreadPoolExecutor

from repro import MemoryBackend, RecommendationRequest, Reference, SeeDBConfig
from repro.datasets import load_dataset
from repro.frontend.server import serve_in_thread
from repro.frontend.session import AnalystSession
from repro.service import single_backend_service

#: One declarative request type everywhere: SQL ingestion via from_sql,
#: first-class references, per-request execution options.
REQUESTS = [
    RecommendationRequest.from_sql(
        "SELECT * FROM store_orders WHERE category = 'Technology'", k=3
    ),
    RecommendationRequest.from_sql(
        "SELECT * FROM store_orders WHERE category = 'Furniture'",
        reference=Reference.complement(),  # vs everything else, not vs D
        k=3,
    ),
    RecommendationRequest.from_sql(
        "SELECT * FROM store_orders WHERE region = 'West'",
        reference=Reference.query("SELECT * FROM store_orders WHERE region = 'East'"),
        k=3,
    ),
]


def main() -> None:
    # 1. One backend, one service: the process-wide serving stack.
    backend = MemoryBackend()
    backend.register_table(load_dataset("store_orders"))
    service = single_backend_service(
        backend, SeeDBConfig(metric="js", k=3), owned=True, max_workers=8
    )

    # 2. The HTTP frontend shares the service (port 0 = pick a free one).
    server, thread = serve_in_thread(service)
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    print(f"serving on {base}")

    # 3. Eight concurrent analyst sessions over the same service. Every
    #    session walks the same request list, so identical requests overlap
    #    in flight (coalesced) or repeat (result-cache hits).
    def analyst(worker: int) -> str:
        with AnalystSession(service=service) as session:
            for request in REQUESTS:
                result = session.issue(request)
            top = result.recommendations[0]
            return f"session {worker}: top view {top.spec.label!r} ({top.utility:.3f})"

    with ThreadPoolExecutor(max_workers=8) as pool:
        for line in pool.map(analyst, range(8)):
            print(line)

    # 4. An HTTP client posts the same request's wire form (schema_version
    #    1, the exact dict to_dict() emits) and gets the cached answer.
    http_request = urllib.request.Request(
        base + "/recommend",
        data=json.dumps(REQUESTS[0].to_dict()).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(http_request, timeout=30) as response:
        body = json.loads(response.read())
    print(f"http client: top view {body['recommendations'][0]['label']!r}")

    # 5. Progressive delivery over HTTP: NDJSON rounds from the
    #    incremental engine — a useful top-k long before the final answer.
    stream_request = urllib.request.Request(
        base + "/recommend/stream",
        data=json.dumps(REQUESTS[0].to_dict()).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(stream_request, timeout=30) as response:
        lines = [json.loads(line) for line in response if line.strip()]
    first, final = lines[0], lines[-1]
    print(
        f"stream: round 1 top {first['recommendations'][0]['label']!r} "
        f"after 1/{first['n_rounds']} phases; "
        f"{len(lines) - 1} rounds to the final answer"
    )
    assert final["is_final"]

    # 6. Visualization serving (wire schema_version 3): the same request
    #    with an options.render block comes back with a Vega-Lite spec and
    #    a chart-choice rationale paired to every top-k view.
    render_wire = REQUESTS[0].to_dict()
    render_wire.setdefault("options", {})["render"] = {"format": "vega-lite"}
    render_request = urllib.request.Request(
        base + "/recommend",
        data=json.dumps(render_wire).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(render_request, timeout=30) as response:
        body = json.loads(response.read())
    frame = body["visualizations"][0]
    print(
        f"render: {len(body['visualizations'])} specs; #1 is a "
        f"{frame['chart_type']} ({frame['rationale']})"
    )

    # 7. The live dashboard page — self-contained HTML (no CDN) that
    #    consumes /recommend/stream and animates the top-k converging.
    #    Saved as an artifact you can open in any browser while a server
    #    is running.
    with urllib.request.urlopen(
        base + "/dashboard?table=store_orders&where="
        + urllib.parse.quote("category = 'Technology'"),
        timeout=30,
    ) as response:
        html = response.read().decode("utf-8")
    artifact = pathlib.Path("serving_demo_dashboard.html")
    artifact.write_text(html)
    print(f"dashboard: wrote {artifact} ({len(html)} bytes, self-contained)")

    # 8. The stats surface (also at GET /stats): far fewer executions than
    #    requests is the whole point of serving from one warm stack.
    stats = service.snapshot()
    print(
        f"stats: {stats['requests']} requests -> {stats['executions']} "
        f"executions ({stats['coalesced']} coalesced, "
        f"{stats['result_cache_hits']} result-cache hits); "
        f"engine cache hit rate "
        f"{stats['backends']['default']['engine_cache']['hit_rate']:.2f}"
    )

    server.shutdown()
    thread.join(timeout=10)
    server.server_close()
    service.close()


if __name__ == "__main__":
    main()
