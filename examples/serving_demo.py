"""Serving demo: one warm SeeDB service, many concurrent consumers.

Builds a service over the store-orders dataset, starts the HTTP/JSON
frontend on a free port, then drives it from both transports at once —
eight threaded analyst sessions issuing overlapping queries through the
service while HTTP clients hit ``/recommend`` — and prints the service
stats showing request coalescing and shared-result reuse at work.

Run:  python examples/serving_demo.py

(For a standalone server use the CLI instead:
``python -m repro.frontend.cli serve --dataset store_orders --port 8080``.)
"""

import json
import urllib.request
from concurrent.futures import ThreadPoolExecutor

from repro import MemoryBackend, SeeDBConfig
from repro.datasets import load_dataset
from repro.frontend.server import serve_in_thread
from repro.frontend.session import AnalystSession
from repro.service import single_backend_service

QUERIES = [
    "SELECT * FROM store_orders WHERE category = 'Technology'",
    "SELECT * FROM store_orders WHERE category = 'Furniture'",
    "SELECT * FROM store_orders WHERE region = 'West'",
]


def main() -> None:
    # 1. One backend, one service: the process-wide serving stack.
    backend = MemoryBackend()
    backend.register_table(load_dataset("store_orders"))
    service = single_backend_service(
        backend, SeeDBConfig(metric="js", k=3), owned=True, max_workers=8
    )

    # 2. The HTTP frontend shares the service (port 0 = pick a free one).
    server, thread = serve_in_thread(service)
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    print(f"serving on {base}")

    # 3. Eight concurrent analyst sessions over the same service. Every
    #    session walks the same query list, so identical requests overlap
    #    in flight (coalesced) or repeat (result-cache hits).
    def analyst(worker: int) -> str:
        with AnalystSession(service=service) as session:
            for query in QUERIES:
                result = session.issue(query)
            top = result.recommendations[0]
            return f"session {worker}: top view {top.spec.label!r} ({top.utility:.3f})"

    with ThreadPoolExecutor(max_workers=8) as pool:
        for line in pool.map(analyst, range(8)):
            print(line)

    # 4. An HTTP client asking the same question gets the cached answer.
    request = urllib.request.Request(
        base + "/recommend",
        data=json.dumps({"sql": QUERIES[0], "k": 3}).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        body = json.loads(response.read())
    print(f"http client: top view {body['recommendations'][0]['label']!r}")

    # 5. The stats surface (also at GET /stats): far fewer executions than
    #    requests is the whole point of serving from one warm stack.
    stats = service.snapshot()
    print(
        f"stats: {stats['requests']} requests -> {stats['executions']} "
        f"executions ({stats['coalesced']} coalesced, "
        f"{stats['result_cache_hits']} result-cache hits); "
        f"engine cache hit rate "
        f"{stats['backends']['default']['engine_cache']['hit_rate']:.2f}"
    )

    server.shutdown()
    thread.join(timeout=10)
    server.server_close()
    service.close()


if __name__ == "__main__":
    main()
