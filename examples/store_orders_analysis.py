"""Store Orders walkthrough: the Figure 5 interaction, in the terminal.

Demonstrates the frontend surface of the demo (§3.2, §4 Scenario 1) on the
Tableau-Superstore-like dataset: form-based query building, recommendations
with view metadata, the "bad views" panel, and a drill-down into the most
deviating group.

Run:  python examples/store_orders_analysis.py
"""

from repro import MemoryBackend, QueryBuilder, SeeDBConfig
from repro.datasets import generate_store_orders
from repro.frontend.session import AnalystSession


def main() -> None:
    backend = MemoryBackend()
    table = generate_store_orders(n_rows=20_000, seed=11)
    backend.register_table(table)

    session = AnalystSession(
        backend,
        # state refines region and sub_category refines category; the
        # correlation pruner should collapse each pair to one view.
        SeeDBConfig(metric="js", correlation_threshold=0.8),
    )

    # The analyst (via the query-builder form) slices to Technology orders.
    query = (
        QueryBuilder("store_orders", backend.schema("store_orders"))
        .where("category", "=", "Technology")
        .build()
    )
    result = session.issue(query, k=4)
    print(result.summary())

    print("\npruned views (why):")
    for view, reason in result.pruned_views()[:6]:
        print(f"  {view.label}: {reason}")

    print("\nbad views (lowest utility, shown on demand in the demo):")
    for view in result.worst_views(3):
        print(f"  {view.spec.label}: {view.utility:.4f}")

    # Inspect the top view's metadata panel (§3.2).
    top = result.recommendations[0]
    metadata = session.view_metadata(top)
    print(f"\ntop view: {top.spec.label}")
    print(f"  groups: {metadata.n_groups}")
    print(f"  max change at: {metadata.max_change_group!r} "
          f"(delta {metadata.max_change_delta:.3f})")
    print(f"  sample rows (group, target, comparison):")
    for group, target, comparison in metadata.sample_groups:
        print(f"    {group!r}: {target:.2f} vs {comparison:.2f}")

    print("\n" + session.show(top))

    # Drill down into the most deviating group and re-recommend.
    print(f"\n-- drill-down into {top.spec.dimension} = "
          f"{metadata.max_change_group!r} --")
    drilled = session.drill_down(top, metadata.max_change_group, k=3)
    print(drilled.summary())


if __name__ == "__main__":
    main()
