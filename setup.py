"""Setuptools shim.

The offline environment lacks the ``wheel`` package, so PEP 660 editable
installs (which need ``bdist_wheel``) fail. This file enables the legacy
``pip install -e . --no-use-pep517`` path; all metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
