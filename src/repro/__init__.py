"""SeeDB reproduction: automatic recommendation of query visualizations.

Reimplements the system of "SeeDB: Automatically Generating Query
Visualizations" (Vartak, Madden, Parameswaran, Polyzotis; PVLDB 7(13),
2014) as a complete Python library: an in-memory column-store DBMS, a
sqlite3 wrapper, and an optional DuckDB backend (native GROUPING SETS) as
substrates, deviation-based view scoring with pluggable
distance metrics, metadata-driven view-space pruning, a query optimizer
(target/comparison combining, multi-aggregate and multi-group-by sharing
with bin-packed rollups, sampling, parallelism), a visualization layer,
and a frontend with SQL/builder/template query input.

Quickstart::

    from repro import MemoryBackend, SeeDB, col, RowSelectQuery
    from repro.datasets import laserwave_sales_history

    backend = MemoryBackend()
    backend.register_table(laserwave_sales_history())
    result = SeeDB(backend).recommend(
        RowSelectQuery("sales", col("product") == "Laserwave"), k=3
    )
    print(result.summary())
"""

from repro.api import (
    ApiError,
    PartialResult,
    RecommendationRequest,
    Reference,
)
from repro.backends import (
    BackendCapabilities,
    DuckDbBackend,
    MemoryBackend,
    SqliteBackend,
    backend_from_uri,
)
from repro.core import (
    BasicFramework,
    GroupByCombining,
    RecommendationResult,
    SeeDB,
    SeeDBConfig,
    ViewSpec,
)
from repro.db import (
    AttributeRole,
    DataType,
    RowSelectQuery,
    Table,
    col,
    read_csv,
)
from repro.engine import ExecutionContext, ExecutionEngine, SessionCache
from repro.frontend import AnalystSession, QueryBuilder
from repro.metrics import available_metrics, get_metric

__version__ = "1.0.0"

__all__ = [
    "ApiError",
    "PartialResult",
    "RecommendationRequest",
    "Reference",
    "BackendCapabilities",
    "DuckDbBackend",
    "MemoryBackend",
    "SqliteBackend",
    "backend_from_uri",
    "BasicFramework",
    "GroupByCombining",
    "RecommendationResult",
    "SeeDB",
    "SeeDBConfig",
    "ViewSpec",
    "AttributeRole",
    "DataType",
    "RowSelectQuery",
    "Table",
    "col",
    "read_csv",
    "ExecutionEngine",
    "ExecutionContext",
    "SessionCache",
    "AnalystSession",
    "QueryBuilder",
    "available_metrics",
    "get_metric",
    "__version__",
]
