"""SEEDB's project-specific static analysis: invariant lint for the repo.

Run ``python -m repro.analysis src/`` (or ``seedb lint``) to enforce the
cross-cutting contracts the runtime tests can only sample:

* ``lock-order`` — no cycles in the lock-acquisition graph; no
  indefinitely-blocking calls while holding a lock;
* ``guarded-field`` — ``# guarded-by: <lock>`` annotated attributes are
  only touched under their lock;
* ``counter-accounting`` — every backend statement-execution seam
  increments exactly the audited counters;
* ``cancellation`` — long-running engine/service loops reach a
  Deadline/CancelToken checkpoint;
* ``wire-schema`` — the request schema only drifts by versioned addition
  against its committed snapshot.

See :mod:`repro.analysis.core` for the suppression and baseline
machinery, and ``analysis-baseline.toml`` at the repo root for the
justified waivers of pre-existing, provably-benign findings.
"""

from repro.analysis.baseline import Baseline, BaselineError, Waiver, load_baseline
from repro.analysis.core import (
    CHECKERS,
    AnalysisReport,
    Checker,
    ProgramFacts,
    Violation,
    analyze_paths,
    load_program,
    register,
)
from repro.analysis.facts import ModuleFacts, extract_module

__all__ = [
    "AnalysisReport",
    "Baseline",
    "BaselineError",
    "CHECKERS",
    "Checker",
    "ModuleFacts",
    "ProgramFacts",
    "Violation",
    "Waiver",
    "analyze_paths",
    "extract_module",
    "load_baseline",
    "load_program",
    "register",
]
