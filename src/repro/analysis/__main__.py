"""``python -m repro.analysis`` / ``seedb lint``: the analysis CLI.

Exit codes: 0 clean (waivers allowed), 1 violations, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.analysis.baseline import BaselineError, load_baseline
from repro.analysis.core import CHECKERS, analyze_paths

DEFAULT_BASELINE = "analysis-baseline.toml"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="SEEDB invariant lint: lock order, guarded fields, "
        "counter accounting, cancellation coverage, wire-schema drift.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated rule subset (default: all registered rules)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"waiver file (default: {DEFAULT_BASELINE} when present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file (report every finding)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    import repro.analysis.checkers  # noqa: F401 - registration side effect

    if args.list_rules:
        for rule in sorted(CHECKERS):
            print(f"{rule}: {CHECKERS[rule].description}")
        return 0

    baseline = None
    if not args.no_baseline:
        path = args.baseline
        if path is None and os.path.exists(DEFAULT_BASELINE):
            path = DEFAULT_BASELINE
        if path is not None:
            try:
                baseline = load_baseline(path)
            except (OSError, BaselineError) as exc:
                print(f"error: cannot load baseline {path}: {exc}", file=sys.stderr)
                return 2

    rules = None
    if args.rules:
        rules = [rule.strip() for rule in args.rules.split(",") if rule.strip()]
    try:
        report = analyze_paths(args.paths, rules=rules, baseline=baseline)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2, default=str))
        return 0 if report.clean else 1

    for violation in report.violations:
        print(violation.format())
    summary = (
        f"{len(report.violations)} violation(s), "
        f"{len(report.waived)} waived, "
        f"{len(report.suppressed)} suppressed inline, "
        f"{report.files} file(s), rules: {', '.join(report.rules)}"
    )
    print(("FAIL: " if report.violations else "OK: ") + summary)
    for unused in report.unused_waivers:
        print(f"warning: unused baseline waiver {unused}", file=sys.stderr)
    return 0 if report.clean else 1


if __name__ == "__main__":
    raise SystemExit(main())
