"""The committed waiver file: ``analysis-baseline.toml``.

Pre-existing findings that are provably benign are waived here instead of
suppressed inline, so the justification lives in one reviewable place and
``python -m repro.analysis src/`` stays at exit 0. Format::

    [[waiver]]
    rule = "lock-order"
    path = "src/repro/engine/cache.py"
    contains = "fetch_table"           # optional message substring
    reason = "why this finding is acceptable"

A waiver matches a violation when the rule is equal, the violation's path
ends with the waiver's ``path`` (so the file works from any invocation
directory), and ``contains`` (when present) is a substring of the
message. ``reason`` is mandatory — an unjustified waiver is a parse
error. Waivers that match nothing are reported so the file cannot rot.

Parsing prefers :mod:`tomllib` (3.11+); on 3.10 a fallback parser covers
exactly the subset above (``[[waiver]]`` tables of string keys).
"""

from __future__ import annotations

from dataclasses import dataclass, field


class BaselineError(ValueError):
    """The baseline file is malformed or missing required keys."""


@dataclass
class Waiver:
    rule: str
    path: str
    reason: str
    contains: "str | None" = None
    uses: int = 0

    def describe(self) -> str:
        extra = f" contains={self.contains!r}" if self.contains else ""
        return f"[{self.rule}] {self.path}{extra}"


@dataclass
class Baseline:
    waivers: "list[Waiver]" = field(default_factory=list)

    def waive(self, violation) -> "str | None":
        """The matching waiver's reason, or None. Counts the use."""
        for waiver in self.waivers:
            if waiver.rule != violation.rule:
                continue
            if not _path_matches(violation.path, waiver.path):
                continue
            if waiver.contains and waiver.contains not in violation.message:
                continue
            waiver.uses += 1
            return waiver.reason
        return None

    def unused(self) -> "list[str]":
        return [w.describe() for w in self.waivers if w.uses == 0]


def _path_matches(violation_path: str, waiver_path: str) -> bool:
    v = violation_path.replace("\\", "/")
    w = waiver_path.replace("\\", "/")
    return v == w or v.endswith("/" + w) or v.endswith(w)


def _parse_toml(text: str) -> dict:
    try:
        import tomllib
    except ImportError:  # Python 3.10: minimal fallback for our subset
        return _parse_minimal(text)
    return tomllib.loads(text)


def _parse_minimal(text: str) -> dict:
    """Parse the ``[[waiver]]`` + string-keys subset used by this file."""
    out: dict = {}
    current: "dict | None" = None
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("[[") and line.endswith("]]"):
            name = line[2:-2].strip()
            current = {}
            out.setdefault(name, []).append(current)
            continue
        if line.startswith("[") and line.endswith("]"):
            name = line[1:-1].strip()
            current = {}
            out[name] = current
            continue
        if "=" in line:
            key, _, value = line.partition("=")
            key = key.strip()
            value = value.strip()
            if value.startswith('"') and value.endswith('"') and len(value) >= 2:
                parsed: object = value[1:-1]
            elif value in ("true", "false"):
                parsed = value == "true"
            else:
                try:
                    parsed = int(value)
                except ValueError:
                    raise BaselineError(
                        f"unsupported TOML value in baseline: {raw!r}"
                    ) from None
            if current is None:
                out[key] = parsed
            else:
                current[key] = parsed
            continue
        raise BaselineError(f"unsupported TOML line in baseline: {raw!r}")
    return out


def load_baseline(path: str) -> Baseline:
    with open(path, "r", encoding="utf-8") as handle:
        data = _parse_toml(handle.read())
    waivers: list[Waiver] = []
    for index, entry in enumerate(data.get("waiver", [])):
        if not isinstance(entry, dict):
            raise BaselineError(f"waiver #{index + 1} is not a table")
        missing = [key for key in ("rule", "path", "reason") if not entry.get(key)]
        if missing:
            raise BaselineError(
                f"waiver #{index + 1} is missing required keys {missing} "
                "(every waiver needs rule, path, and a justification)"
            )
        waivers.append(
            Waiver(
                rule=str(entry["rule"]),
                path=str(entry["path"]),
                reason=str(entry["reason"]),
                contains=(
                    str(entry["contains"]) if entry.get("contains") else None
                ),
            )
        )
    return Baseline(waivers=waivers)
