"""The five built-in rule families; importing this package registers them."""

from repro.analysis.checkers import (  # noqa: F401
    cancellation,
    counters,
    guarded_field,
    lock_order,
    wire_schema,
)
