"""cancellation-coverage: long-running loops must observe cancellation.

**Rule.** In the engine's phase/round machinery and the service/cluster
dispatch paths, any outermost loop that performs potentially long or
blocking work — backend statement execution, pipe ``recv``, unbounded
``wait`` / ``join`` / ``result`` / queue ``get`` — must reach a
``Deadline`` / ``CancelToken`` checkpoint: a reference to the
cancellation vocabulary (``token`` / ``deadline`` / ``check_cancel`` /
``check_current`` / ``should_stop`` / ``expired`` / ``is_set`` /
``_closing`` / ``_done`` / ...) in the loop's condition or body, or every
blocking call in the loop carrying an explicit timeout (a bounded wait is
its own checkpoint).

Scope is the module list below — the places the lifecycle contract
("every request terminates within deadline + grace") depends on. Loops
that are cancellation-free *by design* (the worker dispatch loop exits
via its shutdown op and parent-death heartbeat) carry an inline waiver
with the reason.

Suppress with ``# seedb-lint: disable=cancellation -- <reason>``.
"""

from __future__ import annotations

from repro.analysis.core import Checker, ProgramFacts, Violation, register
from repro.analysis.facts import CallSite, LoopFacts

#: Modules whose loops the lifecycle contract depends on.
SCOPE = (
    "engine/phases.py",
    "engine/incremental.py",
    "engine/multiview.py",
    "engine/engine.py",
    "optimizer/parallel.py",
    "optimizer/plan.py",
    "service/service.py",
    "service/cluster.py",
    "service/worker.py",
)

#: Attribute calls that are long/blocking wherever they appear.
ALWAYS_BLOCKING = ("execute", "execute_grouping_sets", "recv", "fetch_table")
#: Attribute calls that are blocking only without a timeout.
UNBOUNDED_BLOCKING = ("wait", "join", "result")
QUEUE_RECEIVERS = ("inbox", "outbox", "queue", "requests")

#: Names whose presence in a loop marks a cancellation checkpoint.
CHECK_NAMES = {
    "check",
    "check_cancel",
    "check_cancelled",
    "check_current",
    "should_stop",
    "expired",
    "remaining",
    "is_set",
    "fault_point",  # fault points double as cancel checkpoints in tests
}
CHECK_SUBSTRINGS = ("token", "deadline", "cancel")
CHECK_SUFFIXES = ("_closing", "_done", "_stop", "closing", "stopping")


def _blocking_calls(loop: LoopFacts) -> "list[CallSite]":
    out: list[CallSite] = []
    for site in loop.calls:
        attr = site.attr
        last = site.receiver[-1] if site.receiver else ""
        if attr in ALWAYS_BLOCKING:
            out.append(site)
        elif attr in UNBOUNDED_BLOCKING and not site.has_timeout:
            out.append(site)
        elif (
            attr == "get"
            and not site.has_timeout
            and any(fragment in last for fragment in QUEUE_RECEIVERS)
        ):
            out.append(site)
    return out


def _has_checkpoint(loop: LoopFacts) -> bool:
    for name in loop.names:
        if name in CHECK_NAMES:
            return True
        lowered = name.lower()
        if any(sub in lowered for sub in CHECK_SUBSTRINGS):
            return True
        if any(lowered.endswith(suffix) for suffix in CHECK_SUFFIXES):
            return True
    return False


@register
class CancellationChecker(Checker):
    rule = "cancellation"
    description = (
        "long-running loops in the engine/service that never reach a "
        "Deadline/CancelToken check"
    )

    def check(self, program: ProgramFacts) -> "list[Violation]":
        violations: list[Violation] = []
        for module in program.modules:
            norm = module.path.replace("\\", "/")
            if not any(norm.endswith(scoped) for scoped in SCOPE):
                continue
            for function in module.functions:
                for loop in function.loops:
                    self._check_loop(loop, function, module, violations)
        return violations

    def _check_loop(self, loop, function, module, violations) -> None:
        blocking = _blocking_calls(loop)
        long_running = bool(blocking) or loop.is_while_true
        if not long_running:
            # Descend: an inner loop may still be the long-running one.
            for child in loop.children:
                self._check_loop(child, function, module, violations)
            return
        if _has_checkpoint(loop):
            # The loop (or something it encloses) observes cancellation;
            # inner loops iterate between those checks.
            return
        if blocking and all(site.has_timeout for site in blocking):
            return  # every wait is bounded — its own checkpoint
        what = (
            f"blocking on {blocking[0].text}()"
            if blocking
            else "an unbounded 'while True'"
        )
        violations.append(
            Violation(
                rule=self.rule,
                path=module.path,
                line=loop.line,
                message=(
                    f"loop in {function.qualname} ({what}) never reaches a "
                    "Deadline/CancelToken check; add a token/deadline "
                    "checkpoint or an explicit waiver"
                ),
            )
        )
