"""counter-accounting: no statement-execution seam bypasses the counters.

**Rule.** In ``backends/``, every method of a ``Backend`` subclass that
executes a raw statement — an ``.execute(...)`` on a connection-, cursor-
or engine-shaped receiver — must route its accounting through exactly the
seams the conformance suite audits: a direct call to
``_record_queries`` / ``_record_metadata_queries``, or a call to a
same-class helper that records directly (one interprocedural hop, which
covers the ``_run`` / ``_metadata_sql`` / ``_run_to_table`` wrappers the
SQL backends funnel everything through).

Data-management methods (``register_table``, ``drop_table``,
``create_sample``, connection setup, ``close``) are exempt: DDL and bulk
loads are deliberately uncounted — ``queries_executed`` /
``statements_executed`` / ``metadata_queries_executed`` measure the
paper's query-sharing effects, not maintenance traffic. A deliberate
uncounted seam (the memory backend counts inside its query engine's
stats lock instead) carries an inline suppression with its reason.

Suppress with ``# seedb-lint: disable=counter-accounting -- <reason>``.
"""

from __future__ import annotations

from repro.analysis.core import Checker, ProgramFacts, Violation, register
from repro.analysis.facts import CallSite

#: Receiver roots/parts that mark an ``execute`` as a raw statement.
RAW_RECEIVER_PARTS = ("connection", "cursor", "con", "engine", "_connection")
RECORDERS = ("_record_queries", "_record_metadata_queries")
#: Methods allowed to execute raw statements without accounting:
#: construction, data (DDL/load) management, and teardown.
EXEMPT_METHODS = {
    "__init__",
    "close",
    "register_table",
    "register_derived",
    "drop_table",
    "create_sample",
    "create_sample_clientside",
    "_connect",
    "_connection",
    "_setup",
    "_require_table",
}


def _is_raw_execute(site: CallSite) -> bool:
    if site.attr != "execute":
        return False
    return any(
        part in RAW_RECEIVER_PARTS
        or any(part.startswith(root) for root in ("_connection", "cursor"))
        for part in site.receiver
    )


@register
class CounterAccountingChecker(Checker):
    rule = "counter-accounting"
    description = (
        "backend statement-execution paths that bypass "
        "queries/statements/metadata accounting"
    )

    def check(self, program: ProgramFacts) -> "list[Violation]":
        violations: list[Violation] = []
        for class_name, (facts, module) in program.classes.items():
            if "backends" not in module.path.replace("\\", "/"):
                continue
            if "Backend" not in program.mro(class_name) and not any(
                base.endswith("Backend") for base in facts.bases
            ):
                continue
            recording = self._recording_methods(program, class_name)
            for method in facts.methods.values():
                if method.name in EXEMPT_METHODS:
                    continue
                raw_sites = [s for s in method.calls if _is_raw_execute(s)]
                if not raw_sites:
                    continue
                if self._records(method, recording):
                    continue
                site = raw_sites[0]
                violations.append(
                    Violation(
                        rule=self.rule,
                        path=module.path,
                        line=site.line,
                        message=(
                            f"{class_name}.{method.name} executes a raw "
                            f"statement ({site.text}) without recording it "
                            "via _record_queries/_record_metadata_queries "
                            "(directly or through a recording helper)"
                        ),
                    )
                )
        return violations

    @staticmethod
    def _recording_methods(program: ProgramFacts, class_name: str) -> set:
        """Same-class (MRO-wide) methods that record counters directly."""
        out: set = set()
        for name in program.mro(class_name):
            for method in program.classes[name][0].methods.values():
                if any(site.attr in RECORDERS for site in method.calls):
                    out.add(method.name)
        return out

    @staticmethod
    def _records(method, recording: set) -> bool:
        for site in method.calls:
            if site.attr in RECORDERS:
                return True
            if site.chain[0] in ("self", "cls") and site.attr in recording:
                return True
        return False
