"""guarded-field: ``# guarded-by: _lock`` annotations, enforced.

**Rule.** A class attribute annotated on its defining assignment with
``# guarded-by: <lock_attr>`` may only be read or written:

* inside a ``with self.<lock_attr>:`` block (any lock expression that
  resolves, via static MRO walk, to the same defining class attribute);
* in ``__init__`` (construction precedes sharing);
* in a method whose docstring declares the convention this codebase
  already uses for internal helpers: "caller holds ... lock".

Everything else is a race waiting for a schedule and is reported. The
annotation goes on the assignment line in ``__init__`` (or a class-body
assignment for class-level state), e.g.::

    self._pending = {}  # guarded-by: _cluster_lock

Accesses through aliases (``cache._leases``) and closures are invisible
to this pass — it checks ``self.X`` / ``cls.X`` only, which is how all
annotated state in this codebase is touched.

Suppress with ``# seedb-lint: disable=guarded-field -- <reason>``.
"""

from __future__ import annotations

import re

from repro.analysis.core import Checker, ProgramFacts, Violation, register

_CALLER_HOLDS_RE = re.compile(r"caller holds[^.\n]*lock", re.IGNORECASE)


@register
class GuardedFieldChecker(Checker):
    rule = "guarded-field"
    description = (
        "reads/writes of '# guarded-by:' annotated attributes outside a "
        "guarding with-block"
    )

    def check(self, program: ProgramFacts) -> "list[Violation]":
        violations: list[Violation] = []
        for class_name, (facts, module) in program.classes.items():
            guarded = self._guarded_fields(program, class_name)
            if not guarded:
                continue
            for method in self._all_methods(program, class_name, facts):
                if method.name == "__init__":
                    continue
                if _CALLER_HOLDS_RE.search(method.docstring):
                    continue
                for access in method.accesses:
                    guard_node = guarded.get(access.attr)
                    if guard_node is None:
                        continue
                    if self._under_guard(
                        program, method, module, guard_node, access.line
                    ):
                        continue
                    violations.append(
                        Violation(
                            rule=self.rule,
                            path=module.path,
                            line=access.line,
                            message=(
                                f"{'write to' if access.is_store else 'read of'} "
                                f"{class_name}.{access.attr} outside its "
                                f"guard {guard_node} "
                                f"(in {method.qualname})"
                            ),
                        )
                    )
        return violations

    @staticmethod
    def _guarded_fields(
        program: ProgramFacts, class_name: str
    ) -> "dict[str, str]":
        """field attr -> resolved guard lock node, MRO-inherited."""
        out: dict[str, str] = {}
        for name in reversed(program.mro(class_name)):
            facts = program.classes[name][0]
            for attr, (guard_attr, _) in facts.guarded.items():
                resolved = program.resolve_lock(class_name, guard_attr)
                out[attr] = resolved or f"{name}.{guard_attr}"
        return out

    @staticmethod
    def _all_methods(program: ProgramFacts, class_name: str, facts):
        """The class's own methods plus closures defined inside them."""
        module = program.classes[class_name][1]
        own = set()
        for method in facts.methods.values():
            own.add(method.qualname)
            yield method
        for function in module.functions:
            if (
                function.class_name == class_name
                and function.qualname not in own
                and any(
                    function.qualname.startswith(prefix + ".")
                    for prefix in own
                )
            ):
                yield function

    @staticmethod
    def _under_guard(
        program: ProgramFacts, method, module, guard_node: str, line: int
    ) -> bool:
        for chain, start, end in method.lock_spans:
            if not (start <= line <= end):
                continue
            node = program.lock_node(chain, method, module)
            if node == guard_node:
                return True
        return False
