"""lock-order: cycles in the lock-acquisition graph + blocking under locks.

**Rule.** Build a directed graph over lock identities (``Class._attr``
for instance/class locks resolved by static MRO walk, ``module._name``
for module-level locks). An edge ``A -> B`` exists when code acquires
``B`` while holding ``A`` — either a lexically nested ``with`` block, or
(one hop interprocedurally) a ``self.``/``cls.``/``super().`` method call
under ``A`` whose target's body opens ``with B:`` at its top level. Any
cycle is a potential deadlock and is reported once per cycle.

**Also.** Calls that can block indefinitely while a lock is held are
reported: backend statement execution (``.execute`` /
``.execute_grouping_sets`` / ``.fetch_table`` on backend-ish receivers),
``Queue.get`` without a timeout on queue-ish receivers (``inbox`` /
``outbox`` / ``queue``), ``Process.join`` without a timeout, pipe
``.recv``, and ``Event.wait`` without a timeout. Deliberate cases (the
session cache computes misses under its lock to coalesce requests) carry
baseline waivers with their justification.

Suppress with ``# seedb-lint: disable=lock-order -- <reason>``.
"""

from __future__ import annotations

from repro.analysis.core import Checker, ProgramFacts, Violation, register
from repro.analysis.facts import CallSite, FunctionFacts, LockBlock, ModuleFacts

#: Receiver name fragments that make an ``execute``-family call a DBMS
#: round trip (`self.backend.execute`, `slot.backend.fetch_table`, ...).
BACKEND_RECEIVERS = ("backend",)
EXECUTE_ATTRS = ("execute", "execute_grouping_sets", "fetch_table")
QUEUE_RECEIVERS = ("inbox", "outbox", "queue", "requests")
PIPE_RECEIVERS = ("outbox", "conn", "pipe", "reader")
PROCESS_RECEIVERS = ("process", "thread", "proc", "worker")


def _blocking_reason(site: CallSite) -> "str | None":
    attr = site.attr
    recv = site.receiver
    last = recv[-1] if recv else ""
    recv_text = ".".join(recv)
    if attr in EXECUTE_ATTRS and any(
        fragment in part for part in recv for fragment in BACKEND_RECEIVERS
    ):
        return f"backend round trip '{site.text}'"
    if attr == "get" and not site.has_timeout and any(
        fragment in last for fragment in QUEUE_RECEIVERS
    ):
        return f"queue get without timeout '{site.text}'"
    if attr == "join" and not site.has_timeout and any(
        fragment in recv_text for fragment in PROCESS_RECEIVERS
    ):
        return f"join without timeout '{site.text}'"
    if attr == "recv" and last in PIPE_RECEIVERS:
        return f"pipe recv '{site.text}'"
    if attr == "wait" and not site.has_timeout and "event" in last:
        return f"unbounded event wait '{site.text}'"
    return None


@register
class LockOrderChecker(Checker):
    rule = "lock-order"
    description = (
        "lock-acquisition cycles and indefinitely-blocking calls made "
        "while holding a lock"
    )

    def check(self, program: ProgramFacts) -> "list[Violation]":
        violations: list[Violation] = []
        #: edge (held, acquired) -> (path, line) of one example site.
        edges: "dict[tuple[str, str], tuple[str, int]]" = {}

        for module in program.modules:
            for function in module.functions:
                for block in function.lock_blocks:
                    self._walk_block(
                        program, module, function, block, [], edges, violations
                    )

        violations.extend(self._find_cycles(edges))
        return violations

    def _walk_block(
        self,
        program: ProgramFacts,
        module: ModuleFacts,
        function: FunctionFacts,
        block: LockBlock,
        held: "list[str]",
        edges,
        violations: "list[Violation]",
    ) -> None:
        node = program.lock_node(block.chain, function, module)
        if node is not None:
            for outer in held:
                edges.setdefault((outer, node), (module.path, block.line))
            held = held + [node]
            # Blocking calls anywhere under this lock.
            for site in block.calls:
                reason = _blocking_reason(site)
                if reason is not None:
                    violations.append(
                        Violation(
                            rule=self.rule,
                            path=module.path,
                            line=site.line,
                            message=(
                                f"{reason} while holding {node} "
                                f"(in {function.qualname})"
                            ),
                        )
                    )
            # One-hop interprocedural edges: self/cls/super() calls whose
            # target opens a lock at its top level.
            for site in block.calls:
                for target_lock, _ in self._callee_locks(
                    program, module, function, site
                ):
                    for outer in held:
                        if outer != target_lock:
                            edges.setdefault(
                                (outer, target_lock), (module.path, site.line)
                            )
        for child in block.children:
            self._walk_block(
                program, module, function, child, held, edges, violations
            )

    def _callee_locks(
        self,
        program: ProgramFacts,
        module: ModuleFacts,
        function: FunctionFacts,
        site: CallSite,
    ):
        """Top-level locks acquired by the (statically resolved) callee."""
        target: "FunctionFacts | None" = None
        target_module = module
        if len(site.chain) == 2 and site.chain[0] in ("self", "cls"):
            if function.class_name is not None:
                target = program.resolve_method(
                    function.class_name, site.chain[1]
                )
        elif len(site.chain) == 2 and site.chain[0] == "super()":
            if function.class_name is not None:
                target = program.resolve_method(
                    function.class_name, site.chain[1], skip_self=True
                )
        elif len(site.chain) == 1:
            name = site.chain[0]
            target = self._module_function(module, name)
            if target is None and name in module.imports:
                dotted = module.imports[name]
                source_module = program.by_dotted.get(
                    dotted.rsplit(".", 1)[0] if "." in dotted else dotted
                )
                if source_module is not None:
                    target_module = source_module
                    target = self._module_function(
                        source_module, dotted.rsplit(".", 1)[-1]
                    )
        if target is None:
            return
        owner_module = target_module
        if target.class_name is not None:
            entry = program.classes.get(target.class_name)
            if entry is not None:
                owner_module = entry[1]
        for inner in target.lock_blocks:
            resolved = program.lock_node(inner.chain, target, owner_module)
            if resolved is not None:
                yield resolved, inner.line

    @staticmethod
    def _module_function(
        module: ModuleFacts, name: str
    ) -> "FunctionFacts | None":
        for function in module.functions:
            if function.class_name is None and function.qualname == name:
                return function
        return None

    def _find_cycles(self, edges) -> "list[Violation]":
        graph: "dict[str, list[str]]" = {}
        for held, acquired in edges:
            graph.setdefault(held, []).append(acquired)
        reported: set = set()
        violations: list[Violation] = []

        def dfs(node: str, stack: "list[str]", on_stack: set) -> None:
            for succ in graph.get(node, []):
                if succ in on_stack:
                    cycle = stack[stack.index(succ) :] + [succ]
                    key = frozenset(cycle)
                    if key not in reported:
                        reported.add(key)
                        path, line = edges[(node, succ)]
                        violations.append(
                            Violation(
                                rule=self.rule,
                                path=path,
                                line=line,
                                message=(
                                    "lock-order cycle (potential deadlock): "
                                    + " -> ".join(cycle)
                                ),
                            )
                        )
                    continue
                dfs(succ, stack + [succ], on_stack | {succ})

        for start in sorted(graph):
            dfs(start, [start], {start})
        return violations
