"""wire-schema: the wire schemas may only grow, and only versioned.

**Rule.** ``repro.api.schema.request_json_schema()`` — and, since wire
version 3, ``response_json_schema()`` — is the service's wire contract;
``tests/data/api_contract.json`` is its committed snapshot. This checker
flattens both documents to ``path = value`` pairs and diffs them:

* a **removal** or **change** of any committed path fails — clients
  depend on it;
* an **addition** is allowed only when ``schema_version`` was bumped
  above the committed snapshot's (a versioned addition); unversioned
  additions fail;
* an identical schema is clean.

Intentional breaking changes regenerate the snapshot *and* bump
``SCHEMA_VERSION`` in the same commit, which this checker (and the
runtime contract test) then accepts.

The generated schema is obtained by importing ``repro.api.schema`` — the
module is import-pure — so the diff is exact rather than an AST
approximation of dict literals. The checker runs only when the analyzed
tree contains ``api/schema.py``.

Suppress with ``# seedb-lint: disable=wire-schema -- <reason>`` (there is
deliberately no baseline waiver for schema drift).
"""

from __future__ import annotations

import json
import os

from repro.analysis.core import Checker, ProgramFacts, Violation, register

CONTRACT_RELPATH = os.path.join("tests", "data", "api_contract.json")


def flatten(doc, prefix: str = "") -> "dict[str, object]":
    """``{json-path: scalar}`` pairs for a JSON document."""
    out: dict[str, object] = {}
    if isinstance(doc, dict):
        if not doc:
            out[prefix or "$"] = "{}"
        for key in sorted(doc):
            out.update(flatten(doc[key], f"{prefix}.{key}" if prefix else key))
    elif isinstance(doc, list):
        if not doc:
            out[prefix or "$"] = "[]"
        for index, item in enumerate(doc):
            out.update(flatten(item, f"{prefix}[{index}]"))
    else:
        out[prefix or "$"] = doc
    return out


def diff_schemas(
    committed: dict, current: dict
) -> "list[tuple[str, str, str]]":
    """``(kind, path, detail)`` findings; empty means no illegal drift.

    ``kind`` is one of ``removed`` / ``changed`` / ``unversioned-add``.
    """
    old = flatten(committed)
    new = flatten(current)
    committed_version = committed.get("schema_version", 0)
    current_version = current.get("schema_version", 0)
    versioned = current_version > committed_version
    findings: list[tuple[str, str, str]] = []
    for path in sorted(old):
        if path == "schema_version":
            continue
        if path not in new:
            findings.append(
                ("removed", path, f"was {old[path]!r}, now absent")
            )
        elif new[path] != old[path]:
            findings.append(
                ("changed", path, f"was {old[path]!r}, now {new[path]!r}")
            )
    if not versioned:
        for path in sorted(set(new) - set(old)):
            findings.append(
                (
                    "unversioned-add",
                    path,
                    f"added ({new[path]!r}) without bumping schema_version "
                    f"(still {current_version})",
                )
            )
    if current_version < committed_version:
        findings.append(
            (
                "changed",
                "schema_version",
                f"went backwards: {committed_version} -> {current_version}",
            )
        )
    return findings


@register
class WireSchemaChecker(Checker):
    rule = "wire-schema"
    description = (
        "drift between api/schema.py and the committed wire-contract "
        "snapshot that is not a versioned addition"
    )

    def check(self, program: ProgramFacts) -> "list[Violation]":
        schema_module = None
        for module in program.modules:
            if module.path.replace("\\", "/").endswith("api/schema.py"):
                schema_module = module
                break
        if schema_module is None:
            return []  # schema not in the analyzed tree
        contract_path = self._contract_path(schema_module.path)
        if contract_path is None or not os.path.exists(contract_path):
            return [
                Violation(
                    rule=self.rule,
                    path=schema_module.path,
                    line=1,
                    message=(
                        f"wire-contract snapshot {CONTRACT_RELPATH} not "
                        "found; the schema has no committed baseline to "
                        "diff against"
                    ),
                )
            ]
        with open(contract_path, "r", encoding="utf-8") as handle:
            contract = json.load(handle)
        from repro.api.schema import request_json_schema, response_json_schema

        anchor = self._anchor_line(schema_module)
        # (label, committed, live) per schema under contract. Response
        # coverage is .get-guarded so the checker still runs against
        # request-only snapshots from before wire version 3.
        pairs = [
            (
                "request",
                contract.get("request_schema", contract),
                request_json_schema(),
            )
        ]
        if contract.get("response_schema") is not None:
            pairs.append(
                ("response", contract["response_schema"], response_json_schema())
            )
        return [
            Violation(
                rule=self.rule,
                path=schema_module.path,
                line=anchor,
                message=(
                    f"wire-schema drift in {label} schema [{kind}] "
                    f"at {path}: {detail}"
                ),
            )
            for label, committed, current in pairs
            for kind, path, detail in diff_schemas(committed, current)
        ]

    @staticmethod
    def _contract_path(schema_path: str) -> "str | None":
        """Walk up from api/schema.py to the repo root holding tests/."""
        current = os.path.dirname(os.path.abspath(schema_path))
        for _ in range(8):
            candidate = os.path.join(current, CONTRACT_RELPATH)
            if os.path.exists(candidate):
                return candidate
            parent = os.path.dirname(current)
            if parent == current:
                break
            current = parent
        return None

    @staticmethod
    def _anchor_line(module) -> int:
        for function in module.functions:
            if function.qualname == "request_json_schema":
                return function.line
        return 1
