"""Checker registry, whole-program facts, and the analysis driver.

A checker is a class with a ``rule`` name and a ``check(program)`` method
returning :class:`Violation` objects; registration is by decorator, and
``python -m repro.analysis`` runs every registered checker over the
extracted :class:`ProgramFacts`. Violations pass through two filters
before they fail the run:

* inline suppressions — ``# seedb-lint: disable=<rule> -- <reason>`` on
  (or immediately above) the flagged line, or
  ``# seedb-lint: file-disable=<rule>`` anywhere in the file;
* the committed baseline (``analysis-baseline.toml``) of waived findings,
  each carrying a justification (:mod:`repro.analysis.baseline`).

Everything left is a hard failure: the exit code contract is 0 for clean
(possibly with waivers), 1 for violations, 2 for usage errors.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.analysis.baseline import Baseline
from repro.analysis.facts import ClassFacts, FunctionFacts, ModuleFacts, extract_module


@dataclass
class Violation:
    """One finding: rule, location, and a human-readable message."""

    rule: str
    path: str
    line: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


#: rule name -> checker class. Populated by :func:`register`.
CHECKERS: "dict[str, type]" = {}


def register(cls):
    """Class decorator adding a checker to the registry by its ``rule``."""
    rule = getattr(cls, "rule", None)
    if not rule:
        raise ValueError(f"checker {cls.__name__} has no rule name")
    CHECKERS[rule] = cls
    return cls


class Checker:
    """Base class: one rule, documented in the subclass docstring."""

    rule = ""
    description = ""

    def check(self, program: "ProgramFacts") -> "list[Violation]":
        raise NotImplementedError


class ProgramFacts:
    """Cross-file view: class table, MRO walks, and lock-name resolution."""

    def __init__(self, modules: "list[ModuleFacts]"):
        self.modules = modules
        self.by_dotted: "dict[str, ModuleFacts]" = {
            module.dotted: module for module in modules
        }
        #: class name -> (facts, defining module). Class names are unique
        #: in this codebase; a duplicate keeps the first definition.
        self.classes: "dict[str, tuple[ClassFacts, ModuleFacts]]" = {}
        for module in modules:
            for name, cls in module.classes.items():
                self.classes.setdefault(name, (cls, module))

    # -- name resolution ---------------------------------------------------

    def mro(self, class_name: str) -> "list[str]":
        """Static linearization: the class then bases depth-first.

        Good enough for single-inheritance chains (which is all this
        codebase has); unknown bases terminate the walk.
        """
        seen: list[str] = []

        def visit(name: str) -> None:
            if name in seen or name not in self.classes:
                return
            seen.append(name)
            for base in self.classes[name][0].bases:
                visit(base)

        visit(class_name)
        return seen

    def resolve_lock(self, class_name: str, attr: str) -> "str | None":
        """``Owner.attr`` for the class (via MRO) defining lock ``attr``."""
        for name in self.mro(class_name):
            if attr in self.classes[name][0].lock_attrs:
                return f"{name}.{attr}"
        return None

    def resolve_method(
        self, class_name: str, method: str, skip_self: bool = False
    ) -> "FunctionFacts | None":
        """The method the name dispatches to, by static MRO walk.

        ``skip_self=True`` models ``super().method()`` from ``class_name``.
        """
        order = self.mro(class_name)
        if skip_self and order and order[0] == class_name:
            order = order[1:]
        for name in order:
            found = self.classes[name][0].methods.get(method)
            if found is not None:
                return found
        return None

    def lock_node(
        self,
        chain: "tuple[str, ...]",
        function: FunctionFacts,
        module: ModuleFacts,
    ) -> "str | None":
        """Stable graph-node name for a lock expression chain.

        ``self._lock`` / ``cls._lock`` resolve through the class table to
        the defining class; bare names resolve to module-level locks.
        Chains that resolve to nothing lock-like return None (the ``with``
        was over something else, e.g. a connection object).
        """
        if len(chain) == 2 and chain[0] in ("self", "cls"):
            if function.class_name is None:
                return None
            resolved = self.resolve_lock(function.class_name, chain[1])
            if resolved is not None:
                return resolved
            # Unknown attribute: only treat lock-suffixed/condition names
            # as locks so `with self._conn:` style contexts stay out.
            if chain[1].endswith(("_lock", "_cond")) or chain[1] in (
                "_lock",
                "_cond",
            ):
                return f"{function.class_name}.{chain[1]}"
            return None
        if len(chain) == 1:
            name = chain[0]
            if name in module.module_locks:
                return f"{module.dotted}.{name}"
            if name.endswith("_lock"):
                # A function-local lock: real, but private to the function.
                return f"{function.qualname}.<{name}>"
            return None
        return None


@dataclass
class AnalysisReport:
    """The driver's result: violations plus the bookkeeping around them."""

    violations: "list[Violation]" = field(default_factory=list)
    waived: "list[tuple[Violation, str]]" = field(default_factory=list)
    suppressed: "list[Violation]" = field(default_factory=list)
    unused_waivers: "list[str]" = field(default_factory=list)
    files: int = 0
    rules: "list[str]" = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "clean": self.clean,
            "files": self.files,
            "rules": self.rules,
            "violations": [v.__dict__ for v in self.violations],
            "waived": [
                dict(v.__dict__, reason=reason) for v, reason in self.waived
            ],
            "suppressed": [v.__dict__ for v in self.suppressed],
            "unused_waivers": self.unused_waivers,
        }


def collect_files(paths: "list[str]") -> "list[str]":
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs if d not in ("__pycache__", ".git")
                )
                for name in sorted(names):
                    if name.endswith(".py"):
                        out.append(os.path.join(root, name))
        elif path.endswith(".py"):
            out.append(path)
    return out


def load_program(paths: "list[str]") -> ProgramFacts:
    modules = [extract_module(path) for path in collect_files(paths)]
    return ProgramFacts(modules)


def analyze_paths(
    paths: "list[str]",
    rules: "list[str] | None" = None,
    baseline: "Baseline | None" = None,
) -> AnalysisReport:
    """Run checkers over ``paths`` and fold in suppressions + baseline."""
    # Import for the registration side effect (each checker registers).
    import repro.analysis.checkers  # noqa: F401

    program = load_program(paths)
    selected = sorted(rules) if rules else sorted(CHECKERS)
    unknown = [rule for rule in selected if rule not in CHECKERS]
    if unknown:
        raise ValueError(
            f"unknown rule(s) {unknown}; available: {sorted(CHECKERS)}"
        )
    report = AnalysisReport(files=len(program.modules), rules=selected)
    by_path = {module.path: module for module in program.modules}
    findings: list[Violation] = []
    for rule in selected:
        findings.extend(CHECKERS[rule]().check(program))
    findings.sort(key=lambda v: (v.path, v.line, v.rule))
    for violation in findings:
        module = by_path.get(violation.path)
        if module is not None and module.suppressed(
            violation.rule, violation.line
        ):
            report.suppressed.append(violation)
            continue
        if baseline is not None:
            reason = baseline.waive(violation)
            if reason is not None:
                report.waived.append((violation, reason))
                continue
        report.violations.append(violation)
    if baseline is not None:
        report.unused_waivers = baseline.unused()
    return report
