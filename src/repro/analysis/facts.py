"""Per-file fact extraction: the AST layer every checker shares.

One parse per file produces a :class:`ModuleFacts` — classes, functions,
lock-acquisition blocks, call sites, loops, ``# guarded-by:`` field
annotations, and ``# seedb-lint:`` suppression comments — so each checker
is a small pass over pre-digested structure instead of its own AST walk.

The model is deliberately syntactic. Lock identity is a *name chain*
(``self._lock``, ``cls._registry_lock``, a module-level ``_pool_lock``)
resolved later against the whole-program class table
(:class:`~repro.analysis.core.ProgramFacts`); calls are dotted chains
with their ``timeout`` arguments noted. That is exactly the level the
codebase's own conventions live at (``with self._lock:`` blocks,
``# guarded-by: _lock`` comments), which keeps the checkers honest about
what they can and cannot see.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

#: Callables whose result is a lock object for our purposes.
LOCK_FACTORIES = {"Lock", "RLock", "Condition", "allocate_lock"}

_SUPPRESS_RE = re.compile(
    r"#\s*seedb-lint:\s*disable=([A-Za-z0-9_,\-]+)(?:\s*--\s*(?P<reason>.*))?"
)
_FILE_SUPPRESS_RE = re.compile(
    r"#\s*seedb-lint:\s*file-disable=([A-Za-z0-9_,\-]+)(?:\s*--\s*(?P<reason>.*))?"
)
_GUARDED_BY_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")


@dataclass
class CallSite:
    """One call expression: dotted receiver chain plus timeout evidence."""

    chain: tuple[str, ...]  # ("self", "backend", "execute"); ("super()", "close")
    line: int
    has_timeout: bool

    @property
    def attr(self) -> str:
        return self.chain[-1]

    @property
    def receiver(self) -> tuple[str, ...]:
        return self.chain[:-1]

    @property
    def text(self) -> str:
        return ".".join(self.chain)


@dataclass
class LockBlock:
    """One ``with <lock>:`` block; children are lexically nested blocks."""

    chain: tuple[str, ...]
    line: int
    end_line: int
    children: "list[LockBlock]" = field(default_factory=list)
    #: Every call in the block's subtree (the lock is held across all).
    calls: "list[CallSite]" = field(default_factory=list)


@dataclass
class LoopFacts:
    """One for/while loop with everything its subtree mentions."""

    kind: str  # "for" | "while"
    line: int
    is_while_true: bool
    #: Every Name id and Attribute attr in the loop subtree (condition
    #: included) — the cancellation checker's satisfaction vocabulary.
    names: set = field(default_factory=set)
    calls: "list[CallSite]" = field(default_factory=list)
    children: "list[LoopFacts]" = field(default_factory=list)


@dataclass
class AttrAccess:
    """One ``self.X`` / ``cls.X`` attribute read or write."""

    attr: str
    line: int
    is_store: bool


@dataclass
class FunctionFacts:
    name: str
    qualname: str
    class_name: "str | None"
    line: int
    docstring: str
    lock_blocks: "list[LockBlock]" = field(default_factory=list)  # top-level
    #: Flat (chain, start, end) spans for every lock block, nested included.
    lock_spans: "list[tuple[tuple[str, ...], int, int]]" = field(
        default_factory=list
    )
    loops: "list[LoopFacts]" = field(default_factory=list)  # top-level
    calls: "list[CallSite]" = field(default_factory=list)  # all
    accesses: "list[AttrAccess]" = field(default_factory=list)


@dataclass
class ClassFacts:
    name: str
    line: int
    bases: "list[str]" = field(default_factory=list)
    #: lock attribute -> defining line (threading.Lock/RLock/Condition).
    lock_attrs: "dict[str, int]" = field(default_factory=dict)
    #: field attribute -> (guard lock attribute, annotation line).
    guarded: "dict[str, tuple[str, int]]" = field(default_factory=dict)
    methods: "dict[str, FunctionFacts]" = field(default_factory=dict)


@dataclass
class ModuleFacts:
    path: str  # as given on the command line / to analyze_paths
    dotted: str  # "repro.engine.cache" (best effort from the path)
    source: str
    classes: "dict[str, ClassFacts]" = field(default_factory=dict)
    #: Every function in the file: module level, methods, and closures.
    functions: "list[FunctionFacts]" = field(default_factory=list)
    #: Module-level lock assignments: name -> line.
    module_locks: "dict[str, int]" = field(default_factory=dict)
    #: line -> rules suppressed on that line (or the line below it).
    suppressions: "dict[int, set]" = field(default_factory=dict)
    file_suppressions: set = field(default_factory=set)
    #: lines that are pure comments — only these may annotate the line below.
    comment_lines: set = field(default_factory=set)
    #: imported name -> dotted source module ("repro.optimizer.parallel").
    imports: "dict[str, str]" = field(default_factory=dict)

    def suppressed(self, rule: str, line: int) -> bool:
        if rule in self.file_suppressions or "all" in self.file_suppressions:
            return True
        probes = [line]
        if line - 1 in self.comment_lines:
            # A trailing comment on the previous *statement* must not leak
            # onto this line; only a standalone comment annotates downward.
            probes.append(line - 1)
        for probe in probes:
            rules = self.suppressions.get(probe)
            if rules and (rule in rules or "all" in rules):
                return True
        return False


def _expr_chain(node: ast.expr) -> "tuple[str, ...] | None":
    """Dotted name chain of an expression, or None if not a plain chain."""
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
    elif isinstance(cur, ast.Call):
        if isinstance(cur.func, ast.Name) and cur.func.id == "super":
            parts.append("super()")
        else:
            # Flatten through an intermediate call so e.g.
            # ``self._connection().execute`` yields
            # ``("self", "_connection()", "execute")``.
            inner = _expr_chain(cur.func)
            if inner is None:
                return None
            return inner[:-1] + (inner[-1] + "()",) + tuple(reversed(parts))
    else:
        return None
    return tuple(reversed(parts))


def _call_site(node: ast.Call) -> "CallSite | None":
    chain = _expr_chain(node.func)
    if chain is None:
        return None
    attr = chain[-1]
    has_timeout = any(kw.arg == "timeout" for kw in node.keywords)
    if not has_timeout:
        # Positional timeout forms: Process.join(t), Event.wait(t),
        # Queue.get(block, t).
        if attr in ("join", "wait") and len(node.args) >= 1:
            has_timeout = True
        elif attr == "get" and len(node.args) >= 2:
            has_timeout = True
    return CallSite(chain=chain, line=node.lineno, has_timeout=has_timeout)


def _is_lock_factory(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    chain = _expr_chain(node.func)
    return chain is not None and chain[-1] in LOCK_FACTORIES


def dotted_module_name(path: str) -> str:
    """Best-effort dotted module name from a file path."""
    norm = path.replace("\\", "/")
    parts = [p for p in norm.split("/") if p not in ("", ".")]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or norm


class _FunctionWalker:
    """Recursive statement walk of one function body.

    Tracks the lock-block stack (for nesting edges and per-block call
    attribution) and the loop stack; nested ``def``/``lambda`` bodies are
    handed back to the module extractor as separate functions — code in a
    closure runs later, under whatever locks are held *then*.
    """

    def __init__(self, facts: FunctionFacts, nested_sink):
        self.facts = facts
        self.nested_sink = nested_sink  # list of (ast.FunctionDef, qualname)
        self.lock_stack: list[LockBlock] = []
        self.loop_stack: list[LoopFacts] = []

    def walk_body(self, body) -> None:
        for stmt in body:
            self.walk_stmt(stmt)

    def walk_stmt(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.nested_sink.append(
                (node, f"{self.facts.qualname}.{node.name}")
            )
            return
        if isinstance(node, ast.ClassDef):
            return  # nested classes: out of scope
        if isinstance(node, ast.With):
            self._walk_with(node)
            return
        if isinstance(node, (ast.For, ast.While)):
            self._walk_loop(node)
            return
        # Generic statement: collect expressions, then recurse into any
        # nested statement lists (if/try/etc.).
        self._collect_exprs(node)
        for child_body in self._stmt_bodies(node):
            self.walk_body(child_body)

    @staticmethod
    def _stmt_bodies(node: ast.stmt):
        for name in ("body", "orelse", "finalbody"):
            body = getattr(node, name, None)
            if body and isinstance(body, list) and isinstance(
                body[0], ast.stmt
            ):
                yield body
        for handler in getattr(node, "handlers", []) or []:
            yield handler.body

    def _walk_with(self, node: ast.With) -> None:
        opened: list[LockBlock] = []
        for item in node.items:
            chain = _expr_chain(item.context_expr)
            if chain is not None:
                block = LockBlock(
                    chain=chain,
                    line=node.lineno,
                    end_line=node.end_lineno or node.lineno,
                )
                if self.lock_stack:
                    self.lock_stack[-1].children.append(block)
                else:
                    self.facts.lock_blocks.append(block)
                self.facts.lock_spans.append(
                    (chain, block.line, block.end_line)
                )
                self.lock_stack.append(block)
                opened.append(block)
            else:
                # Not a lock acquisition (``with open(...)``, a
                # contextmanager call): still walk its expression for
                # calls/accesses.
                self._collect_expr(item.context_expr)
            if item.optional_vars is not None:
                self._collect_expr(item.optional_vars)
        self.walk_body(node.body)
        for _ in opened:
            self.lock_stack.pop()

    def _walk_loop(self, node) -> None:
        loop = LoopFacts(
            kind="for" if isinstance(node, ast.For) else "while",
            line=node.lineno,
            is_while_true=(
                isinstance(node, ast.While)
                and isinstance(node.test, ast.Constant)
                and node.test.value is True
            ),
        )
        if self.loop_stack:
            self.loop_stack[-1].children.append(loop)
        else:
            self.facts.loops.append(loop)
        self.loop_stack.append(loop)
        # Header expressions count toward the loop's vocabulary.
        if isinstance(node, ast.For):
            self._collect_expr(node.target)
            self._collect_expr(node.iter)
        else:
            self._collect_expr(node.test)
        self.walk_body(node.body)
        self.walk_body(node.orelse)
        self.loop_stack.pop()

    def _collect_exprs(self, node: ast.stmt) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._collect_expr(child)

    def _collect_expr(self, node: ast.expr) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                site = _call_site(sub)
                if site is not None:
                    self._note_call(site)
            elif isinstance(sub, ast.Attribute):
                if isinstance(sub.value, ast.Name) and sub.value.id in (
                    "self",
                    "cls",
                ):
                    self.facts.accesses.append(
                        AttrAccess(
                            attr=sub.attr,
                            line=sub.lineno,
                            is_store=isinstance(
                                sub.ctx, (ast.Store, ast.Del)
                            ),
                        )
                    )
                self._note_name(sub.attr)
            elif isinstance(sub, ast.Name):
                self._note_name(sub.id)
            elif isinstance(sub, (ast.Lambda,)):
                pass  # bodies run later; header already walked by ast.walk

    def _note_call(self, site: CallSite) -> None:
        self.facts.calls.append(site)
        for block in self.lock_stack:
            block.calls.append(site)
        for loop in self.loop_stack:
            loop.calls.append(site)
        for part in site.chain:
            self._note_name(part)

    def _note_name(self, name: str) -> None:
        for loop in self.loop_stack:
            loop.names.add(name)


def _extract_function(
    node, class_name: "str | None", qualname: str, sink: list
) -> FunctionFacts:
    facts = FunctionFacts(
        name=node.name,
        qualname=qualname,
        class_name=class_name,
        line=node.lineno,
        docstring=ast.get_docstring(node) or "",
    )
    nested: list = []
    walker = _FunctionWalker(facts, nested)
    walker.walk_body(node.body)
    sink.append(facts)
    for child, child_qualname in nested:
        _extract_function(child, class_name, child_qualname, sink)
    return facts


def _guard_comment_lines(source_lines: "list[str]") -> "dict[int, str]":
    out: dict[int, str] = {}
    for index, line in enumerate(source_lines, start=1):
        match = _GUARDED_BY_RE.search(line)
        if match:
            out[index] = match.group(1)
    return out


def _guard_for(
    node: ast.stmt, guard_lines: "dict[int, str]", comment_lines: set
) -> "str | None":
    """The guard annotated on a statement's first/preceding/last line.

    The preceding line only counts when it is a standalone comment —
    otherwise a trailing annotation on the previous statement would leak
    onto this one.
    """
    probes = [node.lineno, node.end_lineno or 0]
    if node.lineno - 1 in comment_lines:
        probes.append(node.lineno - 1)
    for probe in probes:
        guard = guard_lines.get(probe)
        if guard is not None:
            return guard
    return None


def _extract_class(
    node: ast.ClassDef,
    module: ModuleFacts,
    guard_lines: "dict[int, str]",
    comment_lines: set,
    sink: list,
) -> ClassFacts:
    facts = ClassFacts(name=node.name, line=node.lineno)
    for base in node.bases:
        chain = _expr_chain(base)
        if chain:
            facts.bases.append(chain[-1])
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            fn = _extract_function(
                stmt, node.name, f"{node.name}.{stmt.name}", sink
            )
            facts.methods[stmt.name] = fn
            if stmt.name == "__init__":
                _scan_init_assignments(stmt, facts, guard_lines, comment_lines)
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            value = stmt.value
            for target in targets:
                if isinstance(target, ast.Name):
                    if value is not None and _is_lock_factory(value):
                        facts.lock_attrs[target.id] = stmt.lineno
                    guard = _guard_for(stmt, guard_lines, comment_lines)
                    if guard is not None:
                        facts.guarded[target.id] = (guard, stmt.lineno)
    return facts


def _scan_init_assignments(
    init: ast.FunctionDef,
    facts: ClassFacts,
    guard_lines: "dict[int, str]",
    comment_lines: set,
) -> None:
    for stmt in ast.walk(init):
        if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            continue
        targets = (
            stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        )
        value = stmt.value
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                if value is not None and _is_lock_factory(value):
                    facts.lock_attrs[target.attr] = stmt.lineno
                guard = _guard_for(stmt, guard_lines, comment_lines)
                if guard is not None:
                    facts.guarded[target.attr] = (guard, stmt.lineno)


def extract_module(path: str, source: "str | None" = None) -> ModuleFacts:
    """Parse one file into a :class:`ModuleFacts`."""
    if source is None:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    tree = ast.parse(source, filename=path)
    module = ModuleFacts(
        path=path, dotted=dotted_module_name(path), source=source
    )
    lines = source.splitlines()
    guard_lines = _guard_comment_lines(lines)
    module.comment_lines = {
        index
        for index, line in enumerate(lines, start=1)
        if line.lstrip().startswith("#")
    }

    for index, line in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(line)
        if match:
            rules = {r.strip() for r in match.group(1).split(",") if r.strip()}
            module.suppressions.setdefault(index, set()).update(rules)
        match = _FILE_SUPPRESS_RE.search(line)
        if match:
            module.file_suppressions.update(
                r.strip() for r in match.group(1).split(",") if r.strip()
            )

    for stmt in tree.body:
        if isinstance(stmt, ast.ClassDef):
            module.classes[stmt.name] = _extract_class(
                stmt, module, guard_lines, module.comment_lines, module.functions
            )
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _extract_function(stmt, None, stmt.name, module.functions)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and _is_lock_factory(
                    stmt.value
                ):
                    module.module_locks[target.id] = stmt.lineno
        elif isinstance(stmt, ast.ImportFrom) and stmt.module:
            for alias in stmt.names:
                module.imports[alias.asname or alias.name] = (
                    f"{stmt.module}.{alias.name}"
                )
        elif isinstance(stmt, ast.Import):
            for alias in stmt.names:
                module.imports[alias.asname or alias.name] = alias.name
    return module
