"""The public request API: one declarative type for every entry point.

SeeDB's contract — "given a query Q, find the views where the target
deviates most from a reference" — as a first-class, serializable object:

* :class:`RecommendationRequest` — target spec + reference spec + metric /
  k / view-space filters + execution options (including the
  ``deadline_ms`` latency budget and the ``render`` visualization block),
  with a versioned JSON codec (``schema_version`` 3, versions 1-2
  accepted) and :meth:`~RecommendationRequest.from_sql` ingestion of raw
  SQL.
* :class:`Reference` — pluggable comparison side: the whole table (§2
  default), the target's complement (Q vs D ∖ Q), or an arbitrary second
  query (query-vs-query, temporal slices).
* :class:`PartialResult` — progressive delivery rounds from
  :meth:`repro.SeeDB.recommend_iter` and ``POST /recommend/stream``.
* :class:`ApiError` — structured failure taxonomy (code + field path).

``SeeDB``, ``SeeDBService``, ``AnalystSession``, the CLI, and the HTTP
frontend all construct and consume these types; the older positional
signatures remain as thin adapters over them.
"""

from repro.api.codec import (
    expression_from_wire,
    expression_to_wire,
    parse_sql_query,
    query_from_wire,
    query_to_wire,
)
from repro.api.errors import ERROR_CODES, ApiError
from repro.api.progressive import PartialResult
from repro.api.reference import Reference
from repro.api.request import (
    ACCEPTED_SCHEMA_VERSIONS,
    INCREMENTAL_OPTION_DEFAULTS,
    LIFECYCLE_OPTION_DEFAULTS,
    RENDER_FORMATS,
    RENDER_OPTION_DEFAULTS,
    RENDER_THEMES,
    SCHEMA_VERSION,
    STRATEGIES,
    RecommendationRequest,
    ResolvedRequest,
)
from repro.api.schema import request_json_schema, response_json_schema
from repro.api.wire import result_to_json, view_to_json

__all__ = [
    "ApiError",
    "ERROR_CODES",
    "PartialResult",
    "Reference",
    "RecommendationRequest",
    "ResolvedRequest",
    "SCHEMA_VERSION",
    "ACCEPTED_SCHEMA_VERSIONS",
    "STRATEGIES",
    "INCREMENTAL_OPTION_DEFAULTS",
    "LIFECYCLE_OPTION_DEFAULTS",
    "RENDER_OPTION_DEFAULTS",
    "RENDER_FORMATS",
    "RENDER_THEMES",
    "request_json_schema",
    "response_json_schema",
    "expression_to_wire",
    "expression_from_wire",
    "query_to_wire",
    "query_from_wire",
    "parse_sql_query",
    "result_to_json",
    "view_to_json",
]
