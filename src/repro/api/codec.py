"""Wire codec for queries and predicate expressions (schema version 1).

Serializes :class:`~repro.db.query.RowSelectQuery` targets and their
predicate ASTs to plain-JSON dictionaries and back. The structured form is
the canonical wire representation (lossless and versionable); ``from``
decoding additionally accepts a raw SQL string anywhere a query is
expected, parsed through :mod:`repro.sqlparser` with syntax failures
re-raised as structured :class:`~repro.api.errors.ApiError`\\ s.

Every decoder threads a dotted ``field`` path so validation failures point
at the offending element (``"target.predicate.operands[1].op"``).
"""

from __future__ import annotations

from datetime import date, datetime
from typing import Any

from repro.api.errors import ApiError, SqlApiError
from repro.db.expressions import (
    And,
    Between,
    ColumnRef,
    Comparison,
    Expression,
    In,
    Literal,
    Not,
    Or,
    TruePredicate,
)
from repro.db.query import RowSelectQuery
from repro.util.errors import QueryError, SqlSyntaxError

# -- literals ---------------------------------------------------------------


def literal_to_wire(value: Any) -> Any:
    """A predicate literal as a JSON-safe value.

    Dates are wrapped in ``{"$date": "YYYY-MM-DD"}`` so decoding does not
    have to guess whether a string means a date.
    """
    if hasattr(value, "item"):  # numpy scalars
        value = value.item()
    if isinstance(value, date) and not isinstance(value, datetime):
        return {"$date": value.isoformat()}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise ApiError(
        f"cannot serialize literal of type {type(value).__name__}",
        code="invalid_value",
    )


def literal_from_wire(value: Any, field: str) -> Any:
    if isinstance(value, dict):
        raw = value.get("$date")
        if raw is None or len(value) != 1:
            raise ApiError(
                "literal objects must be {'$date': 'YYYY-MM-DD'}",
                code="invalid_value",
                field=field,
            )
        try:
            return datetime.strptime(raw, "%Y-%m-%d").date()
        except (TypeError, ValueError):
            raise ApiError(
                f"invalid $date literal {raw!r}",
                code="invalid_value",
                field=field,
            ) from None
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise ApiError(
        f"literal must be a scalar or $date object, got {type(value).__name__}",
        code="invalid_value",
        field=field,
    )


# -- predicate expressions --------------------------------------------------


def expression_to_wire(expression: Expression) -> dict:
    """A predicate AST as nested JSON objects (``{"op": ..., ...}``)."""
    if isinstance(expression, TruePredicate):
        return {"op": "true"}
    if isinstance(expression, Comparison):
        return {
            "op": expression.op,
            "column": expression.column.name,
            "value": literal_to_wire(expression.literal.value),
        }
    if isinstance(expression, In):
        return {
            "op": "in",
            "column": expression.column.name,
            "values": [literal_to_wire(v) for v in expression.values],
        }
    if isinstance(expression, Between):
        return {
            "op": "between",
            "column": expression.column.name,
            "low": literal_to_wire(expression.low),
            "high": literal_to_wire(expression.high),
        }
    if isinstance(expression, And):
        return {
            "op": "and",
            "operands": [expression_to_wire(op) for op in expression.operands],
        }
    if isinstance(expression, Or):
        return {
            "op": "or",
            "operands": [expression_to_wire(op) for op in expression.operands],
        }
    if isinstance(expression, Not):
        return {"op": "not", "operand": expression_to_wire(expression.operand)}
    raise ApiError(
        f"cannot serialize expression type {type(expression).__name__}",
        code="invalid_value",
    )


_COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")


def expression_from_wire(payload: Any, field: str) -> Expression:
    """Decode one predicate node, raising :class:`ApiError` with the dotted
    ``field`` path on any malformed element."""
    if not isinstance(payload, dict):
        raise ApiError(
            f"predicate node must be an object, got {type(payload).__name__}",
            code="invalid_value",
            field=field,
        )
    op = payload.get("op")
    if op is None:
        raise ApiError(
            "predicate node is missing 'op'", code="missing_field",
            field=f"{field}.op",
        )
    if op == "true":
        _require_keys(payload, {"op"}, field)
        return TruePredicate()
    if op in _COMPARISON_OPS:
        _require_keys(payload, {"op", "column", "value"}, field)
        return Comparison(
            op,
            ColumnRef(_column(payload, field)),
            Literal(_required_literal(payload, "value", field)),
        )
    if op == "in":
        _require_keys(payload, {"op", "column", "values"}, field)
        values = payload.get("values")
        if not isinstance(values, list):
            raise ApiError(
                "'in' needs a list of values", code="invalid_value",
                field=f"{field}.values",
            )
        return In(
            ColumnRef(_column(payload, field)),
            tuple(
                literal_from_wire(v, f"{field}.values[{i}]")
                for i, v in enumerate(values)
            ),
        )
    if op == "between":
        _require_keys(payload, {"op", "column", "low", "high"}, field)
        return Between(
            ColumnRef(_column(payload, field)),
            _required_literal(payload, "low", field),
            _required_literal(payload, "high", field),
        )
    if op in ("and", "or"):
        _require_keys(payload, {"op", "operands"}, field)
        operands = payload.get("operands")
        if not isinstance(operands, list) or len(operands) < 2:
            raise ApiError(
                f"'{op}' needs a list of at least two operands",
                code="invalid_value",
                field=f"{field}.operands",
            )
        decoded = tuple(
            expression_from_wire(item, f"{field}.operands[{i}]")
            for i, item in enumerate(operands)
        )
        return And(decoded) if op == "and" else Or(decoded)
    if op == "not":
        _require_keys(payload, {"op", "operand"}, field)
        return Not(expression_from_wire(payload.get("operand"), f"{field}.operand"))
    raise ApiError(
        f"unknown predicate op {op!r}", code="invalid_value",
        field=f"{field}.op",
    )


def _required_literal(payload: dict, key: str, field: str) -> Any:
    """A literal operand that must be *present* — an absent key is a
    missing_field, not a NULL literal (a typo'd request would otherwise
    silently compare against NULL and select nothing)."""
    if key not in payload:
        raise ApiError(
            f"predicate node needs {key!r}",
            code="missing_field",
            field=f"{field}.{key}",
        )
    return literal_from_wire(payload[key], f"{field}.{key}")


def _column(payload: dict, field: str) -> str:
    name = payload.get("column")
    if not isinstance(name, str) or not name:
        raise ApiError(
            "predicate node needs a non-empty 'column' string",
            code="invalid_value" if name is not None else "missing_field",
            field=f"{field}.column",
        )
    return name


def _require_keys(payload: dict, allowed: set, field: str) -> None:
    extra = sorted(set(payload) - allowed)
    if extra:
        raise ApiError(
            f"unknown key(s) {extra} in predicate node",
            code="unknown_field",
            field=f"{field}.{extra[0]}",
        )


# -- row-selection queries --------------------------------------------------


def query_to_wire(query: RowSelectQuery) -> dict:
    """The structured wire form of a target/reference query."""
    payload: dict = {"table": query.table}
    if query.predicate is not None:
        payload["predicate"] = expression_to_wire(query.predicate)
    if query.limit is not None:
        payload["limit"] = query.limit
    return payload


def query_from_wire(payload: Any, field: str) -> RowSelectQuery:
    """Decode a query from its structured form or a raw SQL string."""
    if isinstance(payload, str):
        return parse_sql_query(payload, field)
    if not isinstance(payload, dict):
        raise ApiError(
            f"{field} must be an object or a SQL string, "
            f"got {type(payload).__name__}",
            code="invalid_value",
            field=field,
        )
    extra = sorted(set(payload) - {"table", "predicate", "limit", "sql"})
    if extra:
        raise ApiError(
            f"unknown key(s) {extra} in {field}",
            code="unknown_field",
            field=f"{field}.{extra[0]}",
        )
    if "sql" in payload:
        if len(payload) != 1:
            raise ApiError(
                f"{field} must give either 'sql' or structured fields, not both",
                code="invalid_request",
                field=field,
            )
        return parse_sql_query(payload["sql"], f"{field}.sql")
    table = payload.get("table")
    if not isinstance(table, str) or not table:
        raise ApiError(
            f"{field} needs a non-empty 'table' string",
            code="invalid_value" if table is not None else "missing_field",
            field=f"{field}.table",
        )
    predicate = None
    if payload.get("predicate") is not None:
        predicate = expression_from_wire(
            payload["predicate"], f"{field}.predicate"
        )
    limit = payload.get("limit")
    if limit is not None and (isinstance(limit, bool) or not isinstance(limit, int)):
        raise ApiError(
            f"limit must be an integer, got {limit!r}",
            code="invalid_value",
            field=f"{field}.limit",
        )
    try:
        return RowSelectQuery(table=table, predicate=predicate, limit=limit)
    except QueryError as exc:
        raise ApiError(
            str(exc), code="invalid_value", field=field
        ) from exc


def parse_sql_query(sql: Any, field: str) -> RowSelectQuery:
    """Parse SQL text into a row-selection query, with structured errors.

    Syntax failures become ``code="sql_syntax"``; text that parses to a
    shape the request API cannot accept (an aggregate query) becomes
    ``code="unsupported_sql"``.
    """
    if not isinstance(sql, str):
        raise ApiError(
            f"{field} must be a SQL string, got {type(sql).__name__}",
            code="invalid_value",
            field=field,
        )
    from repro.sqlparser import parse_query

    try:
        parsed = parse_query(sql)
    except SqlSyntaxError as exc:
        raise SqlApiError(
            str(exc), code="sql_syntax", field=field, position=exc.position
        ) from exc
    if not isinstance(parsed, RowSelectQuery):
        raise SqlApiError(
            "expected a row-selection query (SELECT * FROM ...); "
            "got an aggregate query — the request API derives view queries "
            "itself",
            code="unsupported_sql",
            field=field,
        )
    return parsed
