"""Structured API errors: code + message + field path.

Every failure of the declarative request API raises :class:`ApiError`,
which carries a machine-readable ``code`` from a small closed taxonomy and
the ``field`` path of the offending request element (dotted, e.g.
``"options.sample_fraction"``), so HTTP frontends can return structured
400 bodies instead of free-text messages and clients can react
programmatically.
"""

from __future__ import annotations

from repro.util.errors import QueryError, SqlSyntaxError

#: The closed error-code taxonomy of the request API (wire-stable: codes
#: may be added, never renamed or removed within a schema version).
ERROR_CODES = (
    "invalid_request",   # request is not a well-formed object
    "missing_field",     # a required field is absent
    "unknown_field",     # a field outside the schema was supplied
    "invalid_value",     # a field value is of the wrong type / out of range
    "sql_syntax",        # SQL text failed to parse
    "unsupported_sql",   # SQL parsed, but to a shape the API cannot accept
    "schema_version",    # the payload declares an unsupported version
    "unknown_backend",   # the named backend is not registered
    "payload_too_large",  # the request body exceeds the transport cap
)


class ApiError(QueryError):
    """A request-API failure with a structured code and field path.

    Subclasses :class:`~repro.util.errors.QueryError` so existing
    ``except ReproError`` handlers (CLI, HTTP server) keep working.
    """

    def __init__(
        self,
        message: str,
        code: str = "invalid_request",
        field: "str | None" = None,
    ):
        if code not in ERROR_CODES:
            raise ValueError(f"unknown API error code {code!r}")
        super().__init__(message)
        self.code = code
        self.field = field

    def to_dict(self) -> dict:
        """The wire form of this error (the HTTP 400 ``error`` object)."""
        payload = {"code": self.code, "message": str(self)}
        if self.field is not None:
            payload["field"] = self.field
        return payload

    def __repr__(self) -> str:
        field = f", field={self.field!r}" if self.field is not None else ""
        return f"ApiError({str(self)!r}, code={self.code!r}{field})"


class SqlApiError(ApiError, SqlSyntaxError):
    """SQL text handed to the request API failed to parse.

    Doubly derived so both worlds catch it naturally: request-API callers
    see an :class:`ApiError` with ``code="sql_syntax"`` (or
    ``"unsupported_sql"``) and a field path; pre-API callers that catch
    :class:`~repro.util.errors.SqlSyntaxError` keep working. ``position``
    is the offending character offset when known.
    """

    def __init__(
        self,
        message: str,
        code: str = "sql_syntax",
        field: "str | None" = None,
        position: int = -1,
    ):
        ApiError.__init__(self, message, code=code, field=field)
        self.position = position
