"""Progressive delivery: partial top-k rounds from incremental execution.

"Analysis must happen in real-time" (§1): instead of waiting for the full
pipeline, :meth:`repro.SeeDB.recommend_iter` yields one
:class:`PartialResult` per executed phase of the incremental engine — the
current top-k estimate plus confidence/pruning state — and a final round
carrying the finished :class:`~repro.core.result.RecommendationResult`,
bit-identical to what the blocking call returns for the same request.
Transports stream these as NDJSON lines (``POST /recommend/stream``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.wire import view_to_json
from repro.core.result import RecommendationResult
from repro.model.view import ScoredView


@dataclass
class PartialResult:
    """One round of a progressive recommendation.

    ``round`` counts executed phases (1-based); the terminal round has
    ``is_final=True``, repeats the definitive top-k, and carries the full
    :class:`RecommendationResult` in ``result``.
    """

    round: int
    n_rounds: int
    #: Current top-k estimate, best first (definitive when ``is_final``).
    recommendations: list[ScoredView]
    #: Views still being estimated after this round.
    views_alive: int
    #: Views dropped so far by confidence pruning.
    views_pruned: int
    #: Hoeffding half-width of the round's utility estimates (0.0 once
    #: all partitions are absorbed; None when pruning is not yet active).
    epsilon: "float | None" = None
    is_final: bool = False
    result: "RecommendationResult | None" = None
    #: Rendered chart frames for the *current* top-k estimate, when the
    #: request's ``options.render`` asked for them — each round's specs
    #: refine the previous round's, and the final round's are bit-identical
    #: to the blocking result's.
    visualizations: "list[dict] | None" = None

    def to_dict(self) -> dict:
        """The NDJSON wire form of this round (schema version 1)."""
        payload = {
            "round": self.round,
            "n_rounds": self.n_rounds,
            "is_final": self.is_final,
            "views_alive": self.views_alive,
            "views_pruned": self.views_pruned,
            "epsilon": self.epsilon,
            "recommendations": [
                view_to_json(view) for view in self.recommendations
            ],
        }
        if self.visualizations is not None:
            payload["visualizations"] = self.visualizations
        if self.result is not None:
            from repro.api.wire import result_to_json

            payload["result"] = result_to_json(self.result)
        return payload
