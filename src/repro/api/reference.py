"""First-class reference specs: what the target is compared *against*.

SeeDB's contract is "find the views where the target deviates most from a
reference" — §2 fixes the reference to the whole table, but the natural
generalizations (compare against everything *else*; compare against an
arbitrary second selection, e.g. last quarter vs this quarter) only need a
different comparison row set. :class:`Reference` is the declarative,
serializable spec of that choice; it resolves against a concrete target
query into the engine-facing
:class:`~repro.model.reference.ResolvedReference`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.codec import parse_sql_query, query_from_wire, query_to_wire
from repro.api.errors import ApiError
from repro.db.expressions import Not
from repro.db.query import RowSelectQuery
from repro.model.reference import TABLE_REFERENCE, ResolvedReference


@dataclass(frozen=True)
class Reference:
    """Declarative comparison-side spec of a recommendation request.

    Construct through the named factories::

        Reference.table()                    # vs the whole table D (§2)
        Reference.complement()               # vs D ∖ D_Q (paper default framing)
        Reference.query("SELECT * FROM s WHERE year = 2013")
        Reference.query(RowSelectQuery("s", col("year") == 2013))
    """

    kind: str = "table"
    #: The second selection for ``query`` references (None otherwise).
    against: "RowSelectQuery | None" = None

    def __post_init__(self) -> None:
        if self.kind not in ("table", "complement", "query"):
            raise ApiError(
                f"reference kind must be 'table', 'complement', or 'query', "
                f"got {self.kind!r}",
                code="invalid_value",
                field="reference.kind",
            )
        if self.kind == "query" and self.against is None:
            raise ApiError(
                "a query reference needs the query to compare against",
                code="missing_field",
                field="reference.query",
            )
        if self.kind != "query" and self.against is not None:
            raise ApiError(
                f"a {self.kind!r} reference takes no query",
                code="invalid_value",
                field="reference.query",
            )

    # -- factories ---------------------------------------------------------

    @classmethod
    def table(cls) -> "Reference":
        """Compare against the whole table ``D`` (the §2 default)."""
        return cls("table")

    @classmethod
    def complement(cls) -> "Reference":
        """Compare against ``D ∖ D_Q`` — every row the target excludes."""
        return cls("complement")

    @classmethod
    def query(cls, against: "RowSelectQuery | str") -> "Reference":
        """Compare against an arbitrary second selection on the same table."""
        if isinstance(against, str):
            against = parse_sql_query(against, "reference.query")
        if not isinstance(against, RowSelectQuery):
            raise ApiError(
                f"reference query must be a RowSelectQuery or SQL string, "
                f"got {type(against).__name__}",
                code="invalid_value",
                field="reference.query",
            )
        return cls("query", against)

    # -- resolution ---------------------------------------------------------

    def validate_against(self, target: RowSelectQuery) -> None:
        """Check this reference is meaningful for ``target`` (raises
        :class:`ApiError`)."""
        if self.kind == "complement" and target.predicate is None:
            raise ApiError(
                "a complement reference needs a target predicate: the "
                "complement of 'all rows' is empty",
                code="invalid_value",
                field="reference",
            )
        if self.kind == "query" and self.against.table != target.table:
            raise ApiError(
                f"reference query selects from {self.against.table!r} but the "
                f"target selects from {target.table!r}; query references must "
                "share the target's table",
                code="invalid_value",
                field="reference.query",
            )

    def resolve(self, target: RowSelectQuery) -> ResolvedReference:
        """The engine-facing form of this reference for ``target``."""
        self.validate_against(target)
        if self.kind == "table":
            return TABLE_REFERENCE
        if self.kind == "complement":
            return ResolvedReference("complement", Not(target.predicate))
        if self.against.predicate is None:
            # A reference query selecting every row IS the table reference;
            # normalizing keeps the flag-combining optimizations applicable.
            return TABLE_REFERENCE
        return ResolvedReference("query", self.against.predicate)

    # -- wire codec ---------------------------------------------------------

    def to_dict(self) -> dict:
        payload: dict = {"kind": self.kind}
        if self.against is not None:
            payload["query"] = query_to_wire(self.against)
        return payload

    @classmethod
    def from_dict(cls, payload, field: str = "reference") -> "Reference":
        if isinstance(payload, str):
            # Shorthand: "table" / "complement", or SQL for a query ref.
            if payload in ("table", "complement"):
                return cls(payload)
            return cls.query(parse_sql_query(payload, f"{field}.query"))
        if not isinstance(payload, dict):
            raise ApiError(
                f"{field} must be an object or shorthand string, "
                f"got {type(payload).__name__}",
                code="invalid_value",
                field=field,
            )
        extra = sorted(set(payload) - {"kind", "query"})
        if extra:
            raise ApiError(
                f"unknown key(s) {extra} in {field}",
                code="unknown_field",
                field=f"{field}.{extra[0]}",
            )
        kind = payload.get("kind")
        if kind is None:
            raise ApiError(
                f"{field} needs a 'kind'", code="missing_field",
                field=f"{field}.kind",
            )
        against = payload.get("query")
        if against is not None:
            against = query_from_wire(against, f"{field}.query")
        if kind == "query" and against is None:
            raise ApiError(
                "a query reference needs a 'query'",
                code="missing_field",
                field=f"{field}.query",
            )
        return cls(kind, against)

    def describe(self) -> str:
        """Deterministic short form for logs and request keys."""
        if self.against is None:
            return self.kind
        from repro.backends.sqlgen import render_row_select

        return f"query[{render_row_select(self.against)}]"
