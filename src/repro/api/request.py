"""The one declarative request type every SeeDB entry point consumes.

A :class:`RecommendationRequest` bundles the full contract of "given a
query Q, find the views where the target deviates most from a reference":
the target selection, a first-class :class:`~repro.api.reference.Reference`,
the metric and k, optional dimension/measure filters on the view space,
the execution strategy, and validated execution options. It is plain data:
construct it from code, from SQL (:meth:`RecommendationRequest.from_sql`),
or from the versioned wire form (:meth:`RecommendationRequest.from_dict`,
``schema_version`` 3; versions 1 and 2 remain accepted), and hand it to
:meth:`repro.SeeDB.recommend`,
:meth:`repro.SeeDB.recommend_iter`, :class:`repro.service.SeeDBService`,
:class:`repro.AnalystSession`, the CLI, or ``POST /recommend`` — they all
speak this type.

Resolution (:meth:`RecommendationRequest.resolve`) merges the request with
a session's base :class:`~repro.core.config.SeeDBConfig` into a
:class:`ResolvedRequest` — the immutable, fully-validated bundle the
engine and the service's coalescing keys operate on.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields as dataclass_fields, replace
from typing import Any, Mapping

from repro.api.codec import parse_sql_query, query_from_wire, query_to_wire
from repro.api.errors import ApiError
from repro.api.reference import Reference
from repro.core.config import SeeDBConfig
from repro.db.query import RowSelectQuery
from repro.metrics.normalize import NormalizationPolicy
from repro.metrics.registry import get_metric
from repro.model.reference import ResolvedReference
from repro.optimizer.plan import GroupByCombining
from repro.util.errors import ConfigError, MetricError

#: Wire schema version emitted by ``to_dict``. Version 2 added the
#: ``deadline_ms`` lifecycle option; version 3 added the ``render`` block
#: (response visualizations). Version-1/2 payloads (which never carry
#: either) are still accepted, so each bump is backward-compatible.
SCHEMA_VERSION = 3

#: Wire schema versions ``from_dict`` accepts.
ACCEPTED_SCHEMA_VERSIONS = (1, 2, 3)

#: Execution strategies a request may name.
STRATEGIES = ("batch", "incremental")

#: Incremental-execution options (consumed by the phased executor, not by
#: SeeDBConfig) and their defaults.
INCREMENTAL_OPTION_DEFAULTS: dict[str, Any] = {
    "n_phases": 10,
    "delta": 0.05,
    "min_phases_before_pruning": 2,
    "epsilon_scale": 0.25,
}

#: Request-lifecycle options (consumed by the serving tier / engine
#: boundary checks, not by SeeDBConfig) and their defaults. ``deadline_ms``
#: is the end-to-end latency budget measured from admission: batch
#: executions that blow it fail with ``DeadlineExceeded`` (HTTP 504),
#: incremental ones degrade to a ``partial=True`` result.
LIFECYCLE_OPTION_DEFAULTS: dict[str, Any] = {
    "deadline_ms": None,
}

#: The ``options.render`` block (wire schema version 3): whether — and
#: how — the response carries rendered visualizations alongside the raw
#: view data. ``format`` picks the artifact ("none" keeps pre-v3 behavior
#: exactly), ``theme`` the color scheme of Vega-Lite output, and
#: ``max_charts`` caps how many of the top-k views get charts (None =
#: all of them).
RENDER_OPTION_DEFAULTS: dict[str, Any] = {
    "format": "none",
    "theme": "light",
    "max_charts": None,
}

#: Visualization formats ``options.render.format`` may name.
RENDER_FORMATS = ("none", "vega-lite", "svg")

#: Color themes ``options.render.theme`` may name.
RENDER_THEMES = ("light", "dark")

#: SeeDBConfig fields a request's ``options`` may override.
CONFIG_OPTION_FIELDS = frozenset(
    spec.name for spec in dataclass_fields(SeeDBConfig)
) - {"metric", "k"}  # first-class request fields, not options

_WIRE_KEYS = frozenset(
    {
        "schema_version",
        "target",
        "reference",
        "k",
        "metric",
        "dimensions",
        "measures",
        "strategy",
        "options",
        "backend",
    }
)


def _validate_incremental_option(key: str, value: Any) -> None:
    """Range/type checks for the phased-execution knobs.

    These never pass through SeeDBConfig, so the request must enforce the
    executor's preconditions itself — otherwise a bad value surfaces as a
    mid-pipeline crash (delta=0 → ZeroDivisionError) or, worse, silent
    garbage (n_phases=0 executes nothing and scores every view 0).
    """
    if key in ("n_phases", "min_phases_before_pruning"):
        if isinstance(value, bool) or not isinstance(value, int):
            raise ApiError(
                f"{key} must be an integer, got {value!r}",
                code="invalid_value",
                field=f"options.{key}",
            )
        minimum = 1 if key == "n_phases" else 0
        if value < minimum:
            raise ApiError(
                f"{key} must be >= {minimum}, got {value}",
                code="invalid_value",
                field=f"options.{key}",
            )
    elif key == "delta":
        if not isinstance(value, (int, float)) or not (0.0 < value < 1.0):
            raise ApiError(
                f"delta must be in (0, 1), got {value!r}",
                code="invalid_value",
                field="options.delta",
            )
    elif key == "epsilon_scale":
        if not isinstance(value, (int, float)) or isinstance(value, bool) or value < 0:
            raise ApiError(
                f"epsilon_scale must be >= 0, got {value!r}",
                code="invalid_value",
                field="options.epsilon_scale",
            )


def _validate_lifecycle_option(key: str, value: Any) -> None:
    if key == "deadline_ms" and value is not None:
        if (
            isinstance(value, bool)
            or not isinstance(value, (int, float))
            or value <= 0
        ):
            raise ApiError(
                f"deadline_ms must be a positive number of milliseconds, "
                f"got {value!r}",
                code="invalid_value",
                field="options.deadline_ms",
            )


def _validate_render_block(value: Any) -> dict[str, Any]:
    """Validate ``options.render`` and normalize it (defaults applied).

    Returning the fully-defaulted block makes downstream identity cheap:
    ``{"format": "none"}`` and ``{}`` and an absent block all resolve to
    the same dict, so coalescing keys and cache entries never split on
    spelling differences of "no rendering".
    """
    if not isinstance(value, Mapping):
        raise ApiError(
            f"render must be an object, got {type(value).__name__}",
            code="invalid_value",
            field="options.render",
        )
    unknown = sorted(set(value) - set(RENDER_OPTION_DEFAULTS))
    if unknown:
        raise ApiError(
            f"unknown render option(s) {unknown}; expected one of "
            f"{sorted(RENDER_OPTION_DEFAULTS)}",
            code="unknown_field",
            field=f"options.render.{unknown[0]}",
        )
    block = dict(RENDER_OPTION_DEFAULTS)
    block.update(value)
    if block["format"] not in RENDER_FORMATS:
        raise ApiError(
            f"render format must be one of {list(RENDER_FORMATS)}, got "
            f"{block['format']!r}",
            code="invalid_value",
            field="options.render.format",
        )
    if block["theme"] not in RENDER_THEMES:
        raise ApiError(
            f"render theme must be one of {list(RENDER_THEMES)}, got "
            f"{block['theme']!r}",
            code="invalid_value",
            field="options.render.theme",
        )
    max_charts = block["max_charts"]
    if max_charts is not None and (
        isinstance(max_charts, bool)
        or not isinstance(max_charts, int)
        or max_charts < 1
    ):
        raise ApiError(
            f"max_charts must be a positive integer or null, got "
            f"{max_charts!r}",
            code="invalid_value",
            field="options.render.max_charts",
        )
    return block


def _coerce_option(key: str, value: Any) -> Any:
    """JSON-shaped option values → their config types (lists to tuples,
    enum value strings to enums). Unknown shapes pass through; SeeDBConfig
    validation has the final word."""
    if key == "aggregate_functions" and isinstance(value, list):
        return tuple(value)
    if key == "groupby_combining" and isinstance(value, str):
        try:
            return GroupByCombining(value)
        except ValueError:
            raise ApiError(
                f"unknown groupby_combining {value!r}; expected one of "
                f"{[m.value for m in GroupByCombining]}",
                code="invalid_value",
                field=f"options.{key}",
            ) from None
    if key == "normalization" and isinstance(value, str):
        try:
            return NormalizationPolicy(value)
        except ValueError:
            raise ApiError(
                f"unknown normalization {value!r}; expected one of "
                f"{[m.value for m in NormalizationPolicy]}",
                code="invalid_value",
                field=f"options.{key}",
            ) from None
    return value


def _option_to_wire(value: Any) -> Any:
    if isinstance(value, (GroupByCombining, NormalizationPolicy)):
        return value.value
    if isinstance(value, tuple):
        return list(value)
    return value


@dataclass(frozen=True)
class RecommendationRequest:
    """Declarative recommendation request (see module docstring).

    ``k``/``metric`` of ``None`` defer to the session's base config at
    resolution time; ``dimensions``/``measures`` of ``None`` mean "the
    whole view space". ``options`` overrides any other
    :class:`~repro.core.config.SeeDBConfig` field plus the incremental
    knobs (``n_phases``, ``delta``, ``min_phases_before_pruning``,
    ``epsilon_scale``). ``backend`` names the service backend the request
    targets (ignored by single-backend facades).
    """

    target: RowSelectQuery
    reference: Reference = field(default_factory=Reference.table)
    k: "int | None" = None
    metric: "str | None" = None
    dimensions: "tuple[str, ...] | None" = None
    measures: "tuple[str, ...] | None" = None
    strategy: str = "batch"
    options: Mapping[str, Any] = field(default_factory=dict)
    backend: "str | None" = None

    def __post_init__(self) -> None:
        if not isinstance(self.target, RowSelectQuery):
            raise ApiError(
                f"target must be a RowSelectQuery, got "
                f"{type(self.target).__name__} (use from_sql for SQL text)",
                code="invalid_value",
                field="target",
            )
        if not isinstance(self.reference, Reference):
            raise ApiError(
                f"reference must be a Reference, got "
                f"{type(self.reference).__name__}",
                code="invalid_value",
                field="reference",
            )
        if self.k is not None and (
            isinstance(self.k, bool) or not isinstance(self.k, int) or self.k < 1
        ):
            raise ApiError(
                f"k must be a positive integer, got {self.k!r}",
                code="invalid_value",
                field="k",
            )
        if self.metric is not None:
            try:
                get_metric(self.metric)
            except MetricError as exc:
                raise ApiError(
                    str(exc), code="invalid_value", field="metric"
                ) from exc
        for name in ("dimensions", "measures"):
            value = getattr(self, name)
            if value is None:
                continue
            if isinstance(value, (list, tuple)) and all(
                isinstance(item, str) and item for item in value
            ):
                object.__setattr__(self, name, tuple(value))
            else:
                raise ApiError(
                    f"{name} must be a list of attribute names, got {value!r}",
                    code="invalid_value",
                    field=name,
                )
        if self.strategy not in STRATEGIES:
            raise ApiError(
                f"strategy must be one of {STRATEGIES}, got {self.strategy!r}",
                code="invalid_value",
                field="strategy",
            )
        if not isinstance(self.options, Mapping):
            raise ApiError(
                f"options must be a mapping, got {type(self.options).__name__}",
                code="invalid_value",
                field="options",
            )
        coerced = {}
        for key, value in self.options.items():
            if key == "render":
                coerced[key] = _validate_render_block(value)
                continue
            if key in INCREMENTAL_OPTION_DEFAULTS:
                _validate_incremental_option(key, value)
            elif key in LIFECYCLE_OPTION_DEFAULTS:
                _validate_lifecycle_option(key, value)
            elif key not in CONFIG_OPTION_FIELDS:
                raise ApiError(
                    f"unknown option {key!r}", code="unknown_field",
                    field=f"options.{key}",
                )
            coerced[key] = _coerce_option(key, value)
        object.__setattr__(self, "options", coerced)
        if self.backend is not None and not isinstance(self.backend, str):
            raise ApiError(
                f"backend must be a string, got {type(self.backend).__name__}",
                code="invalid_value",
                field="backend",
            )
        # Reference/target cross-validation fails at construction, not
        # deep inside the engine.
        self.reference.validate_against(self.target)

    # -- construction -------------------------------------------------------

    @classmethod
    def from_sql(cls, sql: str, **kwargs) -> "RecommendationRequest":
        """Build a request from raw SQL (``SELECT * FROM t [WHERE ...]``).

        Keyword arguments are the remaining request fields; ``reference``
        may itself be SQL text (a query reference) or "table"/"complement".
        """
        target = parse_sql_query(sql, "target")
        reference = kwargs.pop("reference", None)
        if isinstance(reference, str):
            reference = Reference.from_dict(reference)
        if reference is not None:
            kwargs["reference"] = reference
        return cls(target=target, **kwargs)

    # -- wire codec ---------------------------------------------------------

    def to_dict(self) -> dict:
        """The versioned wire form (round-trips through ``from_dict``)."""
        payload: dict = {
            "schema_version": SCHEMA_VERSION,
            "target": query_to_wire(self.target),
        }
        if self.reference.kind != "table":
            payload["reference"] = self.reference.to_dict()
        if self.k is not None:
            payload["k"] = self.k
        if self.metric is not None:
            payload["metric"] = self.metric
        if self.dimensions is not None:
            payload["dimensions"] = list(self.dimensions)
        if self.measures is not None:
            payload["measures"] = list(self.measures)
        if self.strategy != "batch":
            payload["strategy"] = self.strategy
        if self.options:
            payload["options"] = {
                key: _option_to_wire(value)
                for key, value in sorted(self.options.items())
            }
        if self.backend is not None:
            payload["backend"] = self.backend
        return payload

    @classmethod
    def from_dict(cls, payload: Any) -> "RecommendationRequest":
        """Decode the wire form, validating every field with a path."""
        if not isinstance(payload, Mapping):
            raise ApiError(
                f"request must be a JSON object, got {type(payload).__name__}",
                code="invalid_request",
            )
        extra = sorted(set(payload) - _WIRE_KEYS)
        if extra:
            raise ApiError(
                f"unknown field(s) {extra}", code="unknown_field",
                field=extra[0],
            )
        version = payload.get("schema_version", SCHEMA_VERSION)
        if version not in ACCEPTED_SCHEMA_VERSIONS:
            raise ApiError(
                f"unsupported schema_version {version!r}; this server speaks "
                f"versions {list(ACCEPTED_SCHEMA_VERSIONS)}",
                code="schema_version",
                field="schema_version",
            )
        if "target" not in payload:
            raise ApiError(
                "request needs a 'target'", code="missing_field", field="target"
            )
        target = query_from_wire(payload["target"], "target")
        reference = Reference.table()
        if payload.get("reference") is not None:
            reference = Reference.from_dict(payload["reference"])
        options = payload.get("options", {})
        if options is None:
            options = {}
        return cls(
            target=target,
            reference=reference,
            k=payload.get("k"),
            metric=payload.get("metric"),
            dimensions=payload.get("dimensions"),
            measures=payload.get("measures"),
            strategy=payload.get("strategy", "batch"),
            options=options,
            backend=payload.get("backend"),
        )

    # -- resolution ---------------------------------------------------------

    def resolve(self, base_config: "SeeDBConfig | None" = None) -> "ResolvedRequest":
        """Merge with a session's base config into a :class:`ResolvedRequest`."""
        config = base_config if base_config is not None else SeeDBConfig()
        incremental = dict(INCREMENTAL_OPTION_DEFAULTS)
        lifecycle = dict(LIFECYCLE_OPTION_DEFAULTS)
        render = dict(RENDER_OPTION_DEFAULTS)
        config_overrides: dict[str, Any] = {}
        for key, value in self.options.items():
            if key == "render":
                render = dict(value)  # normalized by __post_init__
            elif key in INCREMENTAL_OPTION_DEFAULTS:
                incremental[key] = value
            elif key in LIFECYCLE_OPTION_DEFAULTS:
                lifecycle[key] = value
            else:
                config_overrides[key] = value
        if self.metric is not None:
            config_overrides["metric"] = self.metric
        if config_overrides:
            try:
                config = config.with_overrides(**config_overrides)
            except ConfigError as exc:
                raise ApiError(
                    str(exc), code="invalid_value", field="options"
                ) from exc
        if self.strategy == "incremental":
            from repro.engine.incremental import BOUNDED_METRICS

            metric = config.resolve_metric()
            if metric.name not in BOUNDED_METRICS:
                raise ApiError(
                    f"incremental execution needs a [0,1]-bounded metric; "
                    f"{metric.name!r} is not (use one of "
                    f"{sorted(BOUNDED_METRICS)})",
                    code="invalid_value",
                    field="metric",
                )
        return ResolvedRequest(
            query=self.target,
            config=config,
            k=self.k if self.k is not None else config.k,
            reference=self.reference.resolve(self.target),
            dimensions=self.dimensions,
            measures=self.measures,
            strategy=self.strategy,
            incremental=incremental,
            deadline_ms=lifecycle["deadline_ms"],
            render=render,
        )

    def with_k(self, k: "int | None") -> "RecommendationRequest":
        """A copy with ``k`` replaced (no-op when ``k`` is None)."""
        return self if k is None else replace(self, k=k)


@dataclass(frozen=True)
class ResolvedRequest:
    """A request merged with session defaults: what the engine executes.

    Produced by :meth:`RecommendationRequest.resolve`; every field is
    concrete (no ``None``-means-default left except the view-space
    filters).
    """

    query: RowSelectQuery
    config: SeeDBConfig
    k: int
    reference: ResolvedReference
    dimensions: "tuple[str, ...] | None"
    measures: "tuple[str, ...] | None"
    strategy: str
    #: Phased-execution knobs (n_phases, delta, ...), defaults applied.
    incremental: dict[str, Any]
    #: End-to-end latency budget in milliseconds (None = unbounded).
    deadline_ms: "float | None" = None
    #: Normalized ``options.render`` block (defaults applied). The engine
    #: appends a RenderPhase when ``format`` is not "none".
    render: dict[str, Any] = field(
        default_factory=lambda: dict(RENDER_OPTION_DEFAULTS)
    )

    def key_parts(self) -> tuple:
        """Deterministic identity for coalescing / result caching (the
        service prepends backend name and data version)."""
        from repro.engine.context import describe_predicate

        return (
            self.query.table,
            describe_predicate(self.query),
            self.query.limit,
            repr(self.config),
            self.k,
            self.reference.describe(),
            self.dimensions,
            self.measures,
            self.strategy,
            tuple(sorted(self.incremental.items())),
            # Requests with different deadline budgets must not coalesce:
            # a short-deadline execution's partial answer is not an honest
            # result for a joiner that asked for more time.
            self.deadline_ms,
            # Different render blocks must not coalesce either: the
            # visualizations travel inside the cached result, so a joiner
            # asking for SVG must not receive a Vega-Lite-bearing entry.
            tuple(sorted(self.render.items())),
        )
