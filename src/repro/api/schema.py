"""Machine-readable description of the request and response wire schemas.

:func:`request_json_schema` returns a JSON-Schema-style document for the
current :class:`~repro.api.request.RecommendationRequest` wire form
(``schema_version`` 3; version-1/2 payloads remain accepted);
:func:`response_json_schema` does the same for the response frames —
the ``/recommend`` result body, the NDJSON stream round, and the
``visualizations`` entries the v3 ``render`` block adds to both. The
API-stability contract test snapshots these documents (plus the
package's public symbols): any accidental change to field names, option
names, error codes, or strategies fails CI and forces a deliberate
schema-version decision.
"""

from __future__ import annotations

from repro.api.errors import ERROR_CODES
from repro.api.request import (
    ACCEPTED_SCHEMA_VERSIONS,
    CONFIG_OPTION_FIELDS,
    INCREMENTAL_OPTION_DEFAULTS,
    LIFECYCLE_OPTION_DEFAULTS,
    RENDER_FORMATS,
    RENDER_THEMES,
    SCHEMA_VERSION,
    STRATEGIES,
)

_PREDICATE_SCHEMA = {
    "type": "object",
    "description": "Predicate AST node",
    "oneOf": [
        {"properties": {"op": {"const": "true"}}},
        {
            "properties": {
                "op": {"enum": ["=", "!=", "<", "<=", ">", ">="]},
                "column": {"type": "string"},
                "value": {"$ref": "#/definitions/literal"},
            }
        },
        {
            "properties": {
                "op": {"const": "in"},
                "column": {"type": "string"},
                "values": {"type": "array", "items": {"$ref": "#/definitions/literal"}},
            }
        },
        {
            "properties": {
                "op": {"const": "between"},
                "column": {"type": "string"},
                "low": {"$ref": "#/definitions/literal"},
                "high": {"$ref": "#/definitions/literal"},
            }
        },
        {
            "properties": {
                "op": {"enum": ["and", "or"]},
                "operands": {
                    "type": "array",
                    "minItems": 2,
                    "items": {"$ref": "#/definitions/predicate"},
                },
            }
        },
        {
            "properties": {
                "op": {"const": "not"},
                "operand": {"$ref": "#/definitions/predicate"},
            }
        },
    ],
}

_QUERY_SCHEMA = {
    "description": "Row selection: structured object or raw SQL string",
    "oneOf": [
        {"type": "string", "description": "SELECT * FROM t [WHERE ...]"},
        {
            "type": "object",
            "properties": {
                "table": {"type": "string"},
                "predicate": {"$ref": "#/definitions/predicate"},
                "limit": {"type": "integer", "minimum": 0},
                "sql": {"type": "string"},
            },
        },
    ],
}


def request_json_schema() -> dict:
    """The wire schema of RecommendationRequest (current schema_version)."""
    return {
        "$schema": "http://json-schema.org/draft-07/schema#",
        "title": "RecommendationRequest",
        "schema_version": SCHEMA_VERSION,
        "type": "object",
        "required": ["target"],
        "additionalProperties": False,
        "properties": {
            "schema_version": {"enum": sorted(ACCEPTED_SCHEMA_VERSIONS)},
            "target": {"$ref": "#/definitions/query"},
            "reference": {
                "oneOf": [
                    {"enum": ["table", "complement"]},
                    {"type": "string", "description": "SQL of a query reference"},
                    {
                        "type": "object",
                        "properties": {
                            "kind": {"enum": ["table", "complement", "query"]},
                            "query": {"$ref": "#/definitions/query"},
                        },
                        "additionalProperties": False,
                    },
                ]
            },
            "k": {"type": "integer", "minimum": 1},
            "metric": {"type": "string"},
            "dimensions": {"type": "array", "items": {"type": "string"}},
            "measures": {"type": "array", "items": {"type": "string"}},
            "strategy": {"enum": sorted(STRATEGIES)},
            "options": {
                "type": "object",
                # "render" rides at the end: the drift checker treats a
                # changed enum *position* as a breaking change, so new
                # option names append rather than sort in.
                "propertyNames": {
                    "enum": sorted(CONFIG_OPTION_FIELDS)
                    + sorted(INCREMENTAL_OPTION_DEFAULTS)
                    + sorted(LIFECYCLE_OPTION_DEFAULTS)
                    + ["render"]
                },
                "properties": {
                    "render": {"$ref": "#/definitions/render"},
                },
            },
            "backend": {"type": "string"},
        },
        "definitions": {
            "query": _QUERY_SCHEMA,
            "predicate": _PREDICATE_SCHEMA,
            "render": {
                "type": "object",
                "description": (
                    "Response-visualization options (wire schema v3)"
                ),
                "additionalProperties": False,
                "properties": {
                    "format": {"enum": sorted(RENDER_FORMATS)},
                    "theme": {"enum": sorted(RENDER_THEMES)},
                    "max_charts": {
                        "type": ["integer", "null"],
                        "minimum": 1,
                    },
                },
            },
            "literal": {
                "oneOf": [
                    {"type": ["null", "boolean", "integer", "number", "string"]},
                    {
                        "type": "object",
                        "properties": {"$date": {"type": "string"}},
                        "additionalProperties": False,
                    },
                ]
            },
        },
        "error_codes": sorted(ERROR_CODES),
    }


def response_json_schema() -> dict:
    """The wire schema of the response frames (current schema_version).

    Covers the ``POST /recommend`` result body, the NDJSON stream-round
    frame of ``POST /recommend/stream``, and the shared ``visualization``
    and ``deprecation`` objects. Snapshot-tested and drift-checked the
    same way as the request schema: additions need a version bump,
    removals and changes are always breaking.
    """
    from repro.viz.spec import ChartType

    return {
        "$schema": "http://json-schema.org/draft-07/schema#",
        "title": "RecommendationResponse",
        "schema_version": SCHEMA_VERSION,
        "definitions": {
            "view": {
                "type": "object",
                "description": "One scored view (chart-ready payload)",
                "properties": {
                    "dimension": {
                        "oneOf": [
                            {"type": "string"},
                            {"type": "array", "items": {"type": "string"}},
                        ]
                    },
                    "measure": {"type": ["string", "null"]},
                    "func": {"type": "string"},
                    "label": {"type": "string"},
                    "utility": {"type": ["number", "null"]},
                    "groups": {"type": "array"},
                    "target_distribution": {"type": "array"},
                    "comparison_distribution": {"type": "array"},
                    "max_deviation_group": {},
                },
            },
            "visualization": {
                "type": "object",
                "description": (
                    "One rendered chart, paired 1:1 with a top-k view"
                ),
                "required": ["rank", "view", "chart_type", "rationale",
                             "format"],
                "properties": {
                    "rank": {"type": "integer", "minimum": 1},
                    "view": {
                        "type": "string",
                        "description": "Label of the paired view",
                    },
                    "chart_type": {
                        "enum": sorted(member.value for member in ChartType)
                    },
                    "rationale": {
                        "type": "string",
                        "description": (
                            "Why the selector chose this chart type"
                        ),
                    },
                    "format": {
                        "enum": sorted(
                            fmt for fmt in RENDER_FORMATS if fmt != "none"
                        )
                    },
                    "spec": {
                        "type": "object",
                        "description": (
                            "Vega-Lite v5 spec (format == 'vega-lite')"
                        ),
                    },
                    "svg": {
                        "type": "string",
                        "description": (
                            "Standalone SVG document (format == 'svg')"
                        ),
                    },
                },
            },
            "deprecation": {
                "type": "object",
                "description": (
                    "Present (with a Deprecation response header) when the "
                    "request used a deprecated body form"
                ),
                "required": ["code", "message"],
                "properties": {
                    "code": {"type": "string"},
                    "message": {"type": "string"},
                    "docs": {"type": "string"},
                },
            },
        },
        "result": {
            "type": "object",
            "description": "POST /recommend response body",
            "required": ["table", "predicate", "k", "metric",
                         "recommendations"],
            "properties": {
                "table": {"type": "string"},
                "predicate": {"type": "string"},
                "k": {"type": "integer"},
                "metric": {"type": "string"},
                "recommendations": {
                    "type": "array",
                    "items": {"$ref": "#/definitions/view"},
                },
                "n_candidate_views": {"type": "integer"},
                "n_executed_views": {"type": "integer"},
                "n_queries": {"type": "integer"},
                "sample_fraction": {"type": ["number", "null"]},
                "plan_decision": {"type": ["object", "null"]},
                "phase_seconds": {"type": "object"},
                "total_seconds": {"type": "number"},
                "partial": {"type": "boolean"},
                "partial_epsilon": {"type": ["number", "null"]},
                "visualizations": {
                    "type": "array",
                    "items": {"$ref": "#/definitions/visualization"},
                    "description": (
                        "Only present when options.render.format != 'none'"
                    ),
                },
                "deprecation": {"$ref": "#/definitions/deprecation"},
            },
        },
        "stream_round": {
            "type": "object",
            "description": "One NDJSON line of POST /recommend/stream",
            "required": ["round", "n_rounds", "is_final", "views_alive",
                         "views_pruned", "recommendations"],
            "properties": {
                "round": {"type": "integer"},
                "n_rounds": {"type": "integer"},
                "is_final": {"type": "boolean"},
                "views_alive": {"type": "integer"},
                "views_pruned": {"type": "integer"},
                "epsilon": {"type": ["number", "null"]},
                "recommendations": {
                    "type": "array",
                    "items": {"$ref": "#/definitions/view"},
                },
                "visualizations": {
                    "type": "array",
                    "items": {"$ref": "#/definitions/visualization"},
                    "description": (
                        "Per-round specs for the current top-k estimate; "
                        "the final round's match the blocking result's "
                        "bit for bit"
                    ),
                },
                "result": {"$ref": "#/result"},
            },
        },
    }
