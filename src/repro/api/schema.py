"""Machine-readable description of the request wire schema.

:func:`request_json_schema` returns a JSON-Schema-style document for the
current :class:`~repro.api.request.RecommendationRequest` wire form
(``schema_version`` 2; version-1 payloads remain accepted). The API-stability contract test snapshots this document (plus
the package's public symbols): any accidental change to field names,
option names, error codes, or strategies fails CI and forces a deliberate
schema-version decision.
"""

from __future__ import annotations

from repro.api.errors import ERROR_CODES
from repro.api.request import (
    ACCEPTED_SCHEMA_VERSIONS,
    CONFIG_OPTION_FIELDS,
    INCREMENTAL_OPTION_DEFAULTS,
    LIFECYCLE_OPTION_DEFAULTS,
    SCHEMA_VERSION,
    STRATEGIES,
)

_PREDICATE_SCHEMA = {
    "type": "object",
    "description": "Predicate AST node",
    "oneOf": [
        {"properties": {"op": {"const": "true"}}},
        {
            "properties": {
                "op": {"enum": ["=", "!=", "<", "<=", ">", ">="]},
                "column": {"type": "string"},
                "value": {"$ref": "#/definitions/literal"},
            }
        },
        {
            "properties": {
                "op": {"const": "in"},
                "column": {"type": "string"},
                "values": {"type": "array", "items": {"$ref": "#/definitions/literal"}},
            }
        },
        {
            "properties": {
                "op": {"const": "between"},
                "column": {"type": "string"},
                "low": {"$ref": "#/definitions/literal"},
                "high": {"$ref": "#/definitions/literal"},
            }
        },
        {
            "properties": {
                "op": {"enum": ["and", "or"]},
                "operands": {
                    "type": "array",
                    "minItems": 2,
                    "items": {"$ref": "#/definitions/predicate"},
                },
            }
        },
        {
            "properties": {
                "op": {"const": "not"},
                "operand": {"$ref": "#/definitions/predicate"},
            }
        },
    ],
}

_QUERY_SCHEMA = {
    "description": "Row selection: structured object or raw SQL string",
    "oneOf": [
        {"type": "string", "description": "SELECT * FROM t [WHERE ...]"},
        {
            "type": "object",
            "properties": {
                "table": {"type": "string"},
                "predicate": {"$ref": "#/definitions/predicate"},
                "limit": {"type": "integer", "minimum": 0},
                "sql": {"type": "string"},
            },
        },
    ],
}


def request_json_schema() -> dict:
    """The wire schema of RecommendationRequest (current schema_version)."""
    return {
        "$schema": "http://json-schema.org/draft-07/schema#",
        "title": "RecommendationRequest",
        "schema_version": SCHEMA_VERSION,
        "type": "object",
        "required": ["target"],
        "additionalProperties": False,
        "properties": {
            "schema_version": {"enum": sorted(ACCEPTED_SCHEMA_VERSIONS)},
            "target": {"$ref": "#/definitions/query"},
            "reference": {
                "oneOf": [
                    {"enum": ["table", "complement"]},
                    {"type": "string", "description": "SQL of a query reference"},
                    {
                        "type": "object",
                        "properties": {
                            "kind": {"enum": ["table", "complement", "query"]},
                            "query": {"$ref": "#/definitions/query"},
                        },
                        "additionalProperties": False,
                    },
                ]
            },
            "k": {"type": "integer", "minimum": 1},
            "metric": {"type": "string"},
            "dimensions": {"type": "array", "items": {"type": "string"}},
            "measures": {"type": "array", "items": {"type": "string"}},
            "strategy": {"enum": sorted(STRATEGIES)},
            "options": {
                "type": "object",
                "propertyNames": {
                    "enum": sorted(CONFIG_OPTION_FIELDS)
                    + sorted(INCREMENTAL_OPTION_DEFAULTS)
                    + sorted(LIFECYCLE_OPTION_DEFAULTS)
                },
            },
            "backend": {"type": "string"},
        },
        "definitions": {
            "query": _QUERY_SCHEMA,
            "predicate": _PREDICATE_SCHEMA,
            "literal": {
                "oneOf": [
                    {"type": ["null", "boolean", "integer", "number", "string"]},
                    {
                        "type": "object",
                        "properties": {"$date": {"type": "string"}},
                        "additionalProperties": False,
                    },
                ]
            },
        },
        "error_codes": sorted(ERROR_CODES),
    }
