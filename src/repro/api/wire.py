"""JSON wire serialization of recommendation results (schema version 1).

One place renders engine objects — scored views, finished results,
progressive rounds — into the plain-JSON payloads every transport (HTTP
endpoints, NDJSON stream, CLI ``--json``) emits, so the wire schema is
defined once and the contract test can snapshot it.
"""

from __future__ import annotations

from repro.core.result import RecommendationResult
from repro.model.view import ScoredView


def plain(value):
    """Numpy scalars / exotic keys → JSON-safe plain values."""
    if hasattr(value, "item"):
        value = value.item()
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, float):
        return value if value == value else None  # NaN → null
    return str(value)


def view_to_json(view: ScoredView) -> dict:
    """One scored view as the frontend's chart-ready payload."""
    spec = view.spec
    return {
        "dimension": getattr(spec, "dimension", None)
        if getattr(spec, "dimension", None) is not None
        else list(getattr(spec, "dimensions", ())),
        "measure": spec.measure,
        "func": spec.func,
        "label": spec.label,
        "utility": plain(view.utility),
        "groups": [plain(group) for group in view.groups],
        "target_distribution": [plain(v) for v in view.target_distribution],
        "comparison_distribution": [
            plain(v) for v in view.comparison_distribution
        ],
        "max_deviation_group": plain(view.max_deviation_group),
    }


def result_to_json(result: RecommendationResult) -> dict:
    """A full recommendation result as the ``/recommend`` response body."""
    payload: dict = {
        "table": result.table,
        "predicate": result.predicate_description,
        "k": result.k,
        "metric": result.metric,
        "recommendations": [
            view_to_json(view) for view in result.recommendations
        ],
        "n_candidate_views": result.n_candidate_views,
        "n_executed_views": result.n_executed_views,
        "n_queries": result.n_queries,
        "sample_fraction": result.sample_fraction,
        "plan_decision": result.plan_decision,
        "phase_seconds": {
            name: round(seconds, 6)
            for name, seconds in result.stopwatch.phases.items()
        },
        "total_seconds": round(result.total_seconds, 6),
        "partial": result.partial,
        "partial_epsilon": result.partial_epsilon,
    }
    # Absent — not null — without a render request: v1/v2 clients see a
    # byte-identical body shape to the pre-v3 server.
    if result.visualizations is not None:
        payload["visualizations"] = result.visualizations
    return payload
