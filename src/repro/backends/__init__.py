"""Pluggable DBMS backends.

SeeDB "is designed as a layer on top of a traditional relational database
system ... our design permits SEEDB to be used in conjunction with a
variety of existing database systems" (§3.1). The :class:`Backend`
interface is that seam. Two implementations ship:

* :class:`MemoryBackend` — the from-scratch column store of
  :mod:`repro.db`, with shared-scan GROUPING SETS and exact scan accounting.
* :class:`SqliteBackend` — stdlib sqlite3, a real relational DBMS reached
  through generated SQL, demonstrating the wrapper architecture.
* :class:`DuckDbBackend` — a real columnar DBMS with *native*
  GROUPING SETS and sampling (optional ``duckdb`` extra; importing this
  package never requires it).

Feature gating across the planner/engine is driven by each backend's
:class:`BackendCapabilities` declaration, and frontends construct
backends from URIs via :func:`backend_from_uri` (``duckdb:///file.db``).
"""

from repro.backends.base import (
    Backend,
    BackendCapabilities,
    materialize_sample,
)
from repro.backends.duckdb import DuckDbBackend, duckdb_available
from repro.backends.memory import MemoryBackend
from repro.backends.registry import (
    available_backend_schemes,
    backend_from_uri,
    register_backend_scheme,
)
from repro.backends.sqlite import SqliteBackend
from repro.backends.sqlgen import (
    render_aggregate_query,
    render_expression,
    render_row_select,
)

__all__ = [
    "Backend",
    "BackendCapabilities",
    "DuckDbBackend",
    "MemoryBackend",
    "SqliteBackend",
    "available_backend_schemes",
    "backend_from_uri",
    "duckdb_available",
    "materialize_sample",
    "register_backend_scheme",
    "render_aggregate_query",
    "render_expression",
    "render_row_select",
]
