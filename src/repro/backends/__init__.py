"""Pluggable DBMS backends.

SeeDB "is designed as a layer on top of a traditional relational database
system ... our design permits SEEDB to be used in conjunction with a
variety of existing database systems" (§3.1). The :class:`Backend`
interface is that seam. Two implementations ship:

* :class:`MemoryBackend` — the from-scratch column store of
  :mod:`repro.db`, with shared-scan GROUPING SETS and exact scan accounting.
* :class:`SqliteBackend` — stdlib sqlite3, a real relational DBMS reached
  through generated SQL, demonstrating the wrapper architecture.
"""

from repro.backends.base import Backend, BackendCapabilities
from repro.backends.memory import MemoryBackend
from repro.backends.sqlite import SqliteBackend
from repro.backends.sqlgen import (
    render_aggregate_query,
    render_expression,
    render_row_select,
)

__all__ = [
    "Backend",
    "BackendCapabilities",
    "MemoryBackend",
    "SqliteBackend",
    "render_aggregate_query",
    "render_expression",
    "render_row_select",
]
