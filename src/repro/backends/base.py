"""The backend (DBMS) interface SeeDB is written against."""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.db.query import AggregateQuery, GroupingSetsQuery, RowSelectQuery
from repro.db.schema import Schema
from repro.db.table import Table
from repro.util.errors import BackendError


@dataclass(frozen=True)
class BackendCapabilities:
    """What the underlying DBMS can do; the optimizer adapts to these.

    * ``grouping_sets`` — multiple group-by sets share one scan
      ("if the SQL GROUPING SETS functionality is available in the
      underlying DBMS, SEEDB can leverage that", §3.3).
    * ``parallel_queries`` — concurrent query execution is safe and useful.
    * ``native_var_std`` — VAR/STD can be pushed down unrewritten.
    """

    grouping_sets: bool
    parallel_queries: bool
    native_var_std: bool


class Backend:
    """Abstract DBMS: table registry + query execution.

    All view queries SeeDB generates go through :meth:`execute` /
    :meth:`execute_grouping_sets`. ``queries_executed`` counts round trips
    to the DBMS — the unit the paper's combining optimizations minimize.

    Backends are shared by every session of a service process, so the two
    accounting counters — ``queries_executed`` and ``data_version`` — are
    kept exact under concurrency by a single lock (:attr:`_accounting_lock`)
    that every subclass mutation goes through. Subclasses must call
    ``super().__init__()``.
    """

    name: str = ""
    capabilities: BackendCapabilities

    def __init__(self) -> None:
        #: One lock guards both counters (and is reused by subclasses for
        #: their table-registry mutations): stats reads and cache
        #: invalidation see a single consistent accounting state.
        self._accounting_lock = threading.RLock()
        self._data_version = 0
        self._queries_executed = 0

    # -- data management -------------------------------------------------

    def register_table(self, table: Table, replace: bool = False) -> None:
        """Load a table into the DBMS."""
        raise NotImplementedError

    def drop_table(self, name: str) -> None:
        """Remove a table (samples are created and dropped per session)."""
        raise NotImplementedError

    def has_table(self, name: str) -> bool:
        raise NotImplementedError

    def schema(self, table_name: str) -> Schema:
        """Schema (with dimension/measure roles) of a registered table."""
        raise NotImplementedError

    def row_count(self, table_name: str) -> int:
        raise NotImplementedError

    # -- execution --------------------------------------------------------

    def execute(self, query: "AggregateQuery | RowSelectQuery") -> Table:
        raise NotImplementedError

    def execute_grouping_sets(self, query: GroupingSetsQuery) -> list[Table]:
        """Execute every grouping set; backends without native support fall
        back to one query per set (correct, just less shared)."""
        raise NotImplementedError

    # -- support services --------------------------------------------------

    def fetch_table(self, name: str, max_rows: "int | None" = None) -> Table:
        """Materialize (a prefix of) a table for metadata collection."""
        raise NotImplementedError

    def create_sample(
        self, source: str, sample_name: str, fraction: float, seed: int = 0
    ) -> str:
        """Materialize a row sample of ``source`` as a new table; returns
        its name. Used by the sampling optimization (§3.3)."""
        raise NotImplementedError

    # -- accounting --------------------------------------------------------

    @property
    def queries_executed(self) -> int:
        """DBMS round trips since construction/reset."""
        return self._queries_executed

    def reset_counters(self) -> None:
        with self._accounting_lock:
            self._queries_executed = 0

    def _record_queries(self, n: int = 1) -> None:
        """Atomically count ``n`` logical DBMS round trips."""
        with self._accounting_lock:
            self._queries_executed += n

    @property
    def data_version(self) -> int:
        """Data-generation counter; changes whenever registered data does.

        Implementations bump it on :meth:`register_table` and
        :meth:`drop_table`. Derived artifacts (materialized samples created
        through :meth:`create_sample`) do not bump it — they are owned by
        the cache layer that keys on this counter.
        """
        return self._data_version

    def _bump_data_version(self) -> None:
        with self._accounting_lock:
            self._data_version += 1

    # -- shared helpers ----------------------------------------------------

    def _require_table(self, name: str) -> None:
        if not self.has_table(name):
            raise BackendError(f"backend {self.name!r} has no table {name!r}")
