"""The backend (DBMS) interface SeeDB is written against."""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.db.query import (
    AggregateQuery,
    FlagColumn,
    GroupingSetsQuery,
    RowSelectQuery,
    grouping_key_name,
)
from repro.db.schema import ColumnSpec, Schema
from repro.db.table import Table
from repro.db.types import AttributeRole, DataType
from repro.util.errors import BackendError


#: Closed vocabulary for :attr:`BackendCapabilities.threading_model`.
THREADING_MODELS = ("shared", "connection-per-thread", "serial")


@dataclass(frozen=True)
class BackendCapabilities:
    """What the underlying DBMS can do; the optimizer adapts to these.

    Planner and engine feature-gating keys off this declaration — never
    off backend class identity — so a new backend (or a test flipping one
    flag) changes execution paths without touching any ``isinstance``.

    * ``grouping_sets`` — multiple group-by sets share one scan
      ("if the SQL GROUPING SETS functionality is available in the
      underlying DBMS, SEEDB can leverage that", §3.3). False steers the
      planner away from :class:`~repro.optimizer.plan.MultiDimStep` and
      makes ``execute_grouping_sets`` a fallback (per-set queries or one
      UNION ALL statement).
    * ``parallel_queries`` — concurrent query execution is safe and useful.
    * ``native_var_std`` — VAR/STD can be pushed down unrewritten.
    * ``native_sampling`` — :meth:`Backend.create_sample` materializes the
      sample inside the DBMS; False routes the sampling optimization
      through the client-side Bernoulli fallback
      (:meth:`Backend.create_sample_clientside`).
    * ``zero_copy_extract`` — informational: query results arrive as
      columnar arrays without a per-row decode hop (memory engine tables,
      DuckDB ``fetchnumpy``); surfaced in the capability matrix, not
      consulted for path selection.
    * ``stats_pushdown`` — the planner's table-statistics pass (row count,
      per-attribute distinct counts, null fractions, group-size skew) runs
      as aggregate SQL inside the DBMS (two statements total); False
      routes :func:`collect_statistics` through the client-side fallback,
      which fetches the table once and profiles it with numpy.
    * ``threading_model`` — how the backend achieves thread safety, one of
      :data:`THREADING_MODELS`: ``"shared"`` (one engine object safely
      shared), ``"connection-per-thread"`` (each thread gets its own
      connection/cursor to one database), or ``"serial"`` (the engine
      executes plans sequentially regardless of the configured worker
      count — see :meth:`ExecutionEngine.executor_for`).
    """

    grouping_sets: bool
    parallel_queries: bool
    native_var_std: bool
    native_sampling: bool = True
    zero_copy_extract: bool = False
    stats_pushdown: bool = False
    threading_model: str = "shared"

    def __post_init__(self) -> None:
        if self.threading_model not in THREADING_MODELS:
            raise ValueError(
                f"threading_model must be one of {THREADING_MODELS}, "
                f"got {self.threading_model!r}"
            )


class Backend:
    """Abstract DBMS: table registry + query execution.

    All view queries SeeDB generates go through :meth:`execute` /
    :meth:`execute_grouping_sets`. ``queries_executed`` counts round trips
    to the DBMS — the unit the paper's combining optimizations minimize.

    Backends are shared by every session of a service process, so the two
    accounting counters — ``queries_executed`` and ``data_version`` — are
    kept exact under concurrency by a single lock (:attr:`_accounting_lock`)
    that every subclass mutation goes through. Subclasses must call
    ``super().__init__()``.
    """

    name: str = ""
    capabilities: BackendCapabilities

    def __init__(self) -> None:
        #: One lock guards both counters (and is reused by subclasses for
        #: their table-registry mutations): stats reads and cache
        #: invalidation see a single consistent accounting state.
        self._accounting_lock = threading.RLock()
        self._data_version = 0  # guarded-by: _accounting_lock
        self._queries_executed = 0  # guarded-by: _accounting_lock
        self._statements_executed = 0  # guarded-by: _accounting_lock
        self._metadata_queries_executed = 0  # guarded-by: _accounting_lock

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Release held resources (connections, owned files).

        Part of the backend contract so every consumer can call
        ``backend.close()`` unconditionally; the base implementation holds
        nothing and is a no-op (idempotency is part of the contract —
        closing twice must be safe).
        """

    # -- data management -------------------------------------------------

    def register_table(self, table: Table, replace: bool = False) -> None:
        """Load a table into the DBMS."""
        raise NotImplementedError

    def drop_table(self, name: str) -> None:
        """Remove a table (samples are created and dropped per session)."""
        raise NotImplementedError

    def has_table(self, name: str) -> bool:
        raise NotImplementedError

    def table_names(self) -> list[str]:
        """Names of every registered table (sorted).

        The cluster tier uses this to ship a backend's contents to worker
        replicas: ``fetch_table`` each name, re-register on the replica.
        """
        raise NotImplementedError

    def schema(self, table_name: str) -> Schema:
        """Schema (with dimension/measure roles) of a registered table."""
        raise NotImplementedError

    def row_count(self, table_name: str) -> int:
        raise NotImplementedError

    # -- execution --------------------------------------------------------

    def execute(self, query: "AggregateQuery | RowSelectQuery") -> Table:
        raise NotImplementedError

    def execute_grouping_sets(self, query: GroupingSetsQuery) -> list[Table]:
        """Execute every grouping set; backends without native support fall
        back to one query per set (correct, just less shared)."""
        raise NotImplementedError

    # -- support services --------------------------------------------------

    def fetch_table(self, name: str, max_rows: "int | None" = None) -> Table:
        """Materialize (a prefix of) a table for metadata collection."""
        raise NotImplementedError

    def create_sample(
        self, source: str, sample_name: str, fraction: float, seed: int = 0
    ) -> str:
        """Materialize a row sample of ``source`` as a new table; returns
        its name. Used by the sampling optimization (§3.3). Only called
        when ``capabilities.native_sampling`` holds; other backends go
        through :meth:`create_sample_clientside`."""
        raise NotImplementedError

    def create_sample_clientside(
        self, source: str, sample_name: str, fraction: float, seed: int = 0
    ) -> str:
        """Client-side sampling fallback: fetch, Bernoulli-sample, register.

        The capability-driven twin of :meth:`create_sample` for backends
        declaring ``native_sampling=False`` — the rows cross the wire once,
        the sample lands back in the DBMS via :meth:`register_derived` (so,
        like a native sample, it does *not* bump ``data_version``).
        """
        from repro.sampling.bernoulli import BernoulliSampler

        if not (0.0 < fraction <= 1.0):
            raise BackendError(f"sample fraction must be in (0, 1], got {fraction}")
        table = self.fetch_table(source)
        sample = BernoulliSampler(fraction).sample(table, seed=seed)
        self.register_derived(sample.rename(sample_name))
        return sample_name

    def register_derived(self, table: Table) -> None:
        """Register a derived artifact (a sample) without a version bump.

        Derived tables are owned by the cache layer keyed on
        ``data_version``; bumping the counter here would make every sample
        materialization self-invalidate the cache that requested it.
        """
        raise NotImplementedError

    # -- table statistics (cost-based planning inputs) ---------------------

    def collect_statistics_pushdown(
        self, table_name: str, attributes: "tuple[str, ...] | None" = None
    ):
        """Backend-pushed statistics pass (≤ 2 statements, no row transfer).

        Only called when ``capabilities.stats_pushdown`` holds; SQL
        backends override this with the two-statement aggregate pass from
        :func:`repro.backends.sqlgen.render_profile_queries`. Never bumps
        ``data_version`` — statistics are reads, and a bump here would
        self-invalidate the cache that keyed the profile on it.
        """
        raise NotImplementedError

    def collect_statistics_clientside(
        self, table_name: str, attributes: "tuple[str, ...] | None" = None
    ):
        """Client-side fallback: one table fetch, profiled with numpy."""
        from repro.metadata.stats import profile_from_table

        self._require_table(table_name)
        self._record_metadata_queries(1)
        table = self.fetch_table(table_name)
        return profile_from_table(table, attributes)

    def _resolve_profile_attributes(
        self, table_name: str, attributes: "tuple[str, ...] | None"
    ) -> tuple[str, ...]:
        """Default the profiled attribute set to the dimension columns."""
        if attributes is not None:
            return tuple(attributes)
        return tuple(spec.name for spec in self.schema(table_name).dimensions)

    # -- accounting --------------------------------------------------------

    @property
    def queries_executed(self) -> int:
        """Logical view queries since construction/reset.

        A combined statement (UNION ALL emulation) still counts one per
        grouping set — the unit the paper's combining optimizations
        minimize — while a *native* shared scan counts once.
        """
        with self._accounting_lock:
            return self._queries_executed

    @property
    def statements_executed(self) -> int:
        """Physical DBMS round trips since construction/reset.

        The companion counter to :attr:`queries_executed`: a UNION ALL
        batch is many logical queries but one statement; a native
        GROUPING SETS query is one of each.
        """
        with self._accounting_lock:
            return self._statements_executed

    @property
    def metadata_queries_executed(self) -> int:
        """Statistics/metadata round trips since construction/reset.

        Kept apart from :attr:`queries_executed` (the unit the paper's
        combining optimizations minimize): stats collection must be
        observable — the conformance kit asserts it stays ≤ 2 per table —
        without perturbing view-query accounting.
        """
        with self._accounting_lock:
            return self._metadata_queries_executed

    def reset_counters(self) -> None:
        with self._accounting_lock:
            self._queries_executed = 0
            self._statements_executed = 0
            self._metadata_queries_executed = 0

    def _record_queries(self, n: int = 1, statements: int = 1) -> None:
        """Atomically count ``n`` logical queries over ``statements`` trips."""
        with self._accounting_lock:
            self._queries_executed += n
            self._statements_executed += statements

    def _record_metadata_queries(self, n: int = 1) -> None:
        with self._accounting_lock:
            self._metadata_queries_executed += n

    @property
    def data_version(self) -> int:
        """Data-generation counter; changes whenever registered data does.

        Implementations bump it on :meth:`register_table` and
        :meth:`drop_table`. Derived artifacts (materialized samples created
        through :meth:`create_sample`) do not bump it — they are owned by
        the cache layer that keys on this counter.
        """
        with self._accounting_lock:
            return self._data_version

    def _bump_data_version(self) -> None:
        with self._accounting_lock:
            self._data_version += 1

    # -- shared helpers ----------------------------------------------------

    def _require_table(self, name: str) -> None:
        if not self.has_table(name):
            raise BackendError(f"backend {self.name!r} has no table {name!r}")


def decode_result_column(raw: list, dtype: DataType, column: str = "") -> "np.ndarray":
    """Convert one fetched SQL result column to the canonical numpy form.

    Shared by every SQL backend. NULLs become NaN (FLOAT), None-bearing
    object entries (STR), or NaT (DATE); the canonical representation has
    no NULL for INT/BOOL, so those raise a clear :class:`BackendError`
    instead of crashing with TypeError or silently coercing to False.
    """
    if dtype is DataType.FLOAT:
        return np.array(
            [float("nan") if v is None else float(v) for v in raw], dtype=np.float64
        )
    if dtype in (DataType.INT, DataType.BOOL):
        if any(v is None for v in raw):
            raise BackendError(
                f"NULL in {dtype.name} result column {column!r}: the canonical "
                "table representation has no NULL integers/booleans"
            )
        if dtype is DataType.INT:
            return np.array([int(v) for v in raw], dtype=np.int64)
        return np.array([bool(v) for v in raw], dtype=np.bool_)
    if dtype is DataType.DATE:
        return np.array(
            [
                np.datetime64("NaT") if v is None else np.datetime64(v, "D")
                for v in raw
            ],
            dtype="datetime64[D]",
        )
    array = np.empty(len(raw), dtype=object)
    for i, value in enumerate(raw):
        array[i] = value
    return array


def rows_to_table(name: str, schema: Schema, rows: list) -> Table:
    """Build a canonical Table from fetched SQL row tuples (shared)."""
    arrays = {}
    for index, spec in enumerate(schema):
        raw = [row[index] for row in rows]
        arrays[spec.name] = decode_result_column(raw, spec.dtype, spec.name)
    return Table(name, schema, arrays)


def aggregate_result_schema(base: Schema, query: AggregateQuery) -> Schema:
    """Result-table schema of an aggregate query over ``base``.

    Shared by every SQL backend: grouping keys keep their base dtype and
    semantic (flags become INT), aggregates are FLOAT measures.
    """
    specs: list[ColumnSpec] = []
    for key in query.group_by:
        if isinstance(key, FlagColumn):
            specs.append(ColumnSpec(key.name, DataType.INT, AttributeRole.DIMENSION))
        else:
            base_spec = base[key]
            specs.append(
                ColumnSpec(
                    grouping_key_name(key),
                    base_spec.dtype,
                    AttributeRole.DIMENSION,
                    base_spec.semantic,
                )
            )
    for aggregate in query.aggregates:
        specs.append(
            ColumnSpec(aggregate.alias, DataType.FLOAT, AttributeRole.MEASURE)
        )
    return Schema(tuple(specs))


def materialize_sample(
    backend: Backend, source: str, sample_name: str, fraction: float, seed: int = 0
) -> str:
    """Materialize a sample the way the backend's capabilities dictate.

    The engine's single entry point for the sampling optimization:
    ``native_sampling`` picks between the in-DBMS path and the client-side
    Bernoulli fallback, so a backend (or a test) flips the path by
    declaration alone.
    """
    if backend.capabilities.native_sampling:
        return backend.create_sample(source, sample_name, fraction, seed=seed)
    return backend.create_sample_clientside(source, sample_name, fraction, seed=seed)


def collect_statistics(
    backend: Backend,
    table_name: str,
    attributes: "tuple[str, ...] | None" = None,
):
    """Collect a table profile the way the backend's capabilities dictate.

    The planner's single entry point for the statistics pass, mirroring
    :func:`materialize_sample`: ``stats_pushdown`` picks between in-DBMS
    aggregate SQL and the client-side numpy fallback, so a backend (or a
    test) flips the path by declaration alone.
    """
    if backend.capabilities.stats_pushdown:
        return backend.collect_statistics_pushdown(table_name, attributes)
    return backend.collect_statistics_clientside(table_name, attributes)


def profile_from_pushed_rows(
    table_name: str,
    attributes: "tuple[str, ...]",
    summary_row: tuple,
    skew_rows: "list[tuple]",
):
    """Assemble a TableProfile from the two pushed statements' results.

    Shared by every SQL backend. ``summary_row`` is
    ``(COUNT(*), COUNT(a1), COUNT(DISTINCT a1), ...)``; ``skew_rows`` are
    ``(attribute_name, max_group_rows)`` pairs, matched by name (UNION ALL
    arm order is not relied on).
    """
    from repro.metadata.stats import AttributeProfile, TableProfile

    n_rows = int(summary_row[0])
    max_rows_by_attr = {str(name): row for name, row in skew_rows}
    profiles: dict[str, AttributeProfile] = {}
    for index, name in enumerate(attributes):
        non_null = int(summary_row[1 + 2 * index])
        n_distinct = int(summary_row[2 + 2 * index])
        raw_max = max_rows_by_attr.get(name)
        max_group_rows = int(raw_max) if raw_max is not None else 0
        profiles[name] = AttributeProfile(
            name=name,
            n_distinct=n_distinct,
            null_fraction=(
                (n_rows - non_null) / n_rows if n_rows else 0.0
            ),
            max_group_fraction=(
                max_group_rows / non_null if non_null else 0.0
            ),
        )
    return TableProfile(
        table_name=table_name,
        n_rows=n_rows,
        attributes=profiles,
        source="pushed",
    )
