"""DuckDB backend: a real columnar engine behind the Backend seam.

This is the backend the paper's sharing optimizations were designed for:
DuckDB executes ``GROUP BY GROUPING SETS`` natively over one shared
columnar scan, so a :class:`~repro.db.query.GroupingSetsQuery` is one
physical statement *and* one logical query — unlike the SQLite UNION ALL
emulation, which shares the round trip but still evaluates one arm per
set. Results come back through ``fetchnumpy`` (columnar, zero-copy from
DuckDB's vectors into numpy) with a row-decode fallback for exotic types.

The ``duckdb`` wheel is an optional extra: this module imports without
it, and constructing :class:`DuckDbBackend` raises a clear
:class:`~repro.util.errors.BackendError` when it is absent (conformance
and benchmark cells skip cleanly instead of failing).

Concurrency follows DuckDB's documented model: one root connection per
backend, one ``.cursor()`` clone per thread (cursors share the database,
including an in-memory one).
"""

from __future__ import annotations

import threading
from datetime import datetime

import numpy as np

from repro.backends.base import (
    Backend,
    BackendCapabilities,
    aggregate_result_schema,
    profile_from_pushed_rows,
    rows_to_table,
)
from repro.backends.sqlgen import (
    quote_identifier,
    render_aggregate_query,
    render_grouping_sets_native,
    render_grouping_sets_union,
    render_profile_queries,
    render_row_select,
    split_grouping_rows,
    union_key_positions,
)
from repro.metadata.calibration import calibration_sidecar_path
from repro.db.query import (
    AggregateQuery,
    GroupingSetsQuery,
    RowSelectQuery,
    grouping_key_name,
)
from repro.db.schema import Schema
from repro.db.table import Table
from repro.db.types import DataType
from repro.testing.faults import fault_point
from repro.util.deadline import current_token
from repro.util.errors import BackendError

try:  # pragma: no cover - trivially environment-dependent
    import duckdb as _duckdb
except ImportError:  # pragma: no cover
    _duckdb = None

_SQL_TYPES = {
    DataType.INT: "BIGINT",
    DataType.FLOAT: "DOUBLE",
    DataType.STR: "VARCHAR",
    DataType.BOOL: "BOOLEAN",
    DataType.DATE: "DATE",
}


def duckdb_available() -> bool:
    """Whether the optional ``duckdb`` wheel is importable."""
    return _duckdb is not None


class DuckDbBackend(Backend):
    """Backend over the optional ``duckdb`` package.

    ``path=None`` serves an in-memory database (DuckDB's own default); a
    path serves — and creates, but never deletes — a database file.
    ``force_union_fallback=True`` disables the native grouping-sets path
    and runs the same UNION ALL emulation SQLite uses — the knob the
    shared-scan benchmarks and conformance tests flip to compare the two
    paths on one engine.
    """

    name = "duckdb"
    capabilities = BackendCapabilities(
        grouping_sets=True,
        parallel_queries=True,
        native_var_std=True,
        native_sampling=True,
        zero_copy_extract=True,
        stats_pushdown=True,
        threading_model="connection-per-thread",
    )

    def __init__(
        self, path: "str | None" = None, force_union_fallback: bool = False
    ):
        if _duckdb is None:
            raise BackendError(
                "the 'duckdb' package is not installed; install the "
                "optional extra (pip install duckdb) or use the memory/"
                "sqlite backends"
            )
        super().__init__()
        if path is None:
            path = ":memory:"
        self._path = path
        #: Keeps the declared capability (the planner still plans shared
        #: scans) but executes each GroupingSetsQuery via the UNION ALL
        #: emulation — the knob benchmarks/tests flip to compare the two
        #: execution paths on one engine for the same plan.
        self._force_union_fallback = force_union_fallback
        self._root = _duckdb.connect(path)
        self._local = threading.local()
        self._schemas: dict[str, Schema] = {}
        #: Every cursor handed out, regardless of owning thread, so
        #: :meth:`close` can finalize them all (mirrors SqliteBackend).
        self._cursors: list = []
        self._cursors_lock = threading.Lock()
        #: Serializes sample materializations: the seeded-scan thread
        #: pinning below is a database-wide setting, so two concurrent
        #: create_sample calls must not interleave their SET/restore.
        self._sample_lock = threading.Lock()
        self._closed = False

    # -- connection management ---------------------------------------------

    def _connection(self):
        if self._closed:
            raise BackendError("duckdb backend is closed")
        cursor = getattr(self._local, "cursor", None)
        if cursor is None:
            cursor = self._root.cursor()
            with self._cursors_lock:
                self._cursors.append(cursor)
            self._local.cursor = cursor
        return cursor

    @property
    def open_connections(self) -> int:
        """Cursors opened and not yet closed (leak observability); the
        root connection is excluded — it lives exactly as long as the
        backend."""
        with self._cursors_lock:
            return len(self._cursors)

    def close(self) -> None:
        """Close every cursor and the root connection (idempotent)."""
        with self._cursors_lock:
            cursors, self._cursors = self._cursors, []
        for cursor in cursors:
            try:
                cursor.close()
            except Exception:  # pragma: no cover - already-dead handle
                pass
        if not self._closed:
            self._closed = True
            try:
                self._root.close()
            except Exception:  # pragma: no cover
                pass
        self._local.cursor = None

    # -- data management -----------------------------------------------------

    def register_table(self, table: Table, replace: bool = False) -> None:
        if table.name in self._schemas and not replace:
            raise BackendError(
                f"table {table.name!r} already registered (pass replace=True)"
            )
        self._create_and_fill(table)
        with self._accounting_lock:
            self._schemas[table.name] = table.schema
            self._bump_data_version()

    def register_derived(self, table: Table) -> None:
        self._create_and_fill(table)
        with self._accounting_lock:
            self._schemas[table.name] = table.schema

    def _create_and_fill(self, table: Table) -> None:
        connection = self._connection()
        quoted = quote_identifier(table.name)
        column_defs = ", ".join(
            f"{quote_identifier(spec.name)} {_SQL_TYPES[spec.dtype]}"
            for spec in table.schema
        )
        self._sql(connection, f"DROP TABLE IF EXISTS {quoted}")
        self._sql(connection, f"CREATE TABLE {quoted} ({column_defs})")
        rows = [_encode_row(row) for row in table.iter_rows()]
        if rows:
            placeholders = ", ".join("?" for _ in table.schema.names)
            try:
                connection.executemany(
                    f"INSERT INTO {quoted} VALUES ({placeholders})", rows
                )
            except Exception as exc:
                raise BackendError(
                    f"duckdb error loading table {table.name!r}: {exc}"
                ) from exc

    def drop_table(self, name: str) -> None:
        self._require_table(name)
        self._sql(self._connection(), f"DROP TABLE IF EXISTS {quote_identifier(name)}")
        with self._accounting_lock:
            del self._schemas[name]
            self._bump_data_version()

    def has_table(self, name: str) -> bool:
        return name in self._schemas

    def table_names(self) -> list[str]:
        return sorted(self._schemas)

    def schema(self, table_name: str) -> Schema:
        self._require_table(table_name)
        return self._schemas[table_name]

    def row_count(self, table_name: str) -> int:
        self._require_table(table_name)
        rows = self._metadata_rows(
            f"SELECT COUNT(*) FROM {quote_identifier(table_name)}"
        )
        return int(rows[0][0])

    # -- execution -------------------------------------------------------------

    def execute(self, query: "AggregateQuery | RowSelectQuery") -> Table:
        self._require_table(query.table)
        if isinstance(query, RowSelectQuery):
            sql = render_row_select(query)
            return self._run_to_table(
                sql, f"{query.table}_selected", self._schemas[query.table]
            )
        sql = render_aggregate_query(query, native_var_std=True)
        return self._run_to_table(
            sql, f"{query.table}_view", self._result_schema(query)
        )

    def execute_grouping_sets(self, query: GroupingSetsQuery) -> list[Table]:
        singles = query.as_single_queries()
        if len(singles) == 1:
            return [self.execute(singles[0])]
        self._require_table(query.table)
        if self._force_union_fallback:
            return self._grouping_sets_union(query, singles)
        return self._grouping_sets_native(query, singles)

    def _grouping_sets_native(
        self, query: GroupingSetsQuery, singles
    ) -> list[Table]:
        """Native shared scan: one statement, one logical query.

        The GROUPING() bitmask column disambiguates "key not in this
        row's set" NULLs from genuine NULL data values in a key.
        """
        sql, union_keys, mask_to_set = render_grouping_sets_native(
            query, native_var_std=True
        )
        rows = self._run(sql, logical_queries=1)
        # Positions come from the renderer's returned key list — the
        # statement's actual column order, not a re-derivation.
        positions = {
            grouping_key_name(key): index for index, key in enumerate(union_keys)
        }
        per_set = split_grouping_rows(
            rows, singles, positions, lambda tag: mask_to_set[int(tag)]
        )
        return [
            rows_to_table(
                f"{query.table}_view", self._result_schema(single), set_rows
            )
            for single, set_rows in zip(singles, per_set)
        ]

    def _grouping_sets_union(
        self, query: GroupingSetsQuery, singles
    ) -> list[Table]:
        """The SQLite-style emulation: one UNION ALL statement, one logical
        query per set (the comparison baseline for the native path)."""
        sql = render_grouping_sets_union(query, native_var_std=True)
        rows = self._run(sql, logical_queries=len(singles))
        per_set = split_grouping_rows(
            rows, singles, union_key_positions(query), int
        )
        return [
            rows_to_table(
                f"{query.table}_view", self._result_schema(single), set_rows
            )
            for single, set_rows in zip(singles, per_set)
        ]

    # -- support services ---------------------------------------------------------

    def fetch_table(self, name: str, max_rows: "int | None" = None) -> Table:
        self._require_table(name)
        sql = f"SELECT * FROM {quote_identifier(name)}"
        if max_rows is not None:
            sql += f" LIMIT {int(max_rows)}"
        cursor = self._sql(self._connection(), sql)
        return self._extract(cursor, name, self._schemas[name])

    def create_sample(
        self, source: str, sample_name: str, fraction: float, seed: int = 0
    ) -> str:
        self._require_table(source)
        if not (0.0 < fraction <= 1.0):
            raise BackendError(f"sample fraction must be in (0, 1], got {fraction}")
        quoted_source = quote_identifier(source)
        quoted_sample = quote_identifier(sample_name)
        connection = self._connection()
        # Native Bernoulli sampling with a fixed seed. Seeded samples are
        # only reproducible on a single-threaded scan, and equal sample
        # names must imply equal content (the cache layer's invariant), so
        # the scan briefly pins the database-wide thread count — under a
        # lock (two materializations must not interleave SET/restore) and
        # restoring the operator's own setting, not the default.
        with self._sample_lock:
            previous = self._sql(
                connection, "SELECT current_setting('threads')"
            ).fetchone()[0]
            self._sql(connection, "SET threads TO 1")
            try:
                self._sql(connection, f"DROP TABLE IF EXISTS {quoted_sample}")
                self._sql(
                    connection,
                    f"CREATE TABLE {quoted_sample} AS "
                    f"SELECT * FROM {quoted_source} "
                    f"USING SAMPLE {fraction * 100.0} PERCENT "
                    f"(bernoulli, {int(seed)})",
                )
            finally:
                self._sql(connection, f"SET threads TO {int(previous)}")
        with self._accounting_lock:
            self._schemas[sample_name] = self._schemas[source]
        return sample_name

    def collect_statistics_pushdown(
        self, table_name: str, attributes: "tuple[str, ...] | None" = None
    ):
        """The two-statement aggregate statistics pass, fully in DuckDB."""
        self._require_table(table_name)
        names = self._resolve_profile_attributes(table_name, attributes)
        summary_sql, skew_sql = render_profile_queries(table_name, names)
        summary_row = self._metadata_rows(summary_sql)[0]
        skew_rows = self._metadata_rows(skew_sql) if skew_sql is not None else []
        return profile_from_pushed_rows(table_name, names, summary_row, skew_rows)

    @property
    def calibration_path(self) -> "str | None":
        """Sidecar location for persisted calibration (file-backed only)."""
        return calibration_sidecar_path(self._path)

    # -- internals --------------------------------------------------------------------

    def _metadata_rows(self, sql: str) -> list[tuple]:
        """Run one counted *metadata* statement (statistics collection)."""
        self._record_metadata_queries(1)
        return self._sql(self._connection(), sql).fetchall()

    def _sql(self, connection, sql: str):
        """Execute uncounted maintenance SQL (DDL, loads, counts)."""
        token = current_token()
        unregister = None
        if token is not None:
            # DuckDB can interrupt a running statement from another thread;
            # an explicit cancel fires it immediately. Deadline expiry is
            # caught by the checkpoint here (per statement) — good enough
            # because view queries on one request are issued sequentially.
            token.check()
            interrupt = getattr(connection, "interrupt", None)
            if interrupt is not None:
                unregister = token.on_cancel(interrupt)
        try:
            # _sql is the shared raw seam; counted callers (_run,
            # _run_to_table, _metadata_rows) record before reaching it.
            # seedb-lint: disable=counter-accounting -- bare DDL/loads are deliberately uncounted
            return connection.execute(sql)
        except Exception as exc:
            if token is not None:
                error = token.error()
                if error is not None and "interrupt" in str(exc).lower():
                    raise error from exc
            raise BackendError(f"duckdb error for SQL {sql!r}: {exc}") from exc
        finally:
            if unregister is not None:
                unregister()

    def _run(self, sql: str, logical_queries: int = 1) -> list[tuple]:
        """Execute one counted view-query statement, returning its rows."""
        self._record_queries(logical_queries)
        fault_point("backend.execute")
        cursor = self._sql(self._connection(), sql)
        return cursor.fetchall()

    def _run_to_table(self, sql: str, name: str, schema: Schema) -> Table:
        self._record_queries(1)
        cursor = self._sql(self._connection(), sql)
        return self._extract(cursor, name, schema)

    def _extract(self, cursor, name: str, schema: Schema) -> Table:
        """Columnar result extraction: ``fetchnumpy`` when it can represent
        the result (zero-copy from DuckDB vectors), row decode otherwise."""
        try:
            data = cursor.fetchnumpy()
        except Exception:
            return rows_to_table(name, schema, cursor.fetchall())
        try:
            return _table_from_numpy(name, schema, data)
        except _NumpyExtractUnsupported:
            # The statement already ran; rebuild rows from the fetched
            # arrays (masks preserved as None) for result shapes numpy
            # cannot hold canonically.
            return rows_to_table(name, schema, _rows_from_numpy(data, schema))

    def _result_schema(self, query: AggregateQuery) -> Schema:
        return aggregate_result_schema(self._schemas[query.table], query)

    def __repr__(self) -> str:
        return f"DuckDbBackend(path={self._path!r}, tables={len(self._schemas)})"


class _NumpyExtractUnsupported(Exception):
    """Raised when a fetchnumpy column cannot become a canonical array."""


def _rows_from_numpy(data: dict, schema: Schema) -> list:
    """Row tuples from a ``fetchnumpy`` dict, preserving NULLs as None.

    The row-decode fallback for result shapes :func:`_table_from_numpy`
    cannot canonicalize; masked entries become None (never the masked
    array's fill value) so NULL semantics survive the detour.
    """
    columns = []
    for spec in schema:
        if spec.name not in data:
            raise BackendError(f"duckdb result is missing column {spec.name!r}")
        column = data[spec.name]
        mask = np.ma.getmaskarray(column) if np.ma.isMaskedArray(column) else None
        values = np.ma.getdata(column) if np.ma.isMaskedArray(column) else column
        columns.append(
            [
                None if (mask is not None and mask[i]) else values[i]
                for i in range(len(values))
            ]
        )
    return list(zip(*columns))


def _encode_row(row: tuple) -> tuple:
    """Convert one table row into duckdb-bindable values."""
    encoded = []
    for value in row:
        if isinstance(value, np.generic):
            value = value.item()
        if isinstance(value, np.datetime64):
            encoded.append(value.astype("datetime64[D]").item())
        elif isinstance(value, datetime):
            encoded.append(value.date())
        elif isinstance(value, float) and value != value:  # NaN -> NULL
            encoded.append(None)
        else:
            encoded.append(value)
    return tuple(encoded)




def _table_from_numpy(name: str, schema: Schema, data: dict) -> Table:
    """Build a Table from a ``fetchnumpy`` result dict.

    DuckDB returns masked arrays where the column held NULLs; the
    canonical representations are NaN (FLOAT), None-bearing object arrays
    (STR), and NaT (DATE). NULL in an INT/BOOL column has no canonical
    representation — those results take the row-decode path.
    """
    arrays: dict[str, np.ndarray] = {}
    for spec in schema:
        if spec.name not in data:
            raise _NumpyExtractUnsupported(spec.name)
        column = data[spec.name]
        mask = np.ma.getmaskarray(column) if np.ma.isMaskedArray(column) else None
        values = np.ma.getdata(column) if np.ma.isMaskedArray(column) else column
        if spec.dtype is DataType.FLOAT:
            out = np.asarray(values, dtype=np.float64).copy()
            if mask is not None:
                out[mask] = np.nan
            arrays[spec.name] = out
        elif spec.dtype is DataType.INT:
            if mask is not None and mask.any():
                raise _NumpyExtractUnsupported(spec.name)
            arrays[spec.name] = np.asarray(values, dtype=np.int64)
        elif spec.dtype is DataType.BOOL:
            if mask is not None and mask.any():
                raise _NumpyExtractUnsupported(spec.name)
            arrays[spec.name] = np.asarray(values, dtype=np.bool_)
        elif spec.dtype is DataType.DATE:
            try:
                out = np.asarray(values).astype("datetime64[D]")
            except (TypeError, ValueError) as exc:
                raise _NumpyExtractUnsupported(spec.name) from exc
            if mask is not None:
                out = out.copy()
                out[mask] = np.datetime64("NaT")
            arrays[spec.name] = out
        else:  # STR
            out = np.empty(len(values), dtype=object)
            for i, value in enumerate(values):
                if mask is not None and mask[i]:
                    out[i] = None
                else:
                    out[i] = str(value) if not isinstance(value, str) else value
            arrays[spec.name] = out
    return Table(name, schema, arrays)
