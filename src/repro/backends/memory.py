"""Memory backend: the from-scratch column store behind the Backend seam."""

from __future__ import annotations

from repro.backends.base import Backend, BackendCapabilities
from repro.db.catalog import Catalog
from repro.db.engine import Engine
from repro.db.query import AggregateQuery, GroupingSetsQuery, RowSelectQuery
from repro.db.schema import Schema
from repro.db.table import Table
from repro.sampling.bernoulli import BernoulliSampler
from repro.testing.faults import fault_point
from repro.util.deadline import check_current


class MemoryBackend(Backend):
    """Executes logical queries directly on :class:`repro.db.Engine`.

    Fully supports shared-scan GROUPING SETS, making it the backend where
    the "Combine Multiple Group-bys" optimization shows its true effect —
    verifiable through ``engine.stats`` scan counters.
    """

    name = "memory"
    capabilities = BackendCapabilities(
        grouping_sets=True,
        parallel_queries=True,
        native_var_std=True,
        native_sampling=True,
        zero_copy_extract=True,
        threading_model="shared",
    )

    def __init__(self) -> None:
        super().__init__()
        self.catalog = Catalog()
        self.engine = Engine(self.catalog)

    # -- data management -------------------------------------------------

    def register_table(self, table: Table, replace: bool = False) -> None:
        with self._accounting_lock:
            self.catalog.register(table, replace=replace)
            self._bump_data_version()

    def drop_table(self, name: str) -> None:
        with self._accounting_lock:
            self.catalog.drop(name)
            self._bump_data_version()

    def has_table(self, name: str) -> bool:
        return name in self.catalog

    def table_names(self) -> list[str]:
        return sorted(self.catalog)

    def schema(self, table_name: str) -> Schema:
        return self.catalog.get(table_name).schema

    def row_count(self, table_name: str) -> int:
        return self.catalog.get(table_name).num_rows

    # -- execution --------------------------------------------------------

    def execute(self, query: "AggregateQuery | RowSelectQuery") -> Table:
        # Cancellation checkpoint: the in-memory engine has no interrupt
        # machinery, so per-query granularity is the cooperation unit.
        check_current()
        fault_point("backend.execute")
        self._require_table(query.table)
        # seedb-lint: disable=counter-accounting -- counted inside the query engine (engine.stats); queries_executed reads it
        result = self.engine.execute(query)
        assert isinstance(result, Table)
        return result

    def execute_grouping_sets(self, query: GroupingSetsQuery) -> list[Table]:
        check_current()
        fault_point("backend.execute")
        self._require_table(query.table)
        return self.engine.execute_grouping_sets(query)

    # -- support services ---------------------------------------------------

    def fetch_table(self, name: str, max_rows: "int | None" = None) -> Table:
        table = self.catalog.get(name)
        if max_rows is not None and table.num_rows > max_rows:
            return table.head(max_rows)
        return table

    def create_sample(
        self, source: str, sample_name: str, fraction: float, seed: int = 0
    ) -> str:
        table = self.catalog.get(source)
        sampler = BernoulliSampler(fraction)
        sample = sampler.sample(table, seed=seed).rename(sample_name)
        self.catalog.register(sample, replace=True)
        return sample_name

    def register_derived(self, table: Table) -> None:
        with self._accounting_lock:
            self.catalog.register(table, replace=True)

    # -- accounting --------------------------------------------------------

    @property
    def queries_executed(self) -> int:
        # Counted inside the query engine (under its stats lock) rather
        # than through Backend._record_queries — same exactness guarantee.
        return self.engine.stats.queries

    @property
    def statements_executed(self) -> int:
        # Every logical query is one engine call: the counters coincide.
        return self.engine.stats.queries

    def reset_counters(self) -> None:
        self.engine.stats.reset()
        super().reset_counters()  # the base metadata-query counter

    def __repr__(self) -> str:
        return f"MemoryBackend(tables={len(self.catalog)})"
