"""Backend registration by URI.

One string names a backend everywhere a backend can be chosen — the CLI
(``--backend duckdb:///file.db``), ``seedb serve``, and
:meth:`repro.service.SeeDBService.register_backend_uri`:

* ``memory`` — the in-process column store.
* ``sqlite`` — stdlib sqlite3 on a temp file (removed on close).
* ``sqlite:///relative.db`` / ``sqlite:////abs/path.db`` — file-backed
  sqlite (SQLAlchemy slash convention: three slashes relative, four
  absolute).
* ``duckdb`` — in-memory DuckDB (optional extra).
* ``duckdb:///file.db`` — file-backed DuckDB.

New schemes plug in via :func:`register_backend_scheme`, keeping the
frontends closed for modification: they only ever parse URIs.
"""

from __future__ import annotations

from typing import Callable

from repro.backends.base import Backend
from repro.util.errors import BackendError


def _make_memory(path: "str | None") -> Backend:
    from repro.backends.memory import MemoryBackend

    if path:
        raise BackendError("the memory backend takes no path")
    return MemoryBackend()


def _make_sqlite(path: "str | None") -> Backend:
    from repro.backends.sqlite import SqliteBackend

    return SqliteBackend(path=path or None)


def _make_duckdb(path: "str | None") -> Backend:
    from repro.backends.duckdb import DuckDbBackend

    return DuckDbBackend(path=path or None)


_FACTORIES: "dict[str, Callable[[str | None], Backend]]" = {
    "memory": _make_memory,
    "sqlite": _make_sqlite,
    "duckdb": _make_duckdb,
}


def register_backend_scheme(
    scheme: str, factory: "Callable[[str | None], Backend]"
) -> None:
    """Register a custom ``scheme`` -> backend factory (``factory(path)``)."""
    if not scheme or not scheme.isidentifier():
        raise BackendError(f"backend scheme must be an identifier, got {scheme!r}")
    _FACTORIES[scheme] = factory


def available_backend_schemes() -> list[str]:
    """Registered scheme names, sorted."""
    return sorted(_FACTORIES)


def parse_backend_uri(uri: str) -> tuple[str, "str | None"]:
    """Split a backend URI into ``(scheme, path)``.

    A bare name (``sqlite``) has no path. ``scheme://`` paths follow the
    SQLAlchemy convention: ``scheme:///file.db`` is the relative path
    ``file.db``; ``scheme:////abs/file.db`` is absolute.
    """
    if not uri:
        raise BackendError("empty backend URI")
    scheme, separator, rest = uri.partition("://")
    if not separator:
        return uri, None
    if not scheme:
        raise BackendError(f"backend URI {uri!r} has no scheme")
    if rest.startswith("/"):
        rest = rest[1:]
    return scheme, rest or None


def backend_from_uri(uri: str) -> Backend:
    """Construct the backend a URI names.

    Raises :class:`BackendError` for unknown schemes (listing the known
    ones) and propagates a clear error when an optional backend's package
    is missing.
    """
    scheme, path = parse_backend_uri(uri)
    factory = _FACTORIES.get(scheme)
    if factory is None:
        raise BackendError(
            f"unknown backend {scheme!r}; known schemes: "
            + ", ".join(available_backend_schemes())
        )
    return factory(path)
