"""SQL generation: render logical queries to SQL text.

Targets the SQLite dialect but sticks to vanilla SQL-92 for everything
except VAR/STD (emulated arithmetically) so the generated text would run on
PostgreSQL/MySQL too. Identifiers are double-quoted and literals escaped
here, never by string interpolation at call sites.
"""

from __future__ import annotations

from datetime import date
from typing import Any

import numpy as np

from repro.db.aggregates import Aggregate
from repro.db.expressions import (
    And,
    Between,
    Comparison,
    Expression,
    In,
    Not,
    Or,
    TruePredicate,
)
from repro.db.query import (
    AggregateQuery,
    FlagColumn,
    GroupingKey,
    GroupingSetsQuery,
    RowSelectQuery,
    grouping_key_name,
)
from repro.util.errors import QueryError


def quote_identifier(name: str) -> str:
    """Double-quote an identifier, doubling embedded quotes."""
    return '"' + name.replace('"', '""') + '"'


def render_literal(value: Any) -> str:
    """Render a Python/numpy scalar as a SQL literal."""
    if isinstance(value, np.generic):
        value = value.item()
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, (int, float)):
        if isinstance(value, float) and value != value:
            raise QueryError("cannot render NaN as a SQL literal")
        return repr(value)
    if isinstance(value, np.datetime64):
        return "'" + str(value) + "'"
    if isinstance(value, date):
        return "'" + value.isoformat() + "'"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    raise QueryError(f"cannot render literal of type {type(value).__name__}")


def render_expression(expression: Expression) -> str:
    """Render a predicate AST to a SQL boolean expression."""
    if isinstance(expression, TruePredicate):
        return "1=1"
    if isinstance(expression, Comparison):
        column = quote_identifier(expression.column.name)
        literal = render_literal(expression.literal.value)
        operator = "<>" if expression.op == "!=" else expression.op
        return f"{column} {operator} {literal}"
    if isinstance(expression, In):
        column = quote_identifier(expression.column.name)
        if not expression.values:
            return "1=0"
        rendered = ", ".join(render_literal(v) for v in expression.values)
        return f"{column} IN ({rendered})"
    if isinstance(expression, Between):
        column = quote_identifier(expression.column.name)
        low = render_literal(expression.low)
        high = render_literal(expression.high)
        return f"{column} BETWEEN {low} AND {high}"
    if isinstance(expression, And):
        return "(" + " AND ".join(render_expression(op) for op in expression.operands) + ")"
    if isinstance(expression, Or):
        return "(" + " OR ".join(render_expression(op) for op in expression.operands) + ")"
    if isinstance(expression, Not):
        return "NOT (" + render_expression(expression.operand) + ")"
    raise QueryError(f"cannot render expression type {type(expression).__name__}")


def render_aggregate(aggregate: Aggregate, native_var_std: bool = False) -> str:
    """Render one SELECT-list aggregate with its alias.

    VAR/STD have no standard SQL form; unless the dialect provides them
    natively they are emulated with AVG arithmetic (population variance)
    and a ``sqrt`` function the backend must supply.
    """
    alias = quote_identifier(aggregate.alias)
    if aggregate.column is None:
        return f"COUNT(*) AS {alias}"
    column = quote_identifier(aggregate.column)
    if aggregate.func in ("sum", "avg", "min", "max"):
        return f"{aggregate.func.upper()}({column}) AS {alias}"
    if aggregate.func == "countv":
        return f"COUNT({column}) AS {alias}"
    if aggregate.func == "sumsq":
        return f"SUM({column} * {column}) AS {alias}"
    if aggregate.func in ("var", "std"):
        if native_var_std:
            native = {"var": "VAR_POP", "std": "STDDEV_POP"}[aggregate.func]
            return f"{native}({column}) AS {alias}"
        variance = (
            f"AVG(({column}) * ({column})) - AVG({column}) * AVG({column})"
        )
        if aggregate.func == "var":
            return f"{variance} AS {alias}"
        return f"sqrt(MAX({variance}, 0)) AS {alias}"
    raise QueryError(f"cannot render aggregate {aggregate.func!r} to SQL")


def render_grouping_key(key: GroupingKey) -> tuple[str, str]:
    """Render one group-by key; returns (select_item, group_by_expression)."""
    if isinstance(key, FlagColumn):
        case = f"CASE WHEN {render_expression(key.predicate)} THEN 1 ELSE 0 END"
        return f"{case} AS {quote_identifier(key.name)}", case
    quoted = quote_identifier(key)
    return quoted, quoted


def render_aggregate_query(
    query: AggregateQuery, native_var_std: bool = False
) -> str:
    """Full SELECT for an aggregate view query, deterministically ordered."""
    select_items: list[str] = []
    group_expressions: list[str] = []
    for key in query.group_by:
        select_item, group_expression = render_grouping_key(key)
        select_items.append(select_item)
        group_expressions.append(group_expression)
    for aggregate in query.aggregates:
        select_items.append(render_aggregate(aggregate, native_var_std))

    sql = f"SELECT {', '.join(select_items)} FROM {quote_identifier(query.table)}"
    if query.predicate is not None:
        sql += f" WHERE {render_expression(query.predicate)}"
    if group_expressions:
        # Ordinal references (GROUP BY 1, 2) avoid re-evaluating flag CASE
        # expressions per clause; supported by SQLite and PostgreSQL alike.
        ordinals = ", ".join(str(i + 1) for i in range(len(group_expressions)))
        sql += f" GROUP BY {ordinals} ORDER BY {ordinals}"
    return sql


def render_grouping_sets_union(
    query: GroupingSetsQuery,
    native_var_std: bool = False,
    set_column: str = "__seedb_set",
) -> str:
    """One UNION ALL statement emulating GROUPING SETS on dialects without it.

    Every grouping set becomes one SELECT arm sharing the table scan plan's
    round trip: the arm carries its set ordinal in ``set_column``, its own
    grouping keys in their union-wide columns, and NULL for keys belonging
    to other sets (the same row layout native GROUPING SETS produces).
    Rows are ordered by set then key so each set's slice is contiguous.
    """
    union_keys: list[GroupingKey] = []
    seen: set[str] = set()
    for key_set in query.sets:
        for key in key_set:
            name = grouping_key_name(key)
            if name not in seen:
                seen.add(name)
                union_keys.append(key)

    arms: list[str] = []
    for set_index, key_set in enumerate(query.sets):
        own = {grouping_key_name(key): key for key in key_set}
        select_items = [f"{set_index} AS {quote_identifier(set_column)}"]
        group_ordinals: list[int] = []
        for union_position, union_key in enumerate(union_keys):
            name = grouping_key_name(union_key)
            key = own.get(name)
            if key is None:
                select_items.append(f"NULL AS {quote_identifier(name)}")
            else:
                select_item, _group_expression = render_grouping_key(key)
                select_items.append(select_item)
                # Ordinal references (1-based; position 1 is the set column)
                # avoid re-evaluating flag CASE expressions per clause.
                group_ordinals.append(union_position + 2)
        for aggregate in query.aggregates:
            select_items.append(render_aggregate(aggregate, native_var_std))
        sql = (
            f"SELECT {', '.join(select_items)} "
            f"FROM {quote_identifier(query.table)}"
        )
        if query.predicate is not None:
            sql += f" WHERE {render_expression(query.predicate)}"
        if group_ordinals:
            sql += " GROUP BY " + ", ".join(str(o) for o in group_ordinals)
        arms.append(sql)

    order = ", ".join(str(i + 1) for i in range(1 + len(union_keys)))
    return " UNION ALL ".join(arms) + f" ORDER BY {order}"


def render_row_select(query: RowSelectQuery) -> str:
    """``SELECT * FROM t [WHERE ...] [LIMIT n]`` for the analyst's query."""
    sql = f"SELECT * FROM {quote_identifier(query.table)}"
    if query.predicate is not None:
        sql += f" WHERE {render_expression(query.predicate)}"
    if query.limit is not None:
        sql += f" LIMIT {int(query.limit)}"
    return sql
