"""SQL generation: render logical queries to SQL text.

Targets the SQLite dialect but sticks to vanilla SQL-92 for everything
except VAR/STD (emulated arithmetically) so the generated text would run on
PostgreSQL/MySQL too. Identifiers are double-quoted and literals escaped
here, never by string interpolation at call sites.
"""

from __future__ import annotations

from datetime import date
from typing import Any

import numpy as np

from repro.db.aggregates import Aggregate
from repro.db.expressions import (
    And,
    Between,
    Comparison,
    Expression,
    In,
    Not,
    Or,
    TruePredicate,
)
from repro.db.query import (
    AggregateQuery,
    FlagColumn,
    GroupingKey,
    GroupingSetsQuery,
    RowSelectQuery,
    grouping_key_name,
)
from repro.util.errors import QueryError


def quote_identifier(name: str) -> str:
    """Double-quote an identifier, doubling embedded quotes."""
    return '"' + name.replace('"', '""') + '"'


def render_literal(value: Any) -> str:
    """Render a Python/numpy scalar as a SQL literal."""
    if isinstance(value, np.generic):
        value = value.item()
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, (int, float)):
        if isinstance(value, float) and value != value:
            raise QueryError("cannot render NaN as a SQL literal")
        return repr(value)
    if isinstance(value, np.datetime64):
        return "'" + str(value) + "'"
    if isinstance(value, date):
        return "'" + value.isoformat() + "'"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    raise QueryError(f"cannot render literal of type {type(value).__name__}")


def render_expression(expression: Expression) -> str:
    """Render a predicate AST to a SQL boolean expression."""
    if isinstance(expression, TruePredicate):
        return "1=1"
    if isinstance(expression, Comparison):
        column = quote_identifier(expression.column.name)
        literal = render_literal(expression.literal.value)
        operator = "<>" if expression.op == "!=" else expression.op
        return f"{column} {operator} {literal}"
    if isinstance(expression, In):
        column = quote_identifier(expression.column.name)
        if not expression.values:
            return "1=0"
        rendered = ", ".join(render_literal(v) for v in expression.values)
        return f"{column} IN ({rendered})"
    if isinstance(expression, Between):
        column = quote_identifier(expression.column.name)
        low = render_literal(expression.low)
        high = render_literal(expression.high)
        return f"{column} BETWEEN {low} AND {high}"
    if isinstance(expression, And):
        return "(" + " AND ".join(render_expression(op) for op in expression.operands) + ")"
    if isinstance(expression, Or):
        return "(" + " OR ".join(render_expression(op) for op in expression.operands) + ")"
    if isinstance(expression, Not):
        return "NOT (" + render_expression(expression.operand) + ")"
    raise QueryError(f"cannot render expression type {type(expression).__name__}")


def render_aggregate(aggregate: Aggregate, native_var_std: bool = False) -> str:
    """Render one SELECT-list aggregate with its alias.

    VAR/STD have no standard SQL form; unless the dialect provides them
    natively they are emulated with AVG arithmetic (population variance)
    and a ``sqrt`` function the backend must supply.
    """
    alias = quote_identifier(aggregate.alias)
    if aggregate.column is None:
        return f"COUNT(*) AS {alias}"
    column = quote_identifier(aggregate.column)
    if aggregate.func in ("sum", "avg", "min", "max"):
        return f"{aggregate.func.upper()}({column}) AS {alias}"
    if aggregate.func == "countv":
        return f"COUNT({column}) AS {alias}"
    if aggregate.func == "sumsq":
        return f"SUM({column} * {column}) AS {alias}"
    if aggregate.func in ("var", "std"):
        if native_var_std:
            native = {"var": "VAR_POP", "std": "STDDEV_POP"}[aggregate.func]
            return f"{native}({column}) AS {alias}"
        variance = (
            f"AVG(({column}) * ({column})) - AVG({column}) * AVG({column})"
        )
        if aggregate.func == "var":
            return f"{variance} AS {alias}"
        return f"sqrt(MAX({variance}, 0)) AS {alias}"
    raise QueryError(f"cannot render aggregate {aggregate.func!r} to SQL")


def render_grouping_key(key: GroupingKey) -> tuple[str, str]:
    """Render one group-by key; returns (select_item, group_by_expression)."""
    if isinstance(key, FlagColumn):
        case = f"CASE WHEN {render_expression(key.predicate)} THEN 1 ELSE 0 END"
        return f"{case} AS {quote_identifier(key.name)}", case
    quoted = quote_identifier(key)
    return quoted, quoted


def render_aggregate_query(
    query: AggregateQuery, native_var_std: bool = False
) -> str:
    """Full SELECT for an aggregate view query, deterministically ordered."""
    select_items: list[str] = []
    group_expressions: list[str] = []
    for key in query.group_by:
        select_item, group_expression = render_grouping_key(key)
        select_items.append(select_item)
        group_expressions.append(group_expression)
    for aggregate in query.aggregates:
        select_items.append(render_aggregate(aggregate, native_var_std))

    sql = f"SELECT {', '.join(select_items)} FROM {quote_identifier(query.table)}"
    if query.predicate is not None:
        sql += f" WHERE {render_expression(query.predicate)}"
    if group_expressions:
        # Ordinal references (GROUP BY 1, 2) avoid re-evaluating flag CASE
        # expressions per clause; supported by SQLite and PostgreSQL alike.
        ordinals = ", ".join(str(i + 1) for i in range(len(group_expressions)))
        sql += f" GROUP BY {ordinals} ORDER BY {ordinals}"
    return sql


def union_grouping_keys(query: GroupingSetsQuery) -> "list[GroupingKey]":
    """The query's grouping keys deduped across sets, in first-seen order.

    This order *is* the combined statement's key-column order — the
    renderers and the backends' result splitting all derive from it, so
    it exists exactly once.
    """
    union_keys: list[GroupingKey] = []
    seen: set[str] = set()
    for key_set in query.sets:
        for key in key_set:
            name = grouping_key_name(key)
            if name not in seen:
                seen.add(name)
                union_keys.append(key)
    return union_keys


def union_key_positions(query: GroupingSetsQuery) -> dict[str, int]:
    """``{key name -> column position}`` within the combined result."""
    return {
        grouping_key_name(key): index
        for index, key in enumerate(union_grouping_keys(query))
    }


def render_grouping_sets_union(
    query: GroupingSetsQuery,
    native_var_std: bool = False,
    set_column: str = "__seedb_set",
) -> str:
    """One UNION ALL statement emulating GROUPING SETS on dialects without it.

    Every grouping set becomes one SELECT arm sharing the table scan plan's
    round trip: the arm carries its set ordinal in ``set_column``, its own
    grouping keys in their union-wide columns (:func:`union_grouping_keys`
    order), and NULL for keys belonging to other sets (the same row layout
    native GROUPING SETS produces). Rows are ordered by set then key so
    each set's slice is contiguous.
    """
    union_keys = union_grouping_keys(query)

    arms: list[str] = []
    for set_index, key_set in enumerate(query.sets):
        own = {grouping_key_name(key): key for key in key_set}
        select_items = [f"{set_index} AS {quote_identifier(set_column)}"]
        group_ordinals: list[int] = []
        for union_position, union_key in enumerate(union_keys):
            name = grouping_key_name(union_key)
            key = own.get(name)
            if key is None:
                select_items.append(f"NULL AS {quote_identifier(name)}")
            else:
                select_item, _group_expression = render_grouping_key(key)
                select_items.append(select_item)
                # Ordinal references (1-based; position 1 is the set column)
                # avoid re-evaluating flag CASE expressions per clause.
                group_ordinals.append(union_position + 2)
        for aggregate in query.aggregates:
            select_items.append(render_aggregate(aggregate, native_var_std))
        sql = (
            f"SELECT {', '.join(select_items)} "
            f"FROM {quote_identifier(query.table)}"
        )
        if query.predicate is not None:
            sql += f" WHERE {render_expression(query.predicate)}"
        if group_ordinals:
            sql += " GROUP BY " + ", ".join(str(o) for o in group_ordinals)
        arms.append(sql)

    order = ", ".join(str(i + 1) for i in range(1 + len(union_keys)))
    return " UNION ALL ".join(arms) + f" ORDER BY {order}"


def render_grouping_sets_native(
    query: GroupingSetsQuery,
    native_var_std: bool = False,
    mask_column: str = "__seedb_grouping",
) -> tuple[str, "list[GroupingKey]", dict[int, int]]:
    """One native ``GROUP BY GROUPING SETS`` statement (PostgreSQL/DuckDB).

    Native grouping sets emit NULL for every key absent from a row's set —
    indistinguishable from a genuine NULL *data* value in that key. The
    standard disambiguator is ``GROUPING(keys...)``: a bitmask whose bits
    are 0 where the key participates in the row's grouping criteria and 1
    where it does not (leftmost argument = most significant bit). Distinct
    sets are distinct key subsets, hence distinct masks.

    Returns ``(sql, union_keys, mask_to_set)``: the statement selects
    ``mask_column`` first, then every union key (in ``union_keys`` order),
    then the aggregates; ``mask_to_set`` maps an observed GROUPING bitmask
    back to the query's set index.
    """
    union_keys = union_grouping_keys(query)

    # The grouping expression of each union key, reused verbatim in the
    # SELECT list, the GROUPING() call, and the grouping sets (expression
    # identity is what GROUPING matches on).
    expressions = {}
    select_items = []
    for key in union_keys:
        select_item, group_expression = render_grouping_key(key)
        expressions[grouping_key_name(key)] = group_expression
        select_items.append(select_item)

    mask_to_set: dict[int, int] = {}
    bits = len(union_keys)
    set_clauses = []
    for set_index, key_set in enumerate(query.sets):
        members = {grouping_key_name(key) for key in key_set}
        mask = 0
        for position, key in enumerate(union_keys):
            if grouping_key_name(key) not in members:
                mask |= 1 << (bits - 1 - position)
        if mask in mask_to_set:
            raise QueryError(
                f"grouping sets {query.sets!r} are not distinct key subsets"
            )
        mask_to_set[mask] = set_index
        set_clauses.append(
            "("
            + ", ".join(
                expressions[grouping_key_name(key)] for key in key_set
            )
            + ")"
        )

    grouping_args = ", ".join(expressions[grouping_key_name(k)] for k in union_keys)
    head = [f"GROUPING({grouping_args}) AS {quote_identifier(mask_column)}"]
    head.extend(select_items)
    head.extend(
        render_aggregate(aggregate, native_var_std) for aggregate in query.aggregates
    )
    sql = f"SELECT {', '.join(head)} FROM {quote_identifier(query.table)}"
    if query.predicate is not None:
        sql += f" WHERE {render_expression(query.predicate)}"
    sql += " GROUP BY GROUPING SETS (" + ", ".join(set_clauses) + ")"
    order = ", ".join(str(i + 1) for i in range(1 + len(union_keys)))
    sql += f" ORDER BY {order}"
    return sql, union_keys, mask_to_set


def split_grouping_rows(
    rows: list, singles, union_positions: dict, set_index_of
) -> "list[list[tuple]]":
    """Split a combined grouping-sets result into per-set projected rows.

    Shared by every SQL backend that executes grouping sets as one
    statement (native or UNION ALL emulation). Each raw row is
    ``(set_tag, union_key_columns..., aggregates...)``;
    ``set_index_of(set_tag)`` names its grouping set (a GROUPING bitmask
    lookup for the native path, the ordinal itself for the emulation).
    The projection keeps, per set, only that set's own key columns — in
    its own key order — followed by every aggregate.
    """
    aggregate_base = 1 + len(union_positions)
    by_set: "list[list[tuple]]" = [[] for _ in singles]
    for row in rows:
        by_set[set_index_of(row[0])].append(row)
    projected: "list[list[tuple]]" = []
    for single, set_rows in zip(singles, by_set):
        take = [1 + union_positions[name] for name in single.key_names]
        take.extend(
            range(aggregate_base, aggregate_base + len(single.aggregates))
        )
        projected.append([tuple(row[i] for i in take) for row in set_rows])
    return projected


def render_row_select(query: RowSelectQuery) -> str:
    """``SELECT * FROM t [WHERE ...] [LIMIT n]`` for the analyst's query."""
    sql = f"SELECT * FROM {quote_identifier(query.table)}"
    if query.predicate is not None:
        sql += f" WHERE {render_expression(query.predicate)}"
    if query.limit is not None:
        sql += f" LIMIT {int(query.limit)}"
    return sql


def render_profile_queries(
    table: str, attributes: "tuple[str, ...]"
) -> "tuple[str, str | None]":
    """The two statements of the backend-pushed statistics pass.

    Statement one is a single full-table aggregate scan producing the row
    count plus per-attribute non-null and distinct counts; statement two
    is one UNION ALL of per-attribute group-size maxima (the skew input).
    Two physical statements total, independent of attribute count — the
    bound the stats-pushdown conformance case asserts. Returns
    ``(summary_sql, skew_sql)``; ``skew_sql`` is None when there are no
    attributes to profile.
    """
    quoted_table = quote_identifier(table)
    select_terms = ["COUNT(*)"]
    for name in attributes:
        quoted = quote_identifier(name)
        select_terms.append(f"COUNT({quoted})")
        select_terms.append(f"COUNT(DISTINCT {quoted})")
    summary_sql = f"SELECT {', '.join(select_terms)} FROM {quoted_table}"
    if not attributes:
        return summary_sql, None
    arms = []
    for name in attributes:
        quoted = quote_identifier(name)
        # NULLs are excluded so the pushed skew matches the client-side
        # fallback (which profiles non-null values only).
        arms.append(
            f"SELECT {render_literal(name)} AS attr, MAX(group_rows) AS max_rows "
            f"FROM (SELECT COUNT(*) AS group_rows FROM {quoted_table} "
            f"WHERE {quoted} IS NOT NULL GROUP BY {quoted}) AS "
            f"{quote_identifier('g_' + name)}"
        )
    skew_sql = " UNION ALL ".join(arms)
    return summary_sql, skew_sql
