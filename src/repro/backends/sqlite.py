"""SQLite backend: SeeDB as a wrapper over a real relational DBMS.

Everything flows through generated SQL (:mod:`repro.backends.sqlgen`):
table loading, view queries, sampling. SQLite lacks GROUPING SETS, so the
capability flag steers the optimizer toward per-set queries or rollup
combining instead — exactly the "depends on the underlying DBMS" behaviour
the paper describes.

Concurrency: SQLite connections must not cross threads, so the backend
keeps one connection per thread (all pointing at one on-disk database
file), which is what makes the parallel-execution optimization (§3.3) safe
to exercise here.
"""

from __future__ import annotations

import math
import os
import sqlite3
import tempfile
import threading
from datetime import date, datetime

import numpy as np

from repro.backends.base import (
    Backend,
    BackendCapabilities,
    aggregate_result_schema,
    profile_from_pushed_rows,
    rows_to_table,
)
from repro.backends.sqlgen import (
    quote_identifier,
    render_aggregate_query,
    render_grouping_sets_union,
    render_profile_queries,
    render_row_select,
    split_grouping_rows,
    union_key_positions,
)
from repro.metadata.calibration import calibration_sidecar_path
from repro.db.query import AggregateQuery, GroupingSetsQuery, RowSelectQuery
from repro.db.schema import Schema
from repro.db.table import Table
from repro.db.types import DataType
from repro.testing.faults import fault_point
from repro.util.deadline import current_token
from repro.util.errors import BackendError

_SQL_TYPES = {
    DataType.INT: "INTEGER",
    DataType.FLOAT: "REAL",
    DataType.STR: "TEXT",
    DataType.BOOL: "INTEGER",
    DataType.DATE: "TEXT",
}

#: Knuth multiplicative hash modulus/multiplier for deterministic sampling.
_HASH_MULTIPLIER = 2654435761
_HASH_MODULUS = 1_000_000


class SqliteBackend(Backend):
    """Backend over stdlib ``sqlite3``."""

    name = "sqlite"
    capabilities = BackendCapabilities(
        grouping_sets=False,
        parallel_queries=True,
        native_var_std=False,
        native_sampling=True,
        zero_copy_extract=False,
        stats_pushdown=True,
        threading_model="connection-per-thread",
    )

    def __init__(self, path: "str | None" = None):
        super().__init__()
        if path is None:
            handle, path = tempfile.mkstemp(prefix="seedb_", suffix=".sqlite")
            os.close(handle)
            self._owns_file = True
        else:
            self._owns_file = False
        self._path = path
        self._local = threading.local()
        self._schemas: dict[str, Schema] = {}
        #: Every connection ever opened, regardless of owning thread.
        #: Short-lived service worker threads abandon their thread-local
        #: connection when they exit; tracking them here is what lets
        #: :meth:`close` release every file handle (connections are opened
        #: with ``check_same_thread=False`` purely so close() may finalize
        #: them cross-thread — each is still *used* by one thread only).
        self._connections: list[sqlite3.Connection] = []
        self._connections_lock = threading.Lock()

    # -- connection management ---------------------------------------------

    def _connection(self) -> sqlite3.Connection:
        connection = getattr(self._local, "connection", None)
        if connection is None:
            connection = sqlite3.connect(self._path, check_same_thread=False)
            connection.create_function("sqrt", 1, _safe_sqrt)
            # Analytics-session pragmas: SeeDB view queries are bulk loads
            # followed by read-heavy aggregate scans, so durability can be
            # traded away wholesale. WAL lets the parallel executor's reader
            # threads proceed under a concurrent load; synchronous=OFF skips
            # fsync on load (the database is rebuilt per session); the 64 MiB
            # page cache keeps the working set of repeated per-view scans
            # resident.
            connection.execute("PRAGMA journal_mode=WAL")
            connection.execute("PRAGMA synchronous=OFF")
            connection.execute("PRAGMA cache_size=-65536")
            connection.execute("PRAGMA temp_store=MEMORY")
            with self._connections_lock:
                self._connections.append(connection)
            self._local.connection = connection
        return connection

    @property
    def open_connections(self) -> int:
        """Connections opened and not yet closed (leak observability)."""
        with self._connections_lock:
            return len(self._connections)

    def close(self) -> None:
        """Close every live connection and delete an owned temp file.

        Connections opened by worker threads that have since exited are
        closed here too — the WAL checkpoint on the final close is what
        keeps the ``-wal``/``-shm`` sidecar cleanup below correct under
        concurrent use.
        """
        with self._connections_lock:
            connections, self._connections = self._connections, []
        for connection in connections:
            try:
                connection.close()
            except sqlite3.Error:  # pragma: no cover - already-dead handle
                pass
        self._local.connection = None
        if self._owns_file and os.path.exists(self._path):
            os.unlink(self._path)
            # WAL mode leaves sidecar files next to the database.
            for suffix in ("-wal", "-shm"):
                sidecar = self._path + suffix
                if os.path.exists(sidecar):
                    os.unlink(sidecar)
            self._owns_file = False

    # -- data management -----------------------------------------------------

    def register_table(self, table: Table, replace: bool = False) -> None:
        if table.name in self._schemas and not replace:
            raise BackendError(
                f"table {table.name!r} already registered (pass replace=True)"
            )
        self._create_and_fill(table)
        with self._accounting_lock:
            self._schemas[table.name] = table.schema
            self._bump_data_version()

    def register_derived(self, table: Table) -> None:
        self._create_and_fill(table)
        with self._accounting_lock:
            self._schemas[table.name] = table.schema

    def _create_and_fill(self, table: Table) -> None:
        connection = self._connection()
        quoted = quote_identifier(table.name)
        column_defs = ", ".join(
            f"{quote_identifier(spec.name)} {_SQL_TYPES[spec.dtype]}"
            for spec in table.schema
        )
        with connection:
            # seedb-lint: disable=counter-accounting -- DDL + bulk load on registration; only view/metadata statements are audited
            connection.execute(f"DROP TABLE IF EXISTS {quoted}")
            connection.execute(f"CREATE TABLE {quoted} ({column_defs})")
            placeholders = ", ".join("?" for _ in table.schema.names)
            connection.executemany(
                f"INSERT INTO {quoted} VALUES ({placeholders})",
                (_encode_row(row) for row in table.iter_rows()),
            )

    def drop_table(self, name: str) -> None:
        self._require_table(name)
        with self._connection() as connection:
            connection.execute(f"DROP TABLE IF EXISTS {quote_identifier(name)}")
        with self._accounting_lock:
            del self._schemas[name]
            self._bump_data_version()

    def has_table(self, name: str) -> bool:
        return name in self._schemas

    def table_names(self) -> list[str]:
        return sorted(self._schemas)

    def schema(self, table_name: str) -> Schema:
        self._require_table(table_name)
        return self._schemas[table_name]

    def row_count(self, table_name: str) -> int:
        self._require_table(table_name)
        self._record_metadata_queries(1)
        cursor = self._connection().execute(
            f"SELECT COUNT(*) FROM {quote_identifier(table_name)}"
        )
        return int(cursor.fetchone()[0])

    # -- execution -------------------------------------------------------------

    def execute(self, query: "AggregateQuery | RowSelectQuery") -> Table:
        self._require_table(query.table)
        if isinstance(query, RowSelectQuery):
            sql = render_row_select(query)
            rows = self._run(sql)
            return self._rows_to_table(
                f"{query.table}_selected", self._schemas[query.table], rows
            )
        sql = render_aggregate_query(query)
        rows = self._run(sql)
        return self._rows_to_table(
            f"{query.table}_view", self._result_schema(query), rows
        )

    def execute_grouping_sets(self, query: GroupingSetsQuery) -> list[Table]:
        # SQLite has no GROUPING SETS; emulate them with one UNION ALL
        # statement (one round trip, one prepared plan) instead of N
        # separate queries. ``queries_executed`` still counts one logical
        # query per set so optimizer benchmarks stay comparable.
        singles = query.as_single_queries()
        if len(singles) == 1:
            return [self.execute(singles[0])]
        self._require_table(query.table)
        sql = render_grouping_sets_union(query)
        rows = self._run(sql, logical_queries=len(singles))
        per_set = split_grouping_rows(
            rows, singles, union_key_positions(query), int
        )
        return [
            self._rows_to_table(
                f"{query.table}_view", self._result_schema(single), set_rows
            )
            for single, set_rows in zip(singles, per_set)
        ]

    # -- support services ---------------------------------------------------------

    def fetch_table(self, name: str, max_rows: "int | None" = None) -> Table:
        self._require_table(name)
        sql = f"SELECT * FROM {quote_identifier(name)}"
        if max_rows is not None:
            sql += f" LIMIT {int(max_rows)}"
        rows = self._run(sql)
        return self._rows_to_table(name, self._schemas[name], rows)

    def create_sample(
        self, source: str, sample_name: str, fraction: float, seed: int = 0
    ) -> str:
        self._require_table(source)
        if not (0.0 < fraction <= 1.0):
            raise BackendError(f"sample fraction must be in (0, 1], got {fraction}")
        threshold = int(fraction * _HASH_MODULUS)
        quoted_source = quote_identifier(source)
        quoted_sample = quote_identifier(sample_name)
        with self._connection() as connection:
            connection.execute(f"DROP TABLE IF EXISTS {quoted_sample}")
            connection.execute(
                f"CREATE TABLE {quoted_sample} AS SELECT * FROM {quoted_source} "
                f"WHERE ((rowid * {_HASH_MULTIPLIER} + {int(seed)}) "
                f"% {_HASH_MODULUS}) < {threshold}"
            )
        self._schemas[sample_name] = self._schemas[source]
        return sample_name

    def collect_statistics_pushdown(
        self, table_name: str, attributes: "tuple[str, ...] | None" = None
    ):
        """The two-statement aggregate statistics pass, fully in SQLite.

        No base-table rows cross the wire and ``data_version`` is
        untouched; both statements count as metadata queries, never as
        logical view queries.
        """
        self._require_table(table_name)
        names = self._resolve_profile_attributes(table_name, attributes)
        summary_sql, skew_sql = render_profile_queries(table_name, names)
        summary_row = self._metadata_sql(summary_sql)[0]
        skew_rows = self._metadata_sql(skew_sql) if skew_sql is not None else []
        return profile_from_pushed_rows(table_name, names, summary_row, skew_rows)

    @property
    def calibration_path(self) -> "str | None":
        """Where cost-model calibration may persist: beside a user-owned
        database file, never beside an owned temp file (which close()
        deletes — a sidecar would outlive its database)."""
        if self._owns_file:
            return None
        return calibration_sidecar_path(self._path)

    # -- internals --------------------------------------------------------------------

    def _metadata_sql(self, sql: str) -> list[tuple]:
        """Run one counted *metadata* statement (statistics collection)."""
        self._record_metadata_queries(1)
        try:
            return self._connection().execute(sql).fetchall()
        except sqlite3.Error as exc:
            raise BackendError(f"sqlite error for SQL {sql!r}: {exc}") from exc

    def _run(self, sql: str, logical_queries: int = 1) -> list[tuple]:
        # A UNION ALL batch is one round trip but several logical view
        # queries; the counter tracks the latter (the unit the paper's
        # combining optimizations minimize).
        self._record_queries(logical_queries)
        fault_point("backend.execute")
        connection = self._connection()
        token = current_token()
        if token is not None:
            # Cooperative cancellation: the progress handler fires every N
            # VM opcodes; a nonzero return interrupts the statement, which
            # surfaces as OperationalError("interrupted") below.
            token.check()
            connection.set_progress_handler(
                lambda: 1 if token.should_stop() else 0, 4000
            )
        try:
            cursor = connection.execute(sql)
            return cursor.fetchall()
        except sqlite3.Error as exc:
            if token is not None:
                error = token.error()
                if error is not None and "interrupt" in str(exc).lower():
                    raise error from exc
            raise BackendError(f"sqlite error for SQL {sql!r}: {exc}") from exc
        finally:
            if token is not None:
                connection.set_progress_handler(None, 0)

    def _result_schema(self, query: AggregateQuery) -> Schema:
        return aggregate_result_schema(self._schemas[query.table], query)

    @staticmethod
    def _rows_to_table(name: str, schema: Schema, rows: list[tuple]) -> Table:
        return rows_to_table(name, schema, rows)

    def __repr__(self) -> str:
        return f"SqliteBackend(path={self._path!r}, tables={len(self._schemas)})"


def _safe_sqrt(value: "float | None") -> "float | None":
    if value is None or value < 0:
        return None
    return math.sqrt(value)


def _encode_row(row: tuple) -> tuple:
    """Convert one table row into sqlite-storable values."""
    encoded = []
    for value in row:
        if isinstance(value, np.generic):
            value = value.item()
        if isinstance(value, np.datetime64):
            encoded.append(str(value))
        elif isinstance(value, (datetime, date)):
            encoded.append(value.isoformat()[:10])
        elif isinstance(value, bool):
            encoded.append(int(value))
        elif isinstance(value, float) and value != value:  # NaN -> NULL
            encoded.append(None)
        else:
            encoded.append(value)
    return tuple(encoded)


