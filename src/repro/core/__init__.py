"""SeeDB core: the paper's primary contribution.

Given an analyst query ``Q`` over a table, enumerate all candidate views
``(a, m, f)`` (§2), prune unpromising ones, execute the surviving target and
comparison view queries through the optimizer, score each view's deviation
with a distance metric, and return the top-k (Problem 2.1).

Public entry point: :class:`~repro.core.recommender.SeeDB`.
"""

from repro.core.view import ViewSpec, RawViewData, ScoredView
from repro.core.space import (
    enumerate_views,
    split_predicate_dimensions,
    view_space_size,
)
from repro.core.config import SeeDBConfig, GroupByCombining
from repro.core.result import RecommendationResult
from repro.core.recommender import SeeDB
from repro.core.basic import BasicFramework
from repro.core.incremental import IncrementalRecommender, IncrementalResult
from repro.core.multiview import (
    MultiViewRecommender,
    MultiViewSpec,
    enumerate_multi_views,
)

__all__ = [
    "ViewSpec",
    "RawViewData",
    "ScoredView",
    "enumerate_views",
    "split_predicate_dimensions",
    "view_space_size",
    "SeeDBConfig",
    "GroupByCombining",
    "RecommendationResult",
    "SeeDB",
    "BasicFramework",
    "IncrementalRecommender",
    "IncrementalResult",
    "MultiViewRecommender",
    "MultiViewSpec",
    "enumerate_multi_views",
]
