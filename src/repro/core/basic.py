"""The basic framework: SeeDB without any optimization (§3.3).

"Given a user query Q, the basic approach computes all possible two-column
views ... The target and comparison views corresponding to each view are
then computed and each view query is executed independently on the DBMS."

This is the honest baseline every optimization benchmark compares against:
no pruning, two independent queries per view, sequential execution. It is
implemented directly on the backend (not through the planner) so baseline
measurements cannot accidentally inherit optimizer behaviour.

The entry point is the canonical request API: :meth:`recommend_request`
consumes a :class:`~repro.api.RecommendationRequest` (honoring its
reference spec and view-space filters with independent comparison
queries); the historical ``recommend(query, k)`` signature remains as a
thin adapter that wraps its arguments into an equivalent request.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.backends.base import Backend
from repro.core.config import SeeDBConfig
from repro.core.result import RecommendationResult
from repro.core.space import enumerate_views, split_predicate_dimensions
from repro.core.topk import top_k_views
from repro.core.view import RawViewData
from repro.core.view_processor import ViewProcessor
from repro.db.query import RowSelectQuery
from repro.engine.context import describe_predicate
from repro.metrics.normalize import NormalizationPolicy
from repro.metrics.registry import get_metric
from repro.optimizer.extract import table_series
from repro.util.timing import Stopwatch

if TYPE_CHECKING:
    from repro.api.request import RecommendationRequest


class BasicFramework:
    """Unoptimized view recommendation: one pair of queries per view."""

    def __init__(
        self,
        backend: Backend,
        metric: str = "js",
        normalization: NormalizationPolicy = NormalizationPolicy.SHIFT,
        aggregate_functions: tuple[str, ...] = ("sum", "avg"),
        include_count_views: bool = True,
        exclude_predicate_dimensions: bool = True,
    ):
        self.backend = backend
        self.metric_name = metric
        self.normalization = normalization
        self.processor = ViewProcessor(get_metric(metric), normalization)
        self.aggregate_functions = aggregate_functions
        self.include_count_views = include_count_views
        self.exclude_predicate_dimensions = exclude_predicate_dimensions

    def recommend(
        self,
        query: "RowSelectQuery | RecommendationRequest",
        k: "int | None" = None,
    ) -> RecommendationResult:
        """Deprecation adapter: wrap the positional form into a request.

        An explicitly passed ``k`` overrides the request's own (matching
        :meth:`repro.SeeDB.recommend`); with neither set, 5 applies.
        """
        from repro.api.request import RecommendationRequest

        if isinstance(query, RecommendationRequest):
            return self.recommend_request(query.with_k(k))
        return self.recommend_request(
            RecommendationRequest(target=query, k=k)
        )

    def recommend_request(
        self, request: "RecommendationRequest"
    ) -> RecommendationResult:
        """Score every candidate view with independent queries; return top-k.

        The comparison query of each view filters on the request's
        resolved reference (``None`` for the whole-table default) — the
        basic framework supports every reference kind because its queries
        are never flag-combined.
        """
        from repro.engine.phases import filter_view_space

        query = request.target
        k = request.k if request.k is not None else 5
        reference = request.reference.resolve(query)
        processor = self.processor
        metric_name = self.metric_name
        if request.metric is not None:
            metric_name = request.metric
            processor = ViewProcessor(get_metric(metric_name), self.normalization)
        stopwatch = Stopwatch()
        queries_before = self.backend.queries_executed

        with stopwatch.time("enumerate"):
            schema = self.backend.schema(query.table)
            views = enumerate_views(
                schema,
                functions=self.aggregate_functions,
                include_count=self.include_count_views,
            )
            views = filter_view_space(
                views, request.dimensions, request.measures
            )
            if self.exclude_predicate_dimensions:
                views, _excluded = split_predicate_dimensions(views, query.predicate)

        raw_views: list[RawViewData] = []
        with stopwatch.time("execute"):
            for view in views:
                target_result = self.backend.execute(
                    view.target_query(query.table, query.predicate)
                )
                comparison_result = self.backend.execute(
                    view.comparison_query(query.table, reference.predicate)
                )
                target_keys, target_values = table_series(
                    target_result, view.dimension, view.aggregate.alias
                )
                comparison_keys, comparison_values = table_series(
                    comparison_result, view.dimension, view.aggregate.alias
                )
                raw_views.append(
                    RawViewData(
                        spec=view,
                        target_keys=target_keys,
                        target_values=target_values,
                        comparison_keys=comparison_keys,
                        comparison_values=comparison_values,
                    )
                )

        with stopwatch.time("score"):
            scored = processor.score_all(raw_views)

        with stopwatch.time("select"):
            recommendations = top_k_views(scored.values(), k)

        return RecommendationResult(
            table=query.table,
            predicate_description=describe_predicate(query),
            k=k,
            metric=metric_name,
            recommendations=recommendations,
            all_scored=scored,
            prune_reports=[],
            stopwatch=stopwatch,
            n_candidate_views=len(views),
            n_executed_views=len(views),
            n_queries=self.backend.queries_executed - queries_before,
            plan_description=f"basic framework: {2 * len(views)} independent queries",
            reference_description=reference.describe(),
        )


# Re-export for discoverability alongside SeeDBConfig.BASIC_FRAMEWORK.
__all__ = ["BasicFramework", "SeeDBConfig"]
