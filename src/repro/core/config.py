"""SeeDB configuration: every knob of the demo's Scenario 2.

"Attendees will also be able to select the optimizations that SEEDB
applies and observe the effect on response times and accuracy" (§4). All
of those toggles live here — metric choice, view-space shape, the three
pruning families, the four query-combining/sampling/parallelism
optimizations — with validation so misconfiguration fails loudly at
construction, not mid-recommendation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.metrics.base import DistanceMetric
from repro.metrics.normalize import NormalizationPolicy
from repro.metrics.registry import get_metric
from repro.optimizer.plan import GroupByCombining, PlannerConfig
from repro.pruning.access_frequency import AccessFrequencyPruner
from repro.pruning.correlation import CorrelationPruner
from repro.pruning.pipeline import PruningPipeline
from repro.pruning.variance import CardinalityPruner, VariancePruner
from repro.util.errors import ConfigError


@dataclass
class SeeDBConfig:
    """All SeeDB knobs, grouped by subsystem. Defaults follow the paper's
    descriptions; everything is overridable per recommendation call."""

    # -- problem statement (§2) ----------------------------------------
    #: Distance metric name (see repro.metrics.available_metrics()).
    metric: str = "js"
    #: How many views to recommend (the k of Problem 2.1).
    k: int = 5
    #: Aggregate functions enumerated per (dimension, measure) pair.
    aggregate_functions: tuple[str, ...] = ("sum", "avg")
    #: Also enumerate one count(*) view per dimension.
    include_count_views: bool = True
    #: Drop views grouping by attributes the query predicate constrains
    #: (they deviate maximally by construction and bury real findings).
    exclude_predicate_dimensions: bool = True
    #: Handling of negative/NaN aggregate values during normalization.
    normalization: NormalizationPolicy = NormalizationPolicy.SHIFT
    #: Score views through the columnar batch path (dense per-attribute
    #: blocks + vectorized metrics). Produces bit-for-bit the same scores
    #: as the per-view loop; disable only to benchmark the scalar path.
    batch_scoring: bool = True

    # -- view-space pruning (§3.3) ---------------------------------------
    prune_low_variance: bool = True
    min_entropy_bits: float = 0.05
    prune_cardinality: bool = True
    min_groups: int = 2
    max_groups: "int | None" = 250
    prune_correlated: bool = True
    correlation_threshold: float = 0.9
    prune_rare_access: bool = False
    min_access_frequency: float = 0.1
    access_min_history: int = 10

    # -- query optimization (§3.3) ----------------------------------------
    combine_target_comparison: bool = True
    combine_aggregates: bool = True
    groupby_combining: GroupByCombining = GroupByCombining.NONE
    memory_budget_cells: int = 100_000
    max_dims_per_query: int = 8
    binpack_exact_threshold: int = 12
    #: Resolve ``groupby_combining=AUTO`` by estimated cost (backend-pushed
    #: table statistics + calibrated per-backend coefficients) instead of
    #: the static capability branch. Every candidate plan is equivalence-
    #: preserving, so this only changes *how* views execute, never the
    #: recommendations. False reverts to the declaration-only choice.
    cost_based_planning: bool = True

    # -- sampling (§3.3) ----------------------------------------------------
    #: None disables sampling; otherwise run view queries on a materialized
    #: sample of this fraction of the base table.
    sample_fraction: "float | None" = None
    sample_seed: int = 7
    #: Tables smaller than this run exact even when sampling is enabled.
    min_rows_for_sampling: int = 10_000
    #: Opt-in adaptive sampling: when set (and ``sample_fraction`` is not),
    #: the planner picks the smallest candidate fraction whose sampled size
    #: keeps the Hoeffding ε within this budget. None keeps execution exact
    #: unless ``sample_fraction`` forces otherwise — sampling changes
    #: utilities, so it is never chosen silently.
    auto_sample_epsilon: "float | None" = None

    # -- parallelism (§3.3) ----------------------------------------------------
    n_workers: int = 1
    #: Opt-in calibrated parallelism: let the cost-based planner *lower*
    #: the effective worker count (down to sequential) when the predicted
    #: per-step work cannot amortize worker dispatch overhead. Off by
    #: default — ``n_workers`` alone stays authoritative.
    auto_parallelism: bool = False

    # -- metadata ---------------------------------------------------------------
    #: Row cap when materializing a table for metadata collection.
    metadata_max_rows: int = 200_000

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ConfigError(f"k must be >= 1, got {self.k}")
        if not self.aggregate_functions and not self.include_count_views:
            raise ConfigError("no view aggregates configured")
        if self.sample_fraction is not None and not (0.0 < self.sample_fraction <= 1.0):
            raise ConfigError(
                f"sample_fraction must be in (0, 1], got {self.sample_fraction}"
            )
        if self.auto_sample_epsilon is not None and self.auto_sample_epsilon <= 0:
            raise ConfigError(
                f"auto_sample_epsilon must be > 0, got {self.auto_sample_epsilon}"
            )
        if self.n_workers < 1:
            raise ConfigError(f"n_workers must be >= 1, got {self.n_workers}")
        if self.metadata_max_rows < 1:
            raise ConfigError("metadata_max_rows must be >= 1")
        get_metric(self.metric)  # fail fast on unknown metric names

    # -- derived objects ---------------------------------------------------

    def resolve_metric(self) -> DistanceMetric:
        """The configured :class:`DistanceMetric` instance."""
        return get_metric(self.metric)

    def planner_config(self) -> PlannerConfig:
        """The optimizer's slice of this configuration."""
        return PlannerConfig(
            combine_target_comparison=self.combine_target_comparison,
            combine_aggregates=self.combine_aggregates,
            groupby_combining=self.groupby_combining,
            memory_budget_cells=self.memory_budget_cells,
            max_dims_per_query=self.max_dims_per_query,
            binpack_exact_threshold=self.binpack_exact_threshold,
        )

    def pruning_pipeline(self) -> PruningPipeline:
        """The configured pruning rules, cheap checks first."""
        rules = []
        if self.prune_low_variance:
            rules.append(VariancePruner(min_entropy_bits=self.min_entropy_bits))
        if self.prune_cardinality:
            rules.append(
                CardinalityPruner(min_groups=self.min_groups, max_groups=self.max_groups)
            )
        if self.prune_correlated:
            rules.append(CorrelationPruner(threshold=self.correlation_threshold))
        if self.prune_rare_access:
            rules.append(
                AccessFrequencyPruner(
                    min_frequency=self.min_access_frequency,
                    min_history=self.access_min_history,
                )
            )
        return PruningPipeline(rules)

    def with_overrides(self, **overrides) -> "SeeDBConfig":
        """A copy with the given fields replaced (validation re-runs)."""
        return replace(self, **overrides)


#: Configuration matching the paper's *basic framework* (§3.3): no pruning,
#: no combining, no sampling, sequential execution.
BASIC_FRAMEWORK = SeeDBConfig(
    prune_low_variance=False,
    prune_cardinality=False,
    prune_correlated=False,
    prune_rare_access=False,
    combine_target_comparison=False,
    combine_aggregates=False,
    groupby_combining=GroupByCombining.NONE,
    cost_based_planning=False,
    sample_fraction=None,
    n_workers=1,
)
