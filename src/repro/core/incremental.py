"""Incremental execution with confidence-based early termination.

The demo paper's challenge (d): "since analysis must happen in real-time,
we must trade-off accuracy of visualizations or estimation of
'interestingness' for reduced latency" (§1). The companion full system
realizes this with *phased* execution: the table is split into partitions,
view queries run one partition at a time, running utility estimates are
maintained, and views whose optimistic utility bound cannot reach the
current top-k are dropped before they consume further work.

This module reproduces that scheme on top of the same aggregation
machinery as the main recommender:

* partitions are interleaved row slices (row ``i`` belongs to phase
  ``i mod n_phases``), so each phase is an unbiased sample of the table;
* per-view state is the accumulated *distributive auxiliary aggregates*
  (the same mergeable decomposition the optimizer uses), so estimates
  after phase ``m`` equal the exact computation over the first ``m``
  partitions;
* pruning uses Hoeffding-style confidence intervals on the utility
  estimate: view ``V`` is dropped after phase ``m`` when
  ``u_m(V) + ε_m < L`` where ``L`` is the k-th largest lower bound
  ``u_m(·) − ε_m`` and ``ε_m = sqrt(ln(2/δ) / (2m))`` — valid for metrics
  bounded in [0, 1] (js, total_variation, maxdev, chisquare, normalized
  emd).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.topk import top_k_views
from repro.db.aggregates import Aggregate
from repro.db.catalog import Catalog
from repro.db.engine import Engine
from repro.db.expressions import Expression, TruePredicate
from repro.db.query import AggregateQuery, FlagColumn
from repro.db.table import Table
from repro.metrics.base import DistanceMetric
from repro.metrics.normalize import (
    NormalizationPolicy,
    align_series,
    canonical_key,
    normalize_distribution,
)
from repro.metrics.registry import get_metric
from repro.model.view import ScoredView, ViewSpec
from repro.optimizer.combine import dedup_aggregates, merge_spec
from repro.optimizer.extract import FLAG_NAME
from repro.util.errors import ConfigError

#: Metrics whose values are bounded in [0, 1], the precondition for the
#: Hoeffding-style pruning bound.
BOUNDED_METRICS = frozenset(
    {"js", "total_variation", "maxdev", "chisquare", "emd", "hellinger"}
)

#: Accumulation mode per auxiliary aggregate function.
_ACCUMULATE_ADD = frozenset({"sum", "count", "countv", "sumsq"})


@dataclass
class IncrementalResult:
    """Outcome of one incremental recommendation run."""

    recommendations: list[ScoredView]
    #: Final utility estimate of every view still alive at the end.
    utilities: dict[ViewSpec, float]
    #: Views dropped early: spec -> phase index at which they were pruned.
    pruned_at_phase: dict[ViewSpec, int]
    #: Phases actually executed (may stop early when only k views remain).
    phases_executed: int
    n_phases: int
    #: (view, phase) executions performed / the exhaustive count.
    work_done: int
    work_possible: int

    @property
    def work_saved_fraction(self) -> float:
        """Fraction of per-view phase executions skipped by pruning."""
        if self.work_possible == 0:
            return 0.0
        return 1.0 - self.work_done / self.work_possible


@dataclass
class _DimensionState:
    """Accumulated per-(flag, group) aux values for one dimension."""

    aux: tuple[Aggregate, ...]
    #: (flag, group_key) -> {alias: value}
    cells: dict[tuple[int, Any], dict[str, float]] = field(default_factory=dict)

    def absorb(self, result: Table, dimension: str) -> None:
        """Merge one phase's flag-combined result into the running state."""
        flags = np.asarray(result.column(FLAG_NAME))
        keys = result.column(dimension)
        columns = {a.alias: result.column(a.alias) for a in self.aux}
        for i in range(result.num_rows):
            cell_key = (int(flags[i]), canonical_key(keys[i]))
            cell = self.cells.get(cell_key)
            if cell is None:
                self.cells[cell_key] = {
                    a.alias: float(columns[a.alias][i]) for a in self.aux
                }
                continue
            for aggregate in self.aux:
                value = float(columns[aggregate.alias][i])
                if aggregate.func in _ACCUMULATE_ADD:
                    if not math.isnan(value):
                        cell[aggregate.alias] += value
                elif aggregate.func == "min":
                    cell[aggregate.alias] = _fmin(cell[aggregate.alias], value)
                else:  # max
                    cell[aggregate.alias] = _fmax(cell[aggregate.alias], value)

    def series(self, view: ViewSpec) -> tuple[list, np.ndarray, list, np.ndarray]:
        """(target_keys, target_values, comparison_keys, comparison_values)
        reconstructed from the accumulated state."""
        spec = merge_spec(view.aggregate)
        target_keys = sorted(
            {key for flag, key in self.cells if flag == 1},
            key=lambda k: (type(k).__name__, k),
        )
        all_keys = sorted(
            {key for _flag, key in self.cells},
            key=lambda k: (type(k).__name__, k),
        )

        def values_for(keys, flags):
            arrays = {}
            for aggregate in self.aux:
                fill = 0.0 if aggregate.func in _ACCUMULATE_ADD else float("nan")
                column = []
                for key in keys:
                    merged = None
                    for flag in flags:
                        cell = self.cells.get((flag, key))
                        if cell is None:
                            continue
                        value = cell[aggregate.alias]
                        if merged is None:
                            merged = value
                        elif aggregate.func in _ACCUMULATE_ADD:
                            merged += value
                        elif aggregate.func == "min":
                            merged = _fmin(merged, value)
                        else:
                            merged = _fmax(merged, value)
                    column.append(fill if merged is None else merged)
                arrays[aggregate.alias] = np.array(column, dtype=np.float64)
            return spec.reconstruct(arrays)

        return (
            target_keys,
            values_for(target_keys, (1,)),
            all_keys,
            values_for(all_keys, (0, 1)),
        )


def _fmin(a: float, b: float) -> float:
    if math.isnan(a):
        return b
    if math.isnan(b):
        return a
    return min(a, b)


def _fmax(a: float, b: float) -> float:
    if math.isnan(a):
        return b
    if math.isnan(b):
        return a
    return max(a, b)


class IncrementalRecommender:
    """Phase-at-a-time recommendation with early view pruning.

    Operates on an in-memory :class:`Table` (obtain one from any backend
    via ``backend.fetch_table(name)``); partitioning strategy and pruning
    are backend-independent by construction.
    """

    def __init__(
        self,
        table: Table,
        metric: "str | DistanceMetric" = "js",
        normalization: NormalizationPolicy = NormalizationPolicy.SHIFT,
    ):
        self.table = table
        self.metric = get_metric(metric)
        if self.metric.name not in BOUNDED_METRICS:
            raise ConfigError(
                f"incremental pruning needs a [0,1]-bounded metric; "
                f"{self.metric.name!r} is not (use one of "
                f"{sorted(BOUNDED_METRICS)})"
            )
        self.normalization = normalization

    def recommend(
        self,
        predicate: "Expression | None",
        views: list[ViewSpec],
        k: int = 5,
        n_phases: int = 10,
        delta: float = 0.05,
        min_phases_before_pruning: int = 2,
        epsilon_scale: float = 0.25,
    ) -> IncrementalResult:
        """Run up to ``n_phases`` phases, pruning hopeless views between them.

        ``delta`` is the per-comparison failure probability of the
        Hoeffding bound; smaller = more conservative pruning.
        ``epsilon_scale`` tightens the worst-case Hoeffding radius by a
        constant factor: utility estimates over interleaved partitions
        concentrate far faster than the distribution-free bound allows
        (each phase is itself an aggregate over thousands of rows, not one
        sample), so the raw bound almost never prunes. The default 0.25 is
        an empirical calibration — set it to 1.0 for the fully
        conservative behaviour, 0 to disable the radius entirely
        (aggressive, estimate-only pruning).
        """
        if n_phases < 1:
            raise ConfigError("n_phases must be >= 1")
        if not (0.0 < delta < 1.0):
            raise ConfigError("delta must be in (0, 1)")
        if epsilon_scale < 0:
            raise ConfigError("epsilon_scale must be >= 0")
        if not views:
            return IncrementalResult([], {}, {}, 0, n_phases, 0, 0)

        flag_predicate = predicate if predicate is not None else TruePredicate()
        groups: dict[str, list[ViewSpec]] = {}
        for view in views:
            groups.setdefault(view.dimension, []).append(view)
        states = {
            dimension: _DimensionState(
                aux=dedup_aggregates(
                    [a for v in members for a in merge_spec(v.aggregate).aux]
                )
            )
            for dimension, members in groups.items()
        }

        alive: set[ViewSpec] = set(views)
        pruned_at: dict[ViewSpec, int] = {}
        utilities: dict[ViewSpec, float] = {}
        work_done = 0
        phases_executed = 0

        phase_indices = self._phase_slices(n_phases)
        for phase, indices in enumerate(phase_indices):
            active_dimensions = {v.dimension for v in alive}
            if not active_dimensions:
                break
            partition = self.table.take(indices, name="__phase")
            catalog = Catalog()
            catalog.register(partition)
            engine = Engine(catalog)
            flag = FlagColumn(FLAG_NAME, flag_predicate)
            for dimension in sorted(active_dimensions):
                state = states[dimension]
                result = engine.execute(
                    AggregateQuery("__phase", (flag, dimension), state.aux, None)
                )
                assert isinstance(result, Table)
                state.absorb(result, dimension)
                work_done += sum(
                    1 for v in groups[dimension] if v in alive
                )
            phases_executed = phase + 1

            # Re-estimate utilities for alive views.
            for view in list(alive):
                utilities[view] = self._estimate(states[view.dimension], view)

            # Hoeffding-style pruning once enough phases accumulated.
            if (
                phases_executed >= min_phases_before_pruning
                and phases_executed < n_phases
                and len(alive) > k
            ):
                epsilon = epsilon_scale * math.sqrt(
                    math.log(2.0 / delta) / (2.0 * phases_executed)
                )
                lower_bounds = sorted(
                    (utilities[view] - epsilon for view in alive), reverse=True
                )
                threshold = lower_bounds[k - 1] if len(lower_bounds) >= k else -1.0
                for view in list(alive):
                    if utilities[view] + epsilon < threshold:
                        alive.discard(view)
                        pruned_at[view] = phases_executed
            if len(alive) <= k:
                # Only k candidates left: finish their exact answer by
                # continuing phases, but no pruning decisions remain.
                continue

        scored = [
            self._scored(states[view.dimension], view, utilities[view])
            for view in alive
        ]
        return IncrementalResult(
            recommendations=top_k_views(scored, k),
            utilities=utilities,
            pruned_at_phase=pruned_at,
            phases_executed=phases_executed,
            n_phases=n_phases,
            work_done=work_done,
            work_possible=len(views) * n_phases,
        )

    # ------------------------------------------------------------------

    def _phase_slices(self, n_phases: int) -> list[np.ndarray]:
        """Interleaved row partitions (row i -> phase i mod n_phases)."""
        indices = np.arange(self.table.num_rows)
        return [indices[phase::n_phases] for phase in range(n_phases)]

    def _estimate(self, state: _DimensionState, view: ViewSpec) -> float:
        target_keys, target_values, comparison_keys, comparison_values = (
            state.series(view)
        )
        if not comparison_keys:
            return 0.0
        groups, aligned_t, aligned_c = align_series(
            target_keys, target_values, comparison_keys, comparison_values
        )
        if not groups:
            return 0.0
        p = normalize_distribution(aligned_t, self.normalization)
        q = normalize_distribution(aligned_c, self.normalization)
        return self.metric.distance(p, q)

    def _scored(
        self, state: _DimensionState, view: ViewSpec, utility: float
    ) -> ScoredView:
        target_keys, target_values, comparison_keys, comparison_values = (
            state.series(view)
        )
        groups, aligned_t, aligned_c = align_series(
            target_keys, target_values, comparison_keys, comparison_values
        )
        if not groups:
            return ScoredView(
                spec=view,
                utility=0.0,
                groups=[],
                target_distribution=np.empty(0),
                comparison_distribution=np.empty(0),
            )
        return ScoredView(
            spec=view,
            utility=utility,
            groups=groups,
            target_distribution=normalize_distribution(aligned_t, self.normalization),
            comparison_distribution=normalize_distribution(
                aligned_c, self.normalization
            ),
            target_values=aligned_t,
            comparison_values=aligned_c,
        )
