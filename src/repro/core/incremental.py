"""Incremental execution with confidence-based early termination.

The demo paper's challenge (d): "since analysis must happen in real-time,
we must trade-off accuracy of visualizations or estimation of
'interestingness' for reduced latency" (§1). The companion full system
realizes this with *phased* execution: the table is split into partitions,
view queries run one partition at a time, running utility estimates are
maintained, and views whose optimistic utility bound cannot reach the
current top-k are dropped before they consume further work.

The machinery lives in :mod:`repro.engine.incremental` as an alternative
Execute/Score phase pair on the shared
:class:`~repro.engine.ExecutionEngine` — partitioning, Hoeffding pruning,
and mergeable-aggregate accumulation there; alignment, normalization,
scoring, and top-k through the same View Processor and selection phases as
the batch path. This module keeps the stable user-facing API.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.backends.memory import MemoryBackend
from repro.core.config import SeeDBConfig
from repro.db.expressions import Expression
from repro.db.query import RowSelectQuery
from repro.db.table import Table
from repro.engine.engine import ExecutionEngine
from repro.engine.incremental import (
    BOUNDED_METRICS,
    IncrementalScorePhase,
    IncrementalTrace,
    PhasedExecutePhase,
    TRACE_KEY,
)
from repro.engine.phases import SelectPhase
from repro.metrics.base import DistanceMetric
from repro.metrics.normalize import NormalizationPolicy
from repro.metrics.registry import get_metric
from repro.model.view import ScoredView, ViewSpec
from repro.util.errors import ConfigError

__all__ = ["IncrementalRecommender", "IncrementalResult", "BOUNDED_METRICS"]


@dataclass
class IncrementalResult:
    """Outcome of one incremental recommendation run."""

    recommendations: list[ScoredView]
    #: Final utility estimate of every view still alive at the end.
    utilities: dict[ViewSpec, float]
    #: Views dropped early: spec -> phase index at which they were pruned.
    pruned_at_phase: dict[ViewSpec, int]
    #: Phases actually executed (may stop early when only k views remain).
    phases_executed: int
    n_phases: int
    #: (view, phase) executions performed / the exhaustive count.
    work_done: int
    work_possible: int

    @property
    def work_saved_fraction(self) -> float:
        """Fraction of per-view phase executions skipped by pruning."""
        if self.work_possible == 0:
            return 0.0
        return 1.0 - self.work_done / self.work_possible


class IncrementalRecommender:
    """Phase-at-a-time recommendation with early view pruning.

    Operates on an in-memory :class:`Table` (obtain one from any backend
    via ``backend.fetch_table(name)``); partitioning strategy and pruning
    are backend-independent by construction.
    """

    def __init__(
        self,
        table: Table,
        metric: "str | DistanceMetric" = "js",
        normalization: NormalizationPolicy = NormalizationPolicy.SHIFT,
    ):
        self.table = table
        self.metric = get_metric(metric)
        if self.metric.name not in BOUNDED_METRICS:
            raise ConfigError(
                f"incremental pruning needs a [0,1]-bounded metric; "
                f"{self.metric.name!r} is not (use one of "
                f"{sorted(BOUNDED_METRICS)})"
            )
        self.normalization = normalization
        # One session engine, like the other facades. The backend exists
        # only to anchor the ExecutionContext — phased execution reads the
        # in-memory table directly and issues no backend queries.
        backend = MemoryBackend()
        backend.register_table(table)
        self.engine = ExecutionEngine(backend)

    def recommend(
        self,
        predicate: "Expression | None",
        views: list[ViewSpec],
        k: int = 5,
        n_phases: int = 10,
        delta: float = 0.05,
        min_phases_before_pruning: int = 2,
        epsilon_scale: float = 0.25,
    ) -> IncrementalResult:
        """Run up to ``n_phases`` phases, pruning hopeless views between them.

        Deprecation adapter over :meth:`recommend_request`: wraps the
        positional arguments into an equivalent
        :class:`~repro.api.RecommendationRequest` with
        ``strategy="incremental"`` and the phase knobs as options.

        ``delta`` is the per-comparison failure probability of the
        Hoeffding bound; smaller = more conservative pruning.
        ``epsilon_scale`` tightens the worst-case Hoeffding radius by a
        constant factor: utility estimates over interleaved partitions
        concentrate far faster than the distribution-free bound allows
        (each phase is itself an aggregate over thousands of rows, not one
        sample), so the raw bound almost never prunes. The default 0.25 is
        an empirical calibration — set it to 1.0 for the fully
        conservative behaviour, 0 to disable the radius entirely
        (aggressive, estimate-only pruning).
        """
        from repro.api.request import RecommendationRequest

        # Pre-request contract: bad knobs raise ConfigError here, as they
        # always did, before the request layer's ApiError validation runs.
        if n_phases < 1:
            raise ConfigError("n_phases must be >= 1")
        if not (0.0 < delta < 1.0):
            raise ConfigError("delta must be in (0, 1)")
        if epsilon_scale < 0:
            raise ConfigError("epsilon_scale must be >= 0")
        request = RecommendationRequest(
            target=RowSelectQuery(self.table.name, predicate),
            k=k,
            strategy="incremental",
            options={
                "n_phases": n_phases,
                "delta": delta,
                "min_phases_before_pruning": min_phases_before_pruning,
                "epsilon_scale": epsilon_scale,
            },
        )
        return self.recommend_request(request, views)

    def recommend_request(
        self, request: "RecommendationRequest", views: list[ViewSpec]
    ) -> IncrementalResult:
        """Canonical entry point: phased execution of ``views`` for a
        declarative request (reference spec, metric, and incremental
        options honored; the explicit view list takes the place of
        enumeration). Knob values arrive pre-validated — every
        constructible request already enforces the executor's ranges.
        """
        from repro.api.errors import ApiError
        from repro.api.request import INCREMENTAL_OPTION_DEFAULTS

        knobs = dict(INCREMENTAL_OPTION_DEFAULTS)
        knobs.update(
            {
                key: value
                for key, value in request.options.items()
                if key in INCREMENTAL_OPTION_DEFAULTS
            }
        )
        n_phases = knobs["n_phases"]
        delta = knobs["delta"]
        min_phases_before_pruning = knobs["min_phases_before_pruning"]
        epsilon_scale = knobs["epsilon_scale"]
        k = request.k if request.k is not None else 5
        metric = self.metric
        if request.metric is not None:
            metric = get_metric(request.metric)
            if metric.name not in BOUNDED_METRICS:
                raise ApiError(
                    f"incremental pruning needs a [0,1]-bounded metric; "
                    f"{metric.name!r} is not (use one of "
                    f"{sorted(BOUNDED_METRICS)})",
                    code="invalid_value",
                    field="metric",
                )
        if not views:
            return IncrementalResult([], {}, {}, 0, n_phases, 0, 0)

        config = SeeDBConfig(normalization=self.normalization, k=k)
        ctx = self.engine.new_context(
            request.target,
            config,
            k,
            reference=request.reference.resolve(request.target),
        )
        ctx.surviving = list(views)
        # The metric is handed to the phases as an *instance* so custom
        # DistanceMetric objects survive the trip (no registry round trip).
        phases = [
            PhasedExecutePhase(
                table=self.table,
                n_phases=n_phases,
                delta=delta,
                min_phases_before_pruning=min_phases_before_pruning,
                epsilon_scale=epsilon_scale,
                metric=metric,
                normalization=self.normalization,
            ),
            IncrementalScorePhase(
                metric=metric, normalization=self.normalization
            ),
            SelectPhase(),
        ]
        self.engine.run(phases, ctx)
        trace: IncrementalTrace = ctx.extras[TRACE_KEY]
        return IncrementalResult(
            recommendations=ctx.recommendations,
            utilities=dict(trace.utilities),
            pruned_at_phase=dict(trace.pruned_at_phase),
            phases_executed=trace.phases_executed,
            n_phases=trace.n_phases,
            work_done=trace.work_done,
            work_possible=trace.work_possible,
        )
