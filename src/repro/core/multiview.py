"""Multi-attribute views: the paper's stated generalization (§2).

"SEEDB techniques can directly be used to recommend visualizations for
multiple column views (> 2 columns) that are generated via multi-attribute
grouping and aggregation." A :class:`MultiViewSpec` groups by a *tuple* of
dimensions; its distribution ranges over existing attribute-value
combinations. Everything else — the flag-combined execution, partition
merging, normalization, distance scoring, top-k — is exactly the
single-attribute machinery, which is the point the sentence makes: the
recommender below is a phase list over the shared
:class:`~repro.engine.ExecutionEngine` (tuple-dimension enumeration and
planning from :mod:`repro.engine.multiview`, then the standard
Execute/Score/Select phases).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import TYPE_CHECKING, Sequence

from repro.backends.base import Backend
from repro.core.config import SeeDBConfig
from repro.db.aggregates import Aggregate
from repro.db.query import RowSelectQuery
from repro.db.schema import Schema
from repro.db.types import AttributeRole
from repro.metrics.base import DistanceMetric
from repro.metrics.normalize import NormalizationPolicy
from repro.metrics.registry import get_metric
from repro.model.view import ScoredView
from repro.util.errors import ConfigError, QueryError

if TYPE_CHECKING:
    from repro.api.request import RecommendationRequest


@dataclass(frozen=True)
class MultiViewSpec:
    """A view grouping by several dimensions: ``f(m) by (a1, ..., ak)``."""

    dimensions: tuple[str, ...]
    measure: "str | None"
    func: str

    def __post_init__(self) -> None:
        if len(self.dimensions) < 2:
            raise QueryError(
                "multi-attribute views need >= 2 dimensions; use ViewSpec "
                "for single-attribute views"
            )
        if len(set(self.dimensions)) != len(self.dimensions):
            raise QueryError(f"duplicate dimensions in {self.dimensions}")
        if self.measure is None and self.func != "count":
            raise QueryError("only 'count' may omit the measure")

    @property
    def aggregate(self) -> Aggregate:
        return Aggregate(self.func, self.measure)

    @property
    def label(self) -> str:
        measure = self.measure if self.measure is not None else "*"
        dims = ", ".join(self.dimensions)
        return f"{self.func}({measure}) by ({dims})"

    @property
    def sort_key(self) -> tuple:
        return (self.dimensions, self.measure or "", self.func)

    def __lt__(self, other: "MultiViewSpec") -> bool:
        return self.sort_key < other.sort_key


def enumerate_multi_views(
    schema: Schema,
    n_dimensions: int = 2,
    functions: Sequence[str] = ("sum", "avg"),
    include_count: bool = True,
    dimensions: "Sequence[str] | None" = None,
) -> list[MultiViewSpec]:
    """All ``n_dimensions``-attribute views of ``schema``.

    The space is C(|A|, k) x |M| x |F| — combinatorially larger than the
    single-attribute space, which is why the paper's prototype stops at
    k=1 and this generalization is opt-in.
    """
    if n_dimensions < 2:
        raise ConfigError("n_dimensions must be >= 2")
    dimension_names = (
        list(dimensions)
        if dimensions is not None
        else [spec.name for spec in schema.dimensions]
    )
    for name in dimension_names:
        schema.require(name, AttributeRole.DIMENSION)
    measure_names = [spec.name for spec in schema.measures]

    views: list[MultiViewSpec] = []
    for dims in combinations(dimension_names, n_dimensions):
        if include_count:
            views.append(MultiViewSpec(dims, None, "count"))
        for measure in measure_names:
            for func in functions:
                views.append(MultiViewSpec(dims, measure, func))
    return views


class MultiViewRecommender:
    """Top-k recommendation over multi-attribute views.

    Executes one flag-combined query per dimension *combination* (all
    aggregates shared), reconstructs target/comparison distributions over
    attribute-value tuples, and scores them with the configured metric —
    all through the shared engine phases.
    """

    def __init__(
        self,
        backend: Backend,
        metric: "str | DistanceMetric" = "js",
        normalization: NormalizationPolicy = NormalizationPolicy.SHIFT,
        engine=None,
    ):
        # Imported here (not at module top) because the engine's multiview
        # phases import MultiViewSpec from this module.
        from repro.engine.engine import ExecutionEngine

        if engine is not None and engine.backend is not backend:
            raise QueryError(
                "the provided engine is bound to a different backend"
            )
        self.backend = backend
        self.metric = get_metric(metric)
        self.normalization = normalization
        self._owns_engine = engine is None
        self.engine = engine if engine is not None else ExecutionEngine(backend)

    def recommend(
        self,
        query: "RowSelectQuery | RecommendationRequest",
        k: "int | None" = None,
        n_dimensions: int = 2,
        functions: Sequence[str] = ("sum", "avg"),
        include_count: bool = True,
    ) -> list[ScoredView]:
        """The k most deviating ``n_dimensions``-attribute views.

        Deprecation adapter over :meth:`recommend_request`: a plain
        :class:`RowSelectQuery` is wrapped into an equivalent
        :class:`~repro.api.RecommendationRequest`; an explicitly passed
        ``k`` overrides the request's own (5 when neither is set).
        """
        from repro.api.request import RecommendationRequest

        if isinstance(query, RecommendationRequest):
            request = query.with_k(k)
        else:
            request = RecommendationRequest(target=query, k=k)
        return self.recommend_request(
            request,
            n_dimensions=n_dimensions,
            functions=functions,
            include_count=include_count,
        )

    def recommend_request(
        self,
        request: "RecommendationRequest",
        n_dimensions: int = 2,
        functions: Sequence[str] = ("sum", "avg"),
        include_count: bool = True,
    ) -> list[ScoredView]:
        """Canonical entry point: multi-attribute recommendation for a
        declarative request (reference and dimension/measure filters
        honored; only flag-combinable references — table / complement —
        are supported on this path)."""
        from repro.engine.multiview import (
            DropEmptyViewsPhase,
            MultiViewEnumeratePhase,
            MultiViewPlanPhase,
            MultiViewPrunePhase,
        )
        from repro.engine.phases import ExecutePhase, ScorePhase, SelectPhase

        k = request.k if request.k is not None else 5
        metric = (
            get_metric(request.metric) if request.metric is not None else self.metric
        )
        config = SeeDBConfig(normalization=self.normalization, k=k)
        phases = [
            MultiViewEnumeratePhase(n_dimensions, functions, include_count),
            MultiViewPrunePhase(),
            MultiViewPlanPhase(),
            ExecutePhase(),
            # Metric passed as an instance: custom DistanceMetric objects
            # need no registry entry.
            ScorePhase(metric=metric, normalization=self.normalization),
            DropEmptyViewsPhase(),
            SelectPhase(),
        ]
        ctx = self.engine.recommend(
            request.target,
            config,
            k,
            phases=phases,
            reference=request.reference.resolve(request.target),
            dimensions=request.dimensions,
            measures=request.measures,
        )
        return ctx.recommendations

    def close(self) -> None:
        """Release the engine's session resources (self-built engines only;
        a caller-injected engine may be shared and stays up)."""
        if self._owns_engine:
            self.engine.close()

    def __enter__(self) -> "MultiViewRecommender":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
