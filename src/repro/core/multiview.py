"""Multi-attribute views: the paper's stated generalization (§2).

"SEEDB techniques can directly be used to recommend visualizations for
multiple column views (> 2 columns) that are generated via multi-attribute
grouping and aggregation." A :class:`MultiViewSpec` groups by a *tuple* of
dimensions; its distribution ranges over existing attribute-value
combinations. Everything else — the flag-combined execution, partition
merging, normalization, distance scoring, top-k — is exactly the
single-attribute machinery, which is the point the sentence makes.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Sequence

import numpy as np

from repro.backends.base import Backend
from repro.core.topk import top_k_views
from repro.db.aggregates import Aggregate
from repro.db.expressions import Expression, TruePredicate
from repro.db.query import AggregateQuery, FlagColumn, RowSelectQuery
from repro.db.schema import Schema
from repro.db.types import AttributeRole
from repro.metrics.base import DistanceMetric
from repro.metrics.normalize import (
    NormalizationPolicy,
    align_series,
    canonical_key,
    normalize_distribution,
)
from repro.metrics.registry import get_metric
from repro.model.view import ScoredView
from repro.optimizer.combine import (
    dedup_aggregates,
    merge_aux_arrays,
    merge_spec,
)
from repro.optimizer.extract import FLAG_NAME, align_aux, aux_arrays
from repro.util.errors import ConfigError, QueryError


@dataclass(frozen=True)
class MultiViewSpec:
    """A view grouping by several dimensions: ``f(m) by (a1, ..., ak)``."""

    dimensions: tuple[str, ...]
    measure: "str | None"
    func: str

    def __post_init__(self) -> None:
        if len(self.dimensions) < 2:
            raise QueryError(
                "multi-attribute views need >= 2 dimensions; use ViewSpec "
                "for single-attribute views"
            )
        if len(set(self.dimensions)) != len(self.dimensions):
            raise QueryError(f"duplicate dimensions in {self.dimensions}")
        if self.measure is None and self.func != "count":
            raise QueryError("only 'count' may omit the measure")

    @property
    def aggregate(self) -> Aggregate:
        return Aggregate(self.func, self.measure)

    @property
    def label(self) -> str:
        measure = self.measure if self.measure is not None else "*"
        dims = ", ".join(self.dimensions)
        return f"{self.func}({measure}) by ({dims})"

    @property
    def sort_key(self) -> tuple:
        return (self.dimensions, self.measure or "", self.func)

    def __lt__(self, other: "MultiViewSpec") -> bool:
        return self.sort_key < other.sort_key


def enumerate_multi_views(
    schema: Schema,
    n_dimensions: int = 2,
    functions: Sequence[str] = ("sum", "avg"),
    include_count: bool = True,
    dimensions: "Sequence[str] | None" = None,
) -> list[MultiViewSpec]:
    """All ``n_dimensions``-attribute views of ``schema``.

    The space is C(|A|, k) x |M| x |F| — combinatorially larger than the
    single-attribute space, which is why the paper's prototype stops at
    k=1 and this generalization is opt-in.
    """
    if n_dimensions < 2:
        raise ConfigError("n_dimensions must be >= 2")
    dimension_names = (
        list(dimensions)
        if dimensions is not None
        else [spec.name for spec in schema.dimensions]
    )
    for name in dimension_names:
        schema.require(name, AttributeRole.DIMENSION)
    measure_names = [spec.name for spec in schema.measures]

    views: list[MultiViewSpec] = []
    for dims in combinations(dimension_names, n_dimensions):
        if include_count:
            views.append(MultiViewSpec(dims, None, "count"))
        for measure in measure_names:
            for func in functions:
                views.append(MultiViewSpec(dims, measure, func))
    return views


class MultiViewRecommender:
    """Top-k recommendation over multi-attribute views.

    Executes one flag-combined query per dimension *combination* (all
    aggregates shared), reconstructs target/comparison distributions over
    attribute-value tuples, and scores them with the configured metric.
    """

    def __init__(
        self,
        backend: Backend,
        metric: "str | DistanceMetric" = "js",
        normalization: NormalizationPolicy = NormalizationPolicy.SHIFT,
    ):
        self.backend = backend
        self.metric = get_metric(metric)
        self.normalization = normalization

    def recommend(
        self,
        query: RowSelectQuery,
        k: int = 5,
        n_dimensions: int = 2,
        functions: Sequence[str] = ("sum", "avg"),
        include_count: bool = True,
    ) -> list[ScoredView]:
        """The k most deviating ``n_dimensions``-attribute views."""
        schema = self.backend.schema(query.table)
        views = enumerate_multi_views(
            schema, n_dimensions, functions, include_count
        )
        if query.predicate is not None:
            constrained = query.predicate.referenced_columns()
            views = [
                view
                for view in views
                if not (set(view.dimensions) & constrained)
            ]
        scored: list[ScoredView] = []
        by_dims: dict[tuple[str, ...], list[MultiViewSpec]] = {}
        for view in views:
            by_dims.setdefault(view.dimensions, []).append(view)
        for dims, group in by_dims.items():
            scored.extend(self._score_group(query, dims, group))
        return top_k_views(scored, k)

    # ------------------------------------------------------------------

    def _score_group(
        self,
        query: RowSelectQuery,
        dims: tuple[str, ...],
        group: list[MultiViewSpec],
    ) -> list[ScoredView]:
        predicate: Expression = (
            query.predicate if query.predicate is not None else TruePredicate()
        )
        aux = dedup_aggregates(
            [a for view in group for a in merge_spec(view.aggregate).aux]
        )
        flag = FlagColumn(FLAG_NAME, predicate)
        result = self.backend.execute(
            AggregateQuery(query.table, (flag,) + dims, aux, None)
        )
        flags = np.asarray(result.column(FLAG_NAME))
        target_part = result.mask(flags == 1)
        rest_part = result.mask(flags == 0)

        def tuple_keys(part):
            columns = [part.column(d) for d in dims]
            return [
                tuple(canonical_key(column[i]) for column in columns)
                for i in range(part.num_rows)
            ]

        target_keys = tuple_keys(target_part)
        rest_keys = tuple_keys(rest_part)
        target_aux = aux_arrays(target_part, aux)
        rest_aux = aux_arrays(rest_part, aux)
        union, aligned_target, aligned_rest = align_aux(
            target_keys, target_aux, rest_keys, rest_aux, aux
        )
        merged = {
            aggregate.alias: merge_aux_arrays(
                aggregate,
                aligned_target[aggregate.alias],
                aligned_rest[aggregate.alias],
            )
            for aggregate in aux
        }

        scored = []
        for view in group:
            spec = merge_spec(view.aggregate)
            target_values = spec.reconstruct(target_aux)
            comparison_values = spec.reconstruct(merged)
            groups, aligned_t, aligned_c = align_series(
                target_keys, target_values, union, comparison_values
            )
            if not groups:
                continue
            p = normalize_distribution(aligned_t, self.normalization)
            q = normalize_distribution(aligned_c, self.normalization)
            scored.append(
                ScoredView(
                    spec=view,  # type: ignore[arg-type]  # duck-typed spec
                    utility=self.metric.distance(p, q),
                    groups=groups,
                    target_distribution=p,
                    comparison_distribution=q,
                    target_values=aligned_t,
                    comparison_values=aligned_c,
                )
            )
        return scored
