"""The SeeDB recommender: the full optimized pipeline of Figure 4.

Orchestrates Metadata Collector → Query Generator (enumeration + pruning)
→ Optimizer (combining / sampling / parallelism) → DBMS → View Processor
(normalize + score) → top-k selection, with per-phase timing.
"""

from __future__ import annotations

from repro.backends.base import Backend
from repro.core.config import SeeDBConfig
from repro.core.result import RecommendationResult
from repro.core.space import enumerate_views, split_predicate_dimensions
from repro.core.topk import top_k_views
from repro.pruning.base import PruneReport
from repro.core.view_processor import ViewProcessor
from repro.db.query import RowSelectQuery
from repro.metadata.collector import MetadataCollector
from repro.optimizer.parallel import ParallelExecutor
from repro.optimizer.plan import Planner
from repro.util.errors import QueryError
from repro.util.timing import Stopwatch


class SeeDB:
    """Visualization recommender over a DBMS backend.

    >>> backend = MemoryBackend()
    >>> backend.register_table(sales)                      # doctest: +SKIP
    >>> seedb = SeeDB(backend)
    >>> result = seedb.recommend(RowSelectQuery("sales", col("product") == "Laserwave"))
    ... # doctest: +SKIP

    One instance holds a metadata collector (with its access log) across
    queries, so access-frequency pruning learns from session history.
    """

    def __init__(
        self,
        backend: Backend,
        config: "SeeDBConfig | None" = None,
        metadata_collector: "MetadataCollector | None" = None,
    ):
        self.backend = backend
        self.config = config if config is not None else SeeDBConfig()
        self.metadata = (
            metadata_collector if metadata_collector is not None else MetadataCollector()
        )

    # ------------------------------------------------------------------

    def recommend(
        self,
        query: "RowSelectQuery | str",
        k: "int | None" = None,
        config: "SeeDBConfig | None" = None,
    ) -> RecommendationResult:
        """Recommend the top-k most deviating views for ``query``.

        ``query`` is the analyst's row-selection query — a
        :class:`RowSelectQuery` or a SQL string in the supported subset.
        ``config`` overrides the instance configuration for this call.
        """
        config = config if config is not None else self.config
        k = k if k is not None else config.k
        query = self._resolve_query(query)
        stopwatch = Stopwatch()

        # Access tracking: the analyst's query itself is history the
        # access-frequency pruner learns from (§3.3).
        self.metadata.access_log.record_query(query)

        with stopwatch.time("metadata"):
            base_table = self.backend.fetch_table(
                query.table, max_rows=config.metadata_max_rows
            )
            metadata = self.metadata.collect(base_table)

        # Count view-query round trips only (metadata fetches excluded).
        queries_before = self.backend.queries_executed

        with stopwatch.time("enumerate"):
            schema = self.backend.schema(query.table)
            candidates = enumerate_views(
                schema,
                functions=config.aggregate_functions,
                include_count=config.include_count_views,
            )

        with stopwatch.time("prune"):
            prune_reports = []
            surviving = candidates
            if config.exclude_predicate_dimensions:
                surviving, excluded = split_predicate_dimensions(
                    surviving, query.predicate
                )
                report = PruneReport(
                    rule="predicate_dimensions", examined=len(candidates)
                )
                report.pruned.extend(excluded)
                prune_reports.append(report)
            pipeline = config.pruning_pipeline()
            surviving, rule_reports = pipeline.apply(surviving, metadata)
            prune_reports.extend(rule_reports)

        execution_table, sample_fraction = self._resolve_execution_table(query, config)

        with stopwatch.time("plan"):
            cardinalities = {
                spec.name: metadata.stats[spec.name].n_distinct
                for spec in schema.dimensions
            }
            planner = Planner(config.planner_config())
            plan = planner.plan(
                surviving,
                execution_table,
                query.predicate,
                cardinalities,
                self.backend.capabilities,
            )

        with stopwatch.time("execute"):
            if config.n_workers > 1:
                executor = ParallelExecutor(n_workers=config.n_workers)
                raw_views, _report = executor.run(plan, self.backend)
            else:
                raw_views = plan.run(self.backend)

        with stopwatch.time("score"):
            processor = ViewProcessor(config.resolve_metric(), config.normalization)
            scored = processor.score_all(raw_views)

        with stopwatch.time("select"):
            recommendations = top_k_views(scored.values(), k)

        return RecommendationResult(
            table=query.table,
            predicate_description=self._describe_predicate(query),
            k=k,
            metric=config.metric,
            recommendations=recommendations,
            all_scored=scored,
            prune_reports=prune_reports,
            stopwatch=stopwatch,
            n_candidate_views=len(candidates),
            n_executed_views=len(surviving),
            n_queries=self.backend.queries_executed - queries_before,
            sample_fraction=sample_fraction,
            plan_description=plan.describe(),
        )

    # ------------------------------------------------------------------

    def _resolve_query(self, query: "RowSelectQuery | str") -> RowSelectQuery:
        if isinstance(query, RowSelectQuery):
            return query
        if isinstance(query, str):
            # Imported lazily: the parser is a frontend concern and the
            # core stays usable without it.
            from repro.sqlparser import parse_row_select

            return parse_row_select(query)
        raise QueryError(
            f"query must be a RowSelectQuery or SQL string, got {type(query).__name__}"
        )

    def _resolve_execution_table(
        self, query: RowSelectQuery, config: SeeDBConfig
    ) -> tuple[str, "float | None"]:
        """Materialize a sample when the sampling optimization applies."""
        if config.sample_fraction is None or config.sample_fraction >= 1.0:
            return query.table, None
        if self.backend.row_count(query.table) < config.min_rows_for_sampling:
            return query.table, None
        sample_name = f"{query.table}__seedb_sample"
        self.backend.create_sample(
            query.table, sample_name, config.sample_fraction, seed=config.sample_seed
        )
        return sample_name, config.sample_fraction

    @staticmethod
    def _describe_predicate(query: RowSelectQuery) -> str:
        if query.predicate is None:
            return "all rows"
        from repro.backends.sqlgen import render_expression

        return render_expression(query.predicate)
