"""The SeeDB recommender: a facade over the shared ExecutionEngine.

The full optimized pipeline of Figure 4 — Metadata Collector → Query
Generator (enumeration + pruning) → Optimizer (combining / sampling /
parallelism) → DBMS → View Processor (normalize + score) → top-k — runs as
the engine's default phase list (:func:`repro.engine.phases.default_phases`).
This class resolves the analyst's input into one canonical
:class:`~repro.api.RecommendationRequest`, holds session-scoped state (one
engine = one metadata collector + session cache + persistent worker pool),
and packages the finished context as a :class:`RecommendationResult`.

Requests are the API: :meth:`recommend` accepts a
:class:`RecommendationRequest` (or, as a thin adapter, the older
``query, k, config`` positional form, which it wraps into one),
:meth:`recommend_iter` streams :class:`~repro.api.PartialResult` rounds
from the incremental engine, and both honor the request's reference spec,
view-space filters, strategy, and execution options.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.backends.base import Backend
from repro.core.config import SeeDBConfig
from repro.core.result import RecommendationResult
from repro.db.query import RowSelectQuery
from repro.engine.engine import ExecutionEngine
from repro.metadata.collector import MetadataCollector
from repro.util.errors import QueryError

if TYPE_CHECKING:
    from repro.api.progressive import PartialResult
    from repro.api.request import RecommendationRequest, ResolvedRequest
    from repro.engine.context import ExecutionContext
    from repro.util.deadline import CancelToken


class SeeDB:
    """Visualization recommender over a DBMS backend.

    >>> backend = MemoryBackend()
    >>> backend.register_table(sales)                      # doctest: +SKIP
    >>> seedb = SeeDB(backend)
    >>> result = seedb.recommend(
    ...     RecommendationRequest.from_sql(
    ...         "SELECT * FROM sales WHERE product = 'Laserwave'", k=3
    ...     )
    ... )                                                  # doctest: +SKIP

    One instance holds an :class:`~repro.engine.ExecutionEngine` across
    queries: its metadata collector (with the access log) lets
    access-frequency pruning learn from session history, its cache lets
    repeated calls skip redundant backend round trips, and its worker pool
    is reused instead of rebuilt per call. Use the instance as a context
    manager (or call :meth:`close`) to release cached sample tables and
    pool threads at session end.
    """

    def __init__(
        self,
        backend: Backend,
        config: "SeeDBConfig | None" = None,
        metadata_collector: "MetadataCollector | None" = None,
        engine: "ExecutionEngine | None" = None,
    ):
        if engine is not None:
            if metadata_collector is not None:
                raise QueryError(
                    "pass either engine or metadata_collector, not both: "
                    "a provided engine already owns its collector"
                )
            if engine.backend is not backend:
                raise QueryError(
                    "the provided engine is bound to a different backend"
                )
        self.backend = backend
        self.config = config if config is not None else SeeDBConfig()
        self._owns_engine = engine is None
        self.engine = (
            engine
            if engine is not None
            else ExecutionEngine(backend, metadata_collector)
        )
        self.metadata = self.engine.metadata

    # ------------------------------------------------------------------

    def recommend(
        self,
        query: "RecommendationRequest | RowSelectQuery | str",
        k: "int | None" = None,
        config: "SeeDBConfig | None" = None,
    ) -> RecommendationResult:
        """Recommend the top-k most deviating views for a request.

        ``query`` is a :class:`~repro.api.RecommendationRequest` — or, via
        the deprecation adapter, the pre-request positional form: a
        :class:`RowSelectQuery` / SQL string plus ``k`` and an optional
        ``config`` override (both fold into an equivalent request).
        """
        request = self.as_request(query, k=k)
        resolved = request.resolve(config if config is not None else self.config)
        return self.run_resolved(resolved).to_result()

    def recommend_iter(
        self,
        query: "RecommendationRequest | RowSelectQuery | str",
        k: "int | None" = None,
        config: "SeeDBConfig | None" = None,
    ) -> "Iterator[PartialResult]":
        """Progressive :meth:`recommend`: yield partial top-k rounds.

        Runs the request through the incremental engine regardless of its
        ``strategy``, yielding one :class:`~repro.api.PartialResult` per
        executed phase (current top-k estimate + confidence/pruning state)
        and a final round whose ``result`` is bit-identical to what
        :meth:`recommend` returns for the same request with
        ``strategy="incremental"``.
        """
        request = self.as_request(query, k=k)
        if request.strategy != "incremental":
            from dataclasses import replace

            request = replace(request, strategy="incremental")
        resolved = request.resolve(config if config is not None else self.config)
        return self.iter_resolved(resolved)

    # -- canonicalization ---------------------------------------------------

    def as_request(
        self,
        query: "RecommendationRequest | RowSelectQuery | str",
        k: "int | None" = None,
        warn: bool = True,
    ) -> "RecommendationRequest":
        """Normalize any accepted input into a :class:`RecommendationRequest`.

        The deprecation adapter behind every legacy signature: strings are
        parsed as SQL, :class:`RowSelectQuery` objects wrapped verbatim,
        and an explicit ``k`` overrides the request's own. Legacy inputs
        draw a :class:`DeprecationWarning` unless ``warn=False`` (for
        wrappers like :class:`~repro.frontend.session.AnalystSession`
        whose own signature is the supported surface).
        """
        from repro.api.request import RecommendationRequest

        if isinstance(query, RecommendationRequest):
            return query.with_k(k)
        if warn:
            import warnings

            warnings.warn(
                "positional SeeDB signatures (query, k, config) are "
                "deprecated; construct a RecommendationRequest (for SQL "
                "text: RecommendationRequest.from_sql(...)) and pass that "
                "instead — see README 'Public API' for the migration table",
                DeprecationWarning,
                stacklevel=3,
            )
        return RecommendationRequest(target=self.resolve_query(query), k=k)

    # -- execution ----------------------------------------------------------

    def run_resolved(
        self,
        resolved: "ResolvedRequest",
        cancel_token: "CancelToken | None" = None,
    ) -> "ExecutionContext":
        """Execute a resolved request through this facade's engine.

        ``cancel_token`` carries the request-lifecycle budget; the serving
        tier passes one measured from admission. Standalone callers get a
        token derived from the request's ``deadline_ms``, if set.
        """
        phases = None
        if resolved.strategy == "incremental":
            phases = self._incremental_phases(resolved)
        elif resolved.render.get("format", "none") != "none":
            from repro.engine.phases import RenderPhase, default_phases

            phases = [*default_phases(), RenderPhase(resolved.render)]
        return self.engine.recommend(
            resolved.query,
            resolved.config,
            resolved.k,
            phases=phases,
            reference=resolved.reference,
            dimensions=resolved.dimensions,
            measures=resolved.measures,
            cancel_token=self._lifecycle_token(resolved, cancel_token),
        )

    @staticmethod
    def _lifecycle_token(
        resolved: "ResolvedRequest",
        cancel_token: "CancelToken | None",
    ) -> "CancelToken | None":
        """The effective cancel token: caller-supplied, or built from the
        request's own ``deadline_ms`` when running outside a service."""
        if cancel_token is not None:
            return cancel_token
        if resolved.deadline_ms is None:
            return None
        from repro.util.deadline import CancelToken, Deadline

        return CancelToken(deadline=Deadline.from_ms(resolved.deadline_ms))

    def iter_resolved(
        self,
        resolved: "ResolvedRequest",
        cancel_token: "CancelToken | None" = None,
    ) -> "Iterator[PartialResult]":
        """Progressive execution of a resolved request (generator).

        Mirrors :meth:`run_resolved` with the incremental phase list, but
        yields after every executed partition phase. The final yielded
        round re-scores the same accumulated state through the same View
        Processor the blocking path uses, so its ``result`` is
        bit-identical to the blocking incremental result.
        """
        from repro.api.progressive import PartialResult
        from repro.core.topk import top_k_views
        from repro.util.deadline import cancel_scope

        token = self._lifecycle_token(resolved, cancel_token)
        ctx = self.engine.new_context(
            resolved.query,
            resolved.config,
            resolved.k,
            reference=resolved.reference,
            dimensions=resolved.dimensions,
            measures=resolved.measures,
            cancel_token=token,
        )
        self.engine.cache.sync()
        pre_phases, execute, post_phases = self._incremental_pipeline(resolved)
        # The cancel scope is entered per work slice, not around the whole
        # generator: between next() calls this thread runs consumer code
        # that must not inherit the request's token.
        with cancel_scope(token):
            for phase in pre_phases:
                ctx.check_cancelled()
                with ctx.stopwatch.time(phase.name):
                    phase.run(ctx)

        rendering = resolved.render.get("format", "none") != "none"
        rounds = execute.rounds(ctx)
        while True:
            with ctx.stopwatch.time(execute.name):
                with cancel_scope(token):
                    round_state = next(rounds, None)
            if round_state is None:
                break
            round_top_k = top_k_views(round_state.scored.values(), resolved.k)
            visualizations = None
            if rendering:
                # Per-round specs for the *current* estimate: the same
                # builder the RenderPhase runs at the end, so each round's
                # charts refine the previous round's and the final round's
                # (below, taken from the result) are bit-identical to the
                # blocking path's.
                from repro.viz.render import build_visualizations

                visualizations = build_visualizations(
                    round_top_k, ctx.schema, resolved.render
                )
            yield PartialResult(
                round=round_state.phase,
                n_rounds=round_state.n_phases,
                recommendations=round_top_k,
                views_alive=round_state.views_alive,
                views_pruned=round_state.views_pruned,
                epsilon=round_state.epsilon,
                visualizations=visualizations,
            )

        with cancel_scope(token):
            for phase in post_phases:
                ctx.check_cancelled()
                with ctx.stopwatch.time(phase.name):
                    phase.run(ctx)
        result = ctx.to_result()
        trace = ctx.extras.get("incremental")
        yield PartialResult(
            round=trace.phases_executed if trace is not None else 0,
            n_rounds=trace.n_phases if trace is not None else 0,
            recommendations=list(result.recommendations),
            views_alive=len(ctx.raw_views),
            views_pruned=(
                len(trace.pruned_at_phase) if trace is not None else 0
            ),
            epsilon=result.partial_epsilon if result.partial else 0.0,
            is_final=True,
            result=result,
            visualizations=result.visualizations,
        )

    @staticmethod
    def _incremental_pipeline(resolved: "ResolvedRequest"):
        """The incremental phase sequence, split around the phased
        executor: ``(pre_phases, execute, post_phases)``.

        Single source of truth for both the blocking path
        (:meth:`_incremental_phases`) and the streaming path
        (:meth:`iter_resolved`) — the streamed final round is bit-identical
        to the blocking result precisely because both run this sequence.
        """
        from repro.engine.incremental import (
            IncrementalScorePhase,
            PhasedExecutePhase,
        )
        from repro.engine.phases import (
            EnumeratePhase,
            MetadataPhase,
            PrunePhase,
            RenderPhase,
            SelectPhase,
        )

        post_phases: list = [IncrementalScorePhase(), SelectPhase()]
        if resolved.render.get("format", "none") != "none":
            post_phases.append(RenderPhase(resolved.render))
        return (
            [MetadataPhase(), EnumeratePhase(), PrunePhase()],
            PhasedExecutePhase(**resolved.incremental),
            post_phases,
        )

    @classmethod
    def _incremental_phases(cls, resolved: "ResolvedRequest") -> list:
        pre_phases, execute, post_phases = cls._incremental_pipeline(resolved)
        return [*pre_phases, execute, *post_phases]

    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release session resources (cached samples, worker pool).

        A caller-injected engine is the caller's to close — it may be
        shared with other facades; only a self-built engine is torn down.
        """
        if self._owns_engine:
            self.engine.close()

    def __enter__(self) -> "SeeDB":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------

    def resolve_query(self, query: "RowSelectQuery | str") -> RowSelectQuery:
        """Normalize ``query`` to a :class:`RowSelectQuery` (parsing SQL)."""
        if isinstance(query, RowSelectQuery):
            return query
        if isinstance(query, str):
            # Parsed through the request codec so syntax failures carry
            # the structured ApiError taxonomy.
            from repro.api.codec import parse_sql_query

            return parse_sql_query(query, "target")
        raise QueryError(
            f"query must be a RowSelectQuery or SQL string, got {type(query).__name__}"
        )

    # Backwards-compatible alias (pre-service callers used the private name).
    _resolve_query = resolve_query
