"""The SeeDB recommender: a facade over the shared ExecutionEngine.

The full optimized pipeline of Figure 4 — Metadata Collector → Query
Generator (enumeration + pruning) → Optimizer (combining / sampling /
parallelism) → DBMS → View Processor (normalize + score) → top-k — runs as
the engine's default phase list (:func:`repro.engine.phases.default_phases`).
This class only resolves the query, holds session-scoped state (one engine
= one metadata collector + session cache + persistent worker pool), and
packages the finished context as a :class:`RecommendationResult`.
"""

from __future__ import annotations

from repro.backends.base import Backend
from repro.core.config import SeeDBConfig
from repro.core.result import RecommendationResult
from repro.db.query import RowSelectQuery
from repro.engine.engine import ExecutionEngine
from repro.metadata.collector import MetadataCollector
from repro.util.errors import QueryError


class SeeDB:
    """Visualization recommender over a DBMS backend.

    >>> backend = MemoryBackend()
    >>> backend.register_table(sales)                      # doctest: +SKIP
    >>> seedb = SeeDB(backend)
    >>> result = seedb.recommend(RowSelectQuery("sales", col("product") == "Laserwave"))
    ... # doctest: +SKIP

    One instance holds an :class:`~repro.engine.ExecutionEngine` across
    queries: its metadata collector (with the access log) lets
    access-frequency pruning learn from session history, its cache lets
    repeated calls skip redundant backend round trips, and its worker pool
    is reused instead of rebuilt per call. Use the instance as a context
    manager (or call :meth:`close`) to release cached sample tables and
    pool threads at session end.
    """

    def __init__(
        self,
        backend: Backend,
        config: "SeeDBConfig | None" = None,
        metadata_collector: "MetadataCollector | None" = None,
        engine: "ExecutionEngine | None" = None,
    ):
        if engine is not None:
            if metadata_collector is not None:
                raise QueryError(
                    "pass either engine or metadata_collector, not both: "
                    "a provided engine already owns its collector"
                )
            if engine.backend is not backend:
                raise QueryError(
                    "the provided engine is bound to a different backend"
                )
        self.backend = backend
        self.config = config if config is not None else SeeDBConfig()
        self._owns_engine = engine is None
        self.engine = (
            engine
            if engine is not None
            else ExecutionEngine(backend, metadata_collector)
        )
        self.metadata = self.engine.metadata

    # ------------------------------------------------------------------

    def recommend(
        self,
        query: "RowSelectQuery | str",
        k: "int | None" = None,
        config: "SeeDBConfig | None" = None,
    ) -> RecommendationResult:
        """Recommend the top-k most deviating views for ``query``.

        ``query`` is the analyst's row-selection query — a
        :class:`RowSelectQuery` or a SQL string in the supported subset.
        ``config`` overrides the instance configuration for this call.
        """
        config = config if config is not None else self.config
        k = k if k is not None else config.k
        query = self._resolve_query(query)
        ctx = self.engine.recommend(query, config, k)
        return ctx.to_result()

    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release session resources (cached samples, worker pool).

        A caller-injected engine is the caller's to close — it may be
        shared with other facades; only a self-built engine is torn down.
        """
        if self._owns_engine:
            self.engine.close()

    def __enter__(self) -> "SeeDB":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------

    def resolve_query(self, query: "RowSelectQuery | str") -> RowSelectQuery:
        """Normalize ``query`` to a :class:`RowSelectQuery` (parsing SQL)."""
        if isinstance(query, RowSelectQuery):
            return query
        if isinstance(query, str):
            # Imported lazily: the parser is a frontend concern and the
            # core stays usable without it.
            from repro.sqlparser import parse_row_select

            return parse_row_select(query)
        raise QueryError(
            f"query must be a RowSelectQuery or SQL string, got {type(query).__name__}"
        )

    # Backwards-compatible alias (pre-service callers used the private name).
    _resolve_query = resolve_query
