"""Recommendation results: what SeeDB hands back to the frontend.

Besides the top-k views themselves, the result carries everything the demo
frontend displays — per-view metadata, the "bad views" (pruned or
low-utility, shown on request in Scenario 1), per-phase timings, and the
work counters the performance scenario plots.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.view import ScoredView, ViewSpec
from repro.pruning.base import PruneReport
from repro.util.tabulate import format_table
from repro.util.timing import Stopwatch, format_duration


@dataclass
class RecommendationResult:
    """Outcome of one ``SeeDB.recommend`` call."""

    table: str
    predicate_description: str
    k: int
    metric: str
    #: The k highest-utility views, descending.
    recommendations: list[ScoredView]
    #: Every executed view's score (recommendations included).
    all_scored: dict[ViewSpec, ScoredView]
    #: Views removed before execution, per pruning rule.
    prune_reports: list[PruneReport]
    #: Per-phase wall-clock breakdown.
    stopwatch: Stopwatch
    #: Candidate views before pruning.
    n_candidate_views: int
    #: Views actually executed.
    n_executed_views: int
    #: DBMS round trips issued for view queries.
    n_queries: int
    #: Sample fraction used (None = exact execution).
    sample_fraction: "float | None" = None
    #: Human-readable plan summary.
    plan_description: str = ""
    #: Cost-based planner decision record: chosen combining mode,
    #: predicted work units and seconds, per-candidate predictions, the
    #: coefficients used, and the observed execute-phase seconds. None
    #: when the static planner ran (``cost_based_planning=False``).
    plan_decision: "dict | None" = None
    #: The comparison row set the utilities were scored against
    #: ("table" = the paper's whole-table reference).
    reference_description: str = "table"
    #: True when a deadline expired mid-run and the result is the best
    #: current estimate rather than the full computation.
    partial: bool = False
    #: Hoeffding ε of the last completed incremental round when
    #: ``partial`` — the confidence half-width on every utility.
    partial_epsilon: "float | None" = None
    #: JSON-safe visualization frames (one per recommended view, built by
    #: the RenderPhase) when the request's ``options.render`` asked for
    #: them; None otherwise. Carried inside the result so every transport
    #: — in-process LRU, coalesced joiners, the shm cluster cache — ships
    #: the charts with the data.
    visualizations: "list[dict] | None" = None

    @property
    def utilities(self) -> dict[ViewSpec, float]:
        """{view: utility} over all executed views."""
        return {spec: view.utility for spec, view in self.all_scored.items()}

    @property
    def total_seconds(self) -> float:
        return self.stopwatch.total

    def pruned_views(self) -> list[tuple[ViewSpec, str]]:
        """All (view, reason) pairs removed by pruning."""
        return [entry for report in self.prune_reports for entry in report.pruned]

    def worst_views(self, n: int = 3) -> list[ScoredView]:
        """The lowest-utility executed views — the demo's "bad views"."""
        ranked = sorted(self.all_scored.values(), key=lambda view: view.utility)
        return ranked[:n]

    def summary(self) -> str:
        """Multi-line report: recommendations table + work accounting."""
        rows = [
            [rank + 1, view.spec.label, view.utility]
            for rank, view in enumerate(self.recommendations)
        ]
        lines = [
            f"SeeDB recommendations for {self.table} "
            f"[{self.predicate_description}] (metric={self.metric}):",
            format_table(rows, headers=["rank", "view", "utility"]),
            "",
            (
                f"views: {self.n_candidate_views} candidates, "
                f"{self.n_executed_views} executed, "
                f"{len(self.pruned_views())} pruned; "
                f"queries: {self.n_queries}; "
                f"time: {format_duration(self.total_seconds)}"
            ),
        ]
        if self.sample_fraction is not None:
            lines.append(f"sampling: fraction={self.sample_fraction}")
        if self.partial:
            epsilon = (
                f"±{self.partial_epsilon:.4f}"
                if self.partial_epsilon is not None
                else "unknown"
            )
            lines.append(
                f"PARTIAL: deadline hit before completion; "
                f"utilities are estimates ({epsilon})"
            )
        return "\n".join(lines)
