"""Candidate view-space enumeration.

The space is the cross product ``A × M × F`` (dimensions × measures ×
aggregate functions), plus one ``count(*)`` view per dimension when enabled.
§1 challenge (b) notes the space "increases as the square of the number of
attributes": with ``n`` attributes split between dimensions and measures,
``|A|·|M|`` is maximized at ``(n/2)²`` — benchmark E6 verifies exactly this
quadratic growth.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.view import ViewSpec
from repro.db.schema import Schema
from repro.util.errors import ConfigError

#: Aggregates enumerated by default. The full set in
#: :data:`repro.db.aggregates.AGGREGATE_FUNCTIONS` is larger; sum/avg are
#: the paper's running examples and count adds distribution-of-rows views.
DEFAULT_FUNCTIONS: tuple[str, ...] = ("sum", "avg")


def enumerate_views(
    schema: Schema,
    functions: Sequence[str] = DEFAULT_FUNCTIONS,
    include_count: bool = True,
    dimensions: Sequence[str] | None = None,
    measures: Sequence[str] | None = None,
) -> list[ViewSpec]:
    """All candidate views of ``schema``.

    ``dimensions``/``measures`` restrict the attribute sets (used by
    drill-down style interactions); by default all schema dimensions and
    measures participate. Order is deterministic: dimension-major in schema
    order, then measure, then function.
    """
    if not functions and not include_count:
        raise ConfigError("no aggregate functions selected")
    dimension_names = _resolve(schema, dimensions, [s.name for s in schema.dimensions])
    measure_names = _resolve(schema, measures, [s.name for s in schema.measures])

    views: list[ViewSpec] = []
    for dimension in dimension_names:
        if include_count:
            views.append(ViewSpec(dimension, None, "count"))
        for measure in measure_names:
            for func in functions:
                views.append(ViewSpec(dimension, measure, func))
    return views


def view_space_size(
    n_dimensions: int,
    n_measures: int,
    n_functions: int = len(DEFAULT_FUNCTIONS),
    include_count: bool = True,
) -> int:
    """Closed-form size of the view space (must equal len(enumerate_views))."""
    return n_dimensions * n_measures * n_functions + (
        n_dimensions if include_count else 0
    )


def split_predicate_dimensions(
    views: "list[ViewSpec]", predicate
) -> "tuple[list[ViewSpec], list[tuple[ViewSpec, str]]]":
    """Separate views grouping by a predicate-constrained dimension.

    A view grouped by an attribute the analyst's query filters on (e.g.
    ``... by product`` under ``product = 'Laserwave'``) deviates maximally
    by construction — the target has exactly one group — and would crowd
    every real finding out of the top-k. The Query Generator therefore
    removes such views up front. Returns ``(kept, excluded_with_reason)``.
    """
    if predicate is None:
        return list(views), []
    constrained = predicate.referenced_columns()
    kept: list[ViewSpec] = []
    excluded: list[tuple[ViewSpec, str]] = []
    for view in views:
        if view.dimension in constrained:
            excluded.append(
                (
                    view,
                    f"dimension {view.dimension!r} is constrained by the "
                    "analyst's predicate (trivially deviating)",
                )
            )
        else:
            kept.append(view)
    return kept, excluded


def _resolve(
    schema: Schema, requested: Sequence[str] | None, default: list[str]
) -> list[str]:
    if requested is None:
        return default
    for name in requested:
        schema[name]  # raises SchemaError for unknown columns
    return list(requested)
