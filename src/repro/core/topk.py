"""Top-k selection of scored views (the k of Problem 2.1)."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.model.view import ScoredView
from repro.util.errors import ConfigError


def top_k_views(scored: Iterable[ScoredView], k: int) -> list[ScoredView]:
    """The ``k`` views with the largest utility, descending.

    Selection is a linear-time ``np.argpartition`` over the utility vector
    (only the k boundary candidates are fully sorted) rather than a heap of
    Python-level comparisons. Ties break by the view spec's natural
    (lexicographic) order so the recommendation list is deterministic
    across runs and backends. Works for any spec exposing a ``sort_key``
    of (possibly nested) strings — both single-attribute
    :class:`~repro.model.view.ViewSpec` and the multi-attribute extension.
    """
    if k < 1:
        raise ConfigError(f"k must be >= 1, got {k}")
    views = list(scored)
    if not views:
        return []
    candidates = views
    if k < len(views):
        utilities = np.fromiter(
            (view.utility for view in views), dtype=np.float64, count=len(views)
        )
        if not np.isnan(utilities).any():
            # The k-th largest utility; every view at or above it is a
            # candidate (>= keeps utility ties for deterministic breaking).
            boundary = len(views) - k
            kth = utilities[np.argpartition(utilities, boundary)[boundary]]
            candidates = [views[i] for i in np.flatnonzero(utilities >= kth)]
    candidates.sort(key=lambda view: (-view.utility, view.spec.sort_key))
    return candidates[:k]
