"""Top-k selection of scored views (the k of Problem 2.1)."""

from __future__ import annotations

import heapq
from typing import Iterable

from repro.model.view import ScoredView
from repro.util.errors import ConfigError


def top_k_views(scored: Iterable[ScoredView], k: int) -> list[ScoredView]:
    """The ``k`` views with the largest utility, descending.

    Ties break by the view spec's natural (lexicographic) order so the
    recommendation list is deterministic across runs and backends. Works
    for any spec exposing a ``sort_key`` of (possibly nested) strings —
    both single-attribute :class:`~repro.model.view.ViewSpec` and the
    multi-attribute extension.
    """
    if k < 1:
        raise ConfigError(f"k must be >= 1, got {k}")
    return heapq.nlargest(
        k,
        scored,
        key=lambda view: (view.utility, _inverted(view.spec.sort_key)),
    )


def _inverted(value):
    """Order-inverting transform: nlargest on the result prefers the
    lexicographically *smallest* original value."""
    if isinstance(value, str):
        return tuple(-ord(char) for char in value)
    if isinstance(value, tuple):
        return tuple(_inverted(item) for item in value)
    raise TypeError(f"cannot invert sort key component {value!r}")
