"""Re-export of the view data model under its paper-facing location.

The definitions live in :mod:`repro.model.view` (a leaf package) to keep
import graphs acyclic; the public API treats ``repro.core.view`` as home.
"""

from repro.model.view import RawViewData, ScoredView, ViewBlock, ViewSpec

__all__ = ["RawViewData", "ScoredView", "ViewBlock", "ViewSpec"]
