"""The View Processor module (Figure 4).

"Results of the optimized queries are processed by the View Processor in a
streaming fashion to produce results for individual views. Individual view
results are then normalized and the utility of each view is computed"
(§3.1). Raw per-view series come in from plan extraction; aligned
distributions and utilities come out.

Two scoring paths share one semantics:

* :meth:`ViewProcessor.score` / :meth:`ViewProcessor.score_all` — the
  classic per-view loop (align one series pair, normalize, one scalar
  metric call).
* :meth:`ViewProcessor.score_batch` / :meth:`ViewProcessor.score_blocks` —
  the columnar path: views are regrouped into dense per-attribute
  :class:`~repro.model.view.ViewBlock` matrices, normalized row-wise in
  one pass, and scored with one vectorized ``distance_batch`` call per
  block. Utilities and distributions are bit-for-bit identical to the
  per-view path (the property suite asserts this); only the constant
  factor changes.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.core.view import RawViewData, ScoredView, ViewSpec
from repro.metrics.base import DistanceMetric
from repro.metrics.normalize import (
    NormalizationPolicy,
    align_series,
    normalize_batch,
    normalize_distribution,
)
from repro.model.view import ViewBlock
from repro.optimizer.extract import blocks_from_raw


class ViewProcessor:
    """Normalizes raw view series and scores their deviation."""

    def __init__(
        self,
        metric: DistanceMetric,
        normalization: NormalizationPolicy = NormalizationPolicy.SHIFT,
    ):
        self.metric = metric
        self.normalization = normalization

    def score(self, raw: RawViewData) -> ScoredView:
        """Align, normalize, and score one view (utility = S(P_target, P_comparison))."""
        groups, target_values, comparison_values = align_series(
            raw.target_keys,
            raw.target_values,
            raw.comparison_keys,
            raw.comparison_values,
        )
        if not groups:
            # Neither side produced any group (empty selection on an empty
            # table): define utility as 0 — nothing deviates.
            return ScoredView(
                spec=raw.spec,
                utility=0.0,
                groups=[],
                target_distribution=np.empty(0),
                comparison_distribution=np.empty(0),
            )
        target_distribution = normalize_distribution(target_values, self.normalization)
        comparison_distribution = normalize_distribution(
            comparison_values, self.normalization
        )
        utility = self.metric.distance(target_distribution, comparison_distribution)
        return ScoredView(
            spec=raw.spec,
            utility=utility,
            groups=groups,
            target_distribution=target_distribution,
            comparison_distribution=comparison_distribution,
            target_values=target_values,
            comparison_values=comparison_values,
        )

    def score_all(
        self, raw_views: "Mapping[ViewSpec, RawViewData] | Iterable[RawViewData]"
    ) -> dict[ViewSpec, ScoredView]:
        """Score every raw view with the per-view loop; returns ``{spec: scored}``."""
        if isinstance(raw_views, Mapping):
            raw_views = raw_views.values()
        return {raw.spec: self.score(raw) for raw in raw_views}

    def score_batch(
        self, raw_views: "Mapping[ViewSpec, RawViewData] | Iterable[RawViewData]"
    ) -> dict[ViewSpec, ScoredView]:
        """Columnar :meth:`score_all`: regroup into per-attribute blocks,
        then normalize and score each block in whole-matrix operations."""
        return self.score_blocks(blocks_from_raw(raw_views))

    def score_blocks(
        self, blocks: Iterable[ViewBlock]
    ) -> dict[ViewSpec, ScoredView]:
        """Score dense view blocks; returns ``{spec: scored}``."""
        scored: dict[ViewSpec, ScoredView] = {}
        for block in blocks:
            if block.n_groups == 0:
                for spec in block.specs:
                    scored[spec] = ScoredView(
                        spec=spec,
                        utility=0.0,
                        groups=[],
                        target_distribution=np.empty(0),
                        comparison_distribution=np.empty(0),
                    )
                continue
            target_distributions = normalize_batch(block.target, self.normalization)
            comparison_distributions = normalize_batch(
                block.comparison, self.normalization
            )
            utilities = self.metric.distance_batch(
                target_distributions, comparison_distributions
            )
            for row, spec in enumerate(block.specs):
                scored[spec] = ScoredView(
                    spec=spec,
                    utility=float(utilities[row]),
                    groups=block.groups,
                    target_distribution=target_distributions[row],
                    comparison_distribution=comparison_distributions[row],
                    target_values=block.target[row],
                    comparison_values=block.comparison[row],
                )
        return scored
