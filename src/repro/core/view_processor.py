"""The View Processor module (Figure 4).

"Results of the optimized queries are processed by the View Processor in a
streaming fashion to produce results for individual views. Individual view
results are then normalized and the utility of each view is computed"
(§3.1). Raw per-view series come in from plan extraction; aligned
distributions and utilities come out.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.core.view import RawViewData, ScoredView, ViewSpec
from repro.metrics.base import DistanceMetric
from repro.metrics.normalize import (
    NormalizationPolicy,
    align_series,
    normalize_distribution,
)


class ViewProcessor:
    """Normalizes raw view series and scores their deviation."""

    def __init__(
        self,
        metric: DistanceMetric,
        normalization: NormalizationPolicy = NormalizationPolicy.SHIFT,
    ):
        self.metric = metric
        self.normalization = normalization

    def score(self, raw: RawViewData) -> ScoredView:
        """Align, normalize, and score one view (utility = S(P_target, P_comparison))."""
        groups, target_values, comparison_values = align_series(
            raw.target_keys,
            raw.target_values,
            raw.comparison_keys,
            raw.comparison_values,
        )
        if not groups:
            # Neither side produced any group (empty selection on an empty
            # table): define utility as 0 — nothing deviates.
            return ScoredView(
                spec=raw.spec,
                utility=0.0,
                groups=[],
                target_distribution=np.empty(0),
                comparison_distribution=np.empty(0),
            )
        target_distribution = normalize_distribution(target_values, self.normalization)
        comparison_distribution = normalize_distribution(
            comparison_values, self.normalization
        )
        utility = self.metric.distance(target_distribution, comparison_distribution)
        return ScoredView(
            spec=raw.spec,
            utility=utility,
            groups=groups,
            target_distribution=target_distribution,
            comparison_distribution=comparison_distribution,
            target_values=target_values,
            comparison_values=comparison_values,
        )

    def score_all(
        self, raw_views: "Mapping[ViewSpec, RawViewData] | Iterable[RawViewData]"
    ) -> dict[ViewSpec, ScoredView]:
        """Score every raw view; returns ``{spec: scored}``."""
        if isinstance(raw_views, Mapping):
            raw_views = raw_views.values()
        return {raw.spec: self.score(raw) for raw in raw_views}
