"""Datasets for the demo scenarios (§4).

The paper demos on four datasets: Tableau's Store Orders [4], FEC election
contributions [1], the MIMIC-II medical database [2], and synthetic data.
The first three are not redistributable/offline, so this package generates
schema-faithful synthetic stand-ins with planted, documented trends —
SeeDB's algorithms only ever see a schema and rows, so every code path is
exercised identically (see DESIGN.md "Substitutions").
"""

from repro.datasets.laserwave import (
    laserwave_sales_history,
    laserwave_table_1,
    scenario_a_comparison,
    scenario_b_comparison,
)
from repro.datasets.synthetic import (
    SyntheticConfig,
    SyntheticDataset,
    generate_synthetic,
)
from repro.datasets.store_orders import generate_store_orders
from repro.datasets.elections import generate_elections
from repro.datasets.medical import generate_medical
from repro.datasets.registry import available_datasets, load_dataset

__all__ = [
    "laserwave_sales_history",
    "laserwave_table_1",
    "scenario_a_comparison",
    "scenario_b_comparison",
    "SyntheticConfig",
    "SyntheticDataset",
    "generate_synthetic",
    "generate_store_orders",
    "generate_elections",
    "generate_medical",
    "available_datasets",
    "load_dataset",
]
