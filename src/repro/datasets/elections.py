"""Election contributions: an FEC-like dataset (§4, dataset [1]).

"This is an example of a dataset typically analyzed by non-expert data
analysts like journalists or historians." Planted, journalist-discoverable
trends:

* Candidate Rivera is funded by many small individual donations,
  concentrated in California and among educators/engineers.
* Candidate Stone is funded by fewer, larger donations, concentrated in
  Texas and among executives/attorneys, with a higher PAC share.
* Retirees donate to both but skew toward round amounts.
"""

from __future__ import annotations

from datetime import date, timedelta

import numpy as np

from repro.db.table import Table
from repro.db.types import AttributeRole
from repro.util.rng import derive_rng

CANDIDATES = ("Rivera", "Stone", "Okafor")
STATES = ("CA", "TX", "NY", "FL", "WA", "IL", "MA", "OH")
OCCUPATIONS = (
    "Teacher",
    "Engineer",
    "Attorney",
    "Executive",
    "Physician",
    "Retired",
    "Student",
)
ENTITY_TYPES = ("Individual", "PAC", "Party Committee")
_PARTY = {"Rivera": "Blue", "Stone": "Red", "Okafor": "Independent"}

_STATE_PROBS = {
    "Rivera": (0.45, 0.05, 0.15, 0.07, 0.12, 0.06, 0.07, 0.03),
    "Stone": (0.08, 0.42, 0.08, 0.17, 0.05, 0.08, 0.04, 0.08),
    "Okafor": (0.15, 0.12, 0.15, 0.12, 0.12, 0.12, 0.11, 0.11),
}
_OCCUPATION_PROBS = {
    "Rivera": (0.28, 0.25, 0.07, 0.05, 0.10, 0.15, 0.10),
    "Stone": (0.05, 0.08, 0.25, 0.30, 0.12, 0.17, 0.03),
    "Okafor": (0.15, 0.15, 0.14, 0.14, 0.14, 0.14, 0.14),
}


def generate_elections(n_rows: int = 12_000, seed: int = 23) -> Table:
    """Generate the election-contribution stand-in with planted trends."""
    rng = derive_rng(seed)
    candidates = rng.choice(CANDIDATES, size=n_rows, p=(0.42, 0.38, 0.20))

    states = np.array(
        [rng.choice(STATES, p=_STATE_PROBS[c]) for c in candidates], dtype=object
    )
    occupations = np.array(
        [rng.choice(OCCUPATIONS, p=_OCCUPATION_PROBS[c]) for c in candidates],
        dtype=object,
    )
    parties = np.array([_PARTY[c] for c in candidates], dtype=object)

    entity_probabilities = {
        "Rivera": (0.90, 0.07, 0.03),
        "Stone": (0.70, 0.24, 0.06),
        "Okafor": (0.85, 0.10, 0.05),
    }
    entity_types = np.array(
        [rng.choice(ENTITY_TYPES, p=entity_probabilities[c]) for c in candidates],
        dtype=object,
    )

    # Contribution amounts: small-dollar for Rivera, large for Stone.
    amounts = np.empty(n_rows)
    rivera = candidates == "Rivera"
    stone = candidates == "Stone"
    other = ~(rivera | stone)
    amounts[rivera] = rng.lognormal(mean=3.2, sigma=0.7, size=int(rivera.sum()))
    amounts[stone] = rng.lognormal(mean=5.8, sigma=0.9, size=int(stone.sum()))
    amounts[other] = rng.lognormal(mean=4.3, sigma=0.8, size=int(other.sum()))
    retired = occupations == "Retired"
    amounts[retired] = np.round(amounts[retired], -1)  # round-dollar habit
    amounts = np.round(np.clip(amounts, 1.0, 50_000.0), 2)

    start = date(2024, 1, 1)
    dates = [
        start + timedelta(days=int(offset))
        for offset in rng.integers(0, 300, size=n_rows)
    ]

    return Table.from_columns(
        "contributions",
        {
            "candidate": candidates.tolist(),
            "party": parties.tolist(),
            "contributor_state": states.tolist(),
            "contributor_occupation": occupations.tolist(),
            "entity_type": entity_types.tolist(),
            "contribution_date": dates,
            "amount": amounts,
        },
        roles={
            "candidate": AttributeRole.DIMENSION,
            "party": AttributeRole.DIMENSION,
            "contributor_state": AttributeRole.DIMENSION,
            "contributor_occupation": AttributeRole.DIMENSION,
            "entity_type": AttributeRole.DIMENSION,
            "contribution_date": AttributeRole.DIMENSION,
            "amount": AttributeRole.MEASURE,
        },
        semantics={
            "contributor_state": "geography",
            "contribution_date": "time",
        },
    )
