"""The paper's running example: Laserwave Oven sales (§1, Table 1, Figs 1-3).

Three artifacts are reproduced exactly:

* :func:`laserwave_table_1` — the data of Table 1 (total sales by store
  for the Laserwave, with the paper's exact dollar values).
* :func:`scenario_a_comparison` / :func:`scenario_b_comparison` — overall
  sales-by-store tables shaped like Figures 2 and 3: Scenario A shows the
  *opposite* store trend (the view is interesting), Scenario B the *same*
  trend (the view is not).
* :func:`laserwave_sales_history` — a full fact table engineered so that
  the query ``product = 'Laserwave'`` reproduces the Table 1 totals while
  the rest of the data follows the Scenario A trend; running SeeDB on it
  surfaces the sales-by-store view at the top, exactly the paper's story.
"""

from __future__ import annotations

import numpy as np

from repro.db.table import Table
from repro.db.types import AttributeRole
from repro.util.rng import derive_rng

#: Table 1 of the paper, verbatim.
TABLE_1_ROWS: tuple[tuple[str, float], ...] = (
    ("Cambridge, MA", 180.55),
    ("Seattle, WA", 145.50),
    ("New York, NY", 122.00),
    ("San Francisco, CA", 90.13),
)

STORES: tuple[str, ...] = tuple(store for store, _total in TABLE_1_ROWS)

#: Figure 2 (Scenario A): overall sales trend *opposite* to the Laserwave's
#: (approximate bar heights read off the figure, in dollars).
SCENARIO_A_TOTALS: tuple[tuple[str, float], ...] = (
    ("Cambridge, MA", 5_000.0),
    ("Seattle, WA", 15_000.0),
    ("New York, NY", 30_000.0),
    ("San Francisco, CA", 40_000.0),
)

#: Figure 3 (Scenario B): overall sales follow the *same* trend.
SCENARIO_B_TOTALS: tuple[tuple[str, float], ...] = (
    ("Cambridge, MA", 40_000.0),
    ("Seattle, WA", 30_000.0),
    ("New York, NY", 26_000.0),
    ("San Francisco, CA", 20_000.0),
)

_ROLES = {
    "store": AttributeRole.DIMENSION,
    "total_sales": AttributeRole.MEASURE,
}


def laserwave_table_1() -> Table:
    """Table 1: total sales by store for the Laserwave."""
    stores = [store for store, _total in TABLE_1_ROWS]
    totals = [total for _store, total in TABLE_1_ROWS]
    return Table.from_columns(
        "laserwave_by_store",
        {"store": stores, "total_sales": totals},
        roles=_ROLES,
        semantics={"store": "geography"},
    )


def scenario_a_comparison() -> Table:
    """Figure 2: overall sales by store, opposite trend (interesting)."""
    stores = [store for store, _total in SCENARIO_A_TOTALS]
    totals = [total for _store, total in SCENARIO_A_TOTALS]
    return Table.from_columns(
        "scenario_a_by_store",
        {"store": stores, "total_sales": totals},
        roles=_ROLES,
        semantics={"store": "geography"},
    )


def scenario_b_comparison() -> Table:
    """Figure 3: overall sales by store, same trend (uninteresting)."""
    stores = [store for store, _total in SCENARIO_B_TOTALS]
    totals = [total for _store, total in SCENARIO_B_TOTALS]
    return Table.from_columns(
        "scenario_b_by_store",
        {"store": stores, "total_sales": totals},
        roles=_ROLES,
        semantics={"store": "geography"},
    )


def laserwave_sales_history(
    n_rows: int = 20_000, seed: int = 42, scenario: str = "a"
) -> Table:
    """A sales fact table whose Laserwave slice reproduces Table 1.

    Laserwave rows are fixed unit sales summing *exactly* to the Table 1
    totals per store. The remaining rows ("other products") are distributed
    across stores following Scenario A (opposite trend, default) or B
    (same trend), so SeeDB's utility for ``sum(amount) by store`` under
    ``product = 'Laserwave'`` is high for scenario A and low for B.
    """
    if scenario not in ("a", "b"):
        raise ValueError(f"scenario must be 'a' or 'b', got {scenario!r}")
    rng = derive_rng(seed)

    store_values: list[str] = []
    product_values: list[str] = []
    amount_values: list[float] = []
    month_values: list[int] = []

    # Laserwave rows: split each Table 1 total into 12 unit sales, one per
    # month, so the Laserwave's month distribution is exactly uniform and
    # only the *store* dimension carries the planted deviation.
    for store, total in TABLE_1_ROWS:
        n_units = 12
        # High Dirichlet concentration: unit amounts vary mildly around an
        # even split, so no month accidentally dominates.
        split = rng.dirichlet(np.full(n_units, 50.0)) * total
        split = np.round(split, 2)
        split[-1] = round(total - split[:-1].sum(), 2)  # exact total
        for month, amount in enumerate(split, start=1):
            store_values.append(store)
            product_values.append("Laserwave")
            amount_values.append(float(amount))
            month_values.append(month)

    # Other products: store distribution per the chosen scenario.
    totals = SCENARIO_A_TOTALS if scenario == "a" else SCENARIO_B_TOTALS
    weights = np.array([total for _store, total in totals])
    weights = weights / weights.sum()
    other_products = ("Saberwave", "Microwave", "Toaster", "Blender", "Kettle")
    n_other = max(n_rows - len(store_values), 0)
    store_choices = rng.choice(len(STORES), size=n_other, p=weights)
    scenario_stores = [store for store, _total in totals]
    for index in store_choices:
        store_values.append(scenario_stores[index])
        product_values.append(str(rng.choice(other_products)))
        amount_values.append(float(np.round(rng.gamma(2.0, 15.0), 2)))
        month_values.append(int(rng.integers(1, 13)))

    return Table.from_columns(
        "sales",
        {
            "store": store_values,
            "product": product_values,
            "month": month_values,
            "amount": amount_values,
        },
        roles={
            "store": AttributeRole.DIMENSION,
            "product": AttributeRole.DIMENSION,
            "month": AttributeRole.DIMENSION,
            "amount": AttributeRole.MEASURE,
        },
        semantics={"store": "geography", "month": "time"},
    )
