"""Medical cohort data: a MIMIC-II-like dataset (§4, dataset [2]).

"This real-world dataset exemplifies a dataset that a clinical researcher
might use. The schema of the dataset is significantly complex and it is of
larger size." The stand-in models ICU admissions with clinically plausible
planted effects:

* Emergency admissions have longer stays and higher mortality.
* Cardiac diagnoses concentrate in older age groups and the CCU.
* Sepsis drives the longest stays and highest lab counts.
"""

from __future__ import annotations

import numpy as np

from repro.db.table import Table
from repro.db.types import AttributeRole
from repro.util.rng import derive_rng

AGE_GROUPS = ("18-39", "40-59", "60-79", "80+")
ADMISSION_TYPES = ("Emergency", "Urgent", "Elective")
DIAGNOSES = ("Cardiac", "Sepsis", "Respiratory", "Neurological", "Trauma", "Renal")
ICU_UNITS = ("MICU", "SICU", "CCU", "CSRU")
GENDERS = ("F", "M")

_DIAGNOSIS_BY_AGE = {
    "18-39": (0.08, 0.12, 0.15, 0.20, 0.35, 0.10),
    "40-59": (0.20, 0.15, 0.18, 0.17, 0.18, 0.12),
    "60-79": (0.34, 0.18, 0.18, 0.12, 0.06, 0.12),
    "80+": (0.42, 0.20, 0.16, 0.10, 0.02, 0.10),
}
_UNIT_BY_DIAGNOSIS = {
    "Cardiac": (0.10, 0.08, 0.52, 0.30),
    "Sepsis": (0.60, 0.20, 0.08, 0.12),
    "Respiratory": (0.62, 0.16, 0.10, 0.12),
    "Neurological": (0.35, 0.45, 0.08, 0.12),
    "Trauma": (0.18, 0.64, 0.06, 0.12),
    "Renal": (0.55, 0.20, 0.10, 0.15),
}


def generate_medical(n_rows: int = 15_000, seed: int = 37) -> Table:
    """Generate the medical-cohort stand-in with planted clinical effects."""
    rng = derive_rng(seed)

    age_groups = rng.choice(AGE_GROUPS, size=n_rows, p=(0.18, 0.28, 0.36, 0.18))
    genders = rng.choice(GENDERS, size=n_rows, p=(0.46, 0.54))
    admission_types = rng.choice(ADMISSION_TYPES, size=n_rows, p=(0.55, 0.20, 0.25))
    diagnoses = np.array(
        [rng.choice(DIAGNOSES, p=_DIAGNOSIS_BY_AGE[age]) for age in age_groups],
        dtype=object,
    )
    icu_units = np.array(
        [rng.choice(ICU_UNITS, p=_UNIT_BY_DIAGNOSIS[d]) for d in diagnoses],
        dtype=object,
    )

    # Length of stay (days): sepsis and emergencies stay longer.
    los = rng.gamma(shape=1.8, scale=2.2, size=n_rows)
    los[diagnoses == "Sepsis"] *= 1.9
    los[admission_types == "Emergency"] *= 1.35
    los = np.round(np.clip(los, 0.25, 90.0), 2)

    lab_count = rng.poisson(lam=30, size=n_rows).astype(np.int64)
    lab_count[diagnoses == "Sepsis"] += rng.poisson(
        lam=25, size=int((diagnoses == "Sepsis").sum())
    )

    heart_rate = rng.normal(loc=84.0, scale=12.0, size=n_rows)
    heart_rate[diagnoses == "Cardiac"] += 9.0
    heart_rate = np.round(np.clip(heart_rate, 35, 180), 1)

    mortality_risk = (
        0.04
        + 0.05 * (admission_types == "Emergency")
        + 0.05 * (diagnoses == "Sepsis")
        + 0.04 * (age_groups == "80+")
    )
    mortality = (rng.random(n_rows) < mortality_risk).astype(np.int64)

    return Table.from_columns(
        "admissions",
        {
            "age_group": age_groups.tolist(),
            "gender": genders.tolist(),
            "admission_type": admission_types.tolist(),
            "diagnosis": diagnoses.tolist(),
            "icu_unit": icu_units.tolist(),
            "los_days": los,
            "lab_count": lab_count,
            "heart_rate_avg": heart_rate,
            "mortality": mortality,
        },
        roles={
            "age_group": AttributeRole.DIMENSION,
            "gender": AttributeRole.DIMENSION,
            "admission_type": AttributeRole.DIMENSION,
            "diagnosis": AttributeRole.DIMENSION,
            "icu_unit": AttributeRole.DIMENSION,
            "los_days": AttributeRole.MEASURE,
            "lab_count": AttributeRole.MEASURE,
            "heart_rate_avg": AttributeRole.MEASURE,
            "mortality": AttributeRole.MEASURE,
        },
    )
