"""Dataset registry: load any demo dataset by name."""

from __future__ import annotations

from typing import Callable

from repro.datasets.elections import generate_elections
from repro.datasets.laserwave import laserwave_sales_history
from repro.datasets.medical import generate_medical
from repro.datasets.store_orders import generate_store_orders
from repro.db.table import Table
from repro.util.errors import ConfigError

_GENERATORS: dict[str, Callable[..., Table]] = {
    "laserwave": laserwave_sales_history,
    "store_orders": generate_store_orders,
    "elections": generate_elections,
    "medical": generate_medical,
}


def available_datasets() -> list[str]:
    """Names accepted by :func:`load_dataset` (synthetic is configured via
    :func:`repro.datasets.synthetic.generate_synthetic` directly)."""
    return sorted(_GENERATORS)


def load_dataset(name: str, **kwargs) -> Table:
    """Generate a demo dataset by name, passing ``kwargs`` to its generator."""
    try:
        generator = _GENERATORS[name]
    except KeyError:
        raise ConfigError(
            f"unknown dataset {name!r}; available: {available_datasets()}"
        ) from None
    return generator(**kwargs)
