"""Store Orders: a Tableau-Superstore-like retail dataset (§4, dataset [4]).

"It consists of information about orders placed in a store including
products, prices, ship dates, geographical information, and profits.
Interesting trends in this dataset have been very well studied." The
generator plants documented trends that SeeDB should rediscover:

* Technology orders concentrate in the West and carry high profit.
* Furniture orders in the South are heavily discounted and lose money.
* Same-day shipping is rare and concentrated in Consumer orders.

``state`` is a deterministic refinement of ``region`` (high Cramér's V),
planted deliberately so correlation pruning has something real to find.
"""

from __future__ import annotations

from datetime import date, timedelta

import numpy as np

from repro.db.table import Table
from repro.db.types import AttributeRole
from repro.util.rng import derive_rng

REGIONS = ("West", "East", "Central", "South")
_STATES = {
    "West": ("California", "Washington", "Oregon", "Colorado"),
    "East": ("New York", "Pennsylvania", "Massachusetts", "Ohio"),
    "Central": ("Texas", "Illinois", "Michigan", "Minnesota"),
    "South": ("Florida", "Georgia", "Tennessee", "Alabama"),
}
CATEGORIES = ("Technology", "Furniture", "Office Supplies")
_SUB_CATEGORIES = {
    "Technology": ("Phones", "Machines", "Accessories", "Copiers"),
    "Furniture": ("Chairs", "Tables", "Bookcases", "Furnishings"),
    "Office Supplies": ("Paper", "Binders", "Storage", "Art"),
}
SHIP_MODES = ("Standard", "Second Class", "First Class", "Same Day")
SEGMENTS = ("Consumer", "Corporate", "Home Office")


def generate_store_orders(n_rows: int = 10_000, seed: int = 11) -> Table:
    """Generate the Store Orders stand-in with planted retail trends."""
    rng = derive_rng(seed)

    # Category mix differs by region: Technology skews West (planted trend).
    regions = rng.choice(REGIONS, size=n_rows, p=(0.30, 0.27, 0.23, 0.20))
    category_probabilities = {
        "West": (0.55, 0.20, 0.25),
        "East": (0.30, 0.30, 0.40),
        "Central": (0.28, 0.32, 0.40),
        "South": (0.20, 0.50, 0.30),
    }
    categories = np.array(
        [
            rng.choice(CATEGORIES, p=category_probabilities[region])
            for region in regions
        ],
        dtype=object,
    )
    states = np.array(
        [rng.choice(_STATES[region]) for region in regions], dtype=object
    )
    sub_categories = np.array(
        [rng.choice(_SUB_CATEGORIES[category]) for category in categories],
        dtype=object,
    )

    segments = rng.choice(SEGMENTS, size=n_rows, p=(0.52, 0.30, 0.18))
    ship_modes = np.where(
        (segments == "Consumer") & (rng.random(n_rows) < 0.12),
        "Same Day",
        rng.choice(SHIP_MODES[:3], size=n_rows, p=(0.62, 0.23, 0.15)),
    )

    start = date(2024, 1, 1)
    order_dates = [
        start + timedelta(days=int(offset))
        for offset in rng.integers(0, 365, size=n_rows)
    ]

    sales = np.round(rng.lognormal(mean=4.2, sigma=1.0, size=n_rows), 2)
    quantity = rng.integers(1, 10, size=n_rows)

    discount = np.round(rng.beta(1.2, 8.0, size=n_rows), 2)
    furniture_south = (categories == "Furniture") & (regions == "South")
    discount[furniture_south] = np.round(
        np.clip(discount[furniture_south] + 0.35, 0, 0.8), 2
    )

    margin = rng.normal(loc=0.12, scale=0.10, size=n_rows)
    margin[categories == "Technology"] += 0.10
    profit = np.round(sales * (margin - discount), 2)

    return Table.from_columns(
        "store_orders",
        {
            "order_date": order_dates,
            "ship_mode": ship_modes.tolist(),
            "segment": segments.tolist(),
            "region": regions.tolist(),
            "state": states.tolist(),
            "category": categories.tolist(),
            "sub_category": sub_categories.tolist(),
            "sales": sales,
            "quantity": quantity,
            "discount": discount,
            "profit": profit,
        },
        roles={
            "order_date": AttributeRole.DIMENSION,
            "ship_mode": AttributeRole.DIMENSION,
            "segment": AttributeRole.DIMENSION,
            "region": AttributeRole.DIMENSION,
            "state": AttributeRole.DIMENSION,
            "category": AttributeRole.DIMENSION,
            "sub_category": AttributeRole.DIMENSION,
            "sales": AttributeRole.MEASURE,
            "quantity": AttributeRole.MEASURE,
            "discount": AttributeRole.MEASURE,
            "profit": AttributeRole.MEASURE,
        },
        semantics={
            "order_date": "time",
            "region": "geography",
            "state": "geography",
        },
    )
