"""Synthetic datasets with knobs and planted ground truth (§4).

"We provide a set of synthetic datasets with varying sizes, number of
attributes, and data distributions to help attendees evaluate SEEDB
performance on diverse datasets." The generator exposes exactly those
knobs (rows, dimensions, measures, cardinality, value distribution) plus a
*planted-deviation* mechanism that creates ground truth for accuracy
experiments: a target segment whose conditional distribution over chosen
dimensions deviates sharply from the rest of the data, so views over
planted dimensions are objectively the interesting ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.db.expressions import Expression, col
from repro.db.table import Table
from repro.db.types import AttributeRole
from repro.model.view import ViewSpec
from repro.util.errors import ConfigError
from repro.util.rng import derive_rng, spawn_seeds


@dataclass(frozen=True)
class SyntheticConfig:
    """Knobs of the synthetic generator.

    ``dimension_distribution`` shapes how rows spread over dimension
    values: "uniform", "zipf" (skew controlled by ``zipf_exponent``), or
    "normal" (values near the middle of the domain more likely).
    """

    n_rows: int = 50_000
    n_dimensions: int = 5
    n_measures: int = 2
    cardinality: int = 20
    dimension_distribution: str = "uniform"
    zipf_exponent: float = 1.5
    measure_distribution: str = "lognormal"
    #: Dimensions (by index) whose target-segment distribution deviates.
    planted_dimensions: tuple[int, ...] = (0,)
    #: Fraction of rows in the target segment the query selects.
    target_fraction: float = 0.2
    #: Planted-deviation strength: probability mass concentrated on the
    #: first ``ceil(cardinality * concentration)`` values inside the target.
    concentration: float = 0.2

    def __post_init__(self) -> None:
        if self.n_rows < 1:
            raise ConfigError("n_rows must be >= 1")
        if self.n_dimensions < 1 or self.n_measures < 0:
            raise ConfigError("need >= 1 dimension and >= 0 measures")
        if self.cardinality < 2:
            raise ConfigError("cardinality must be >= 2")
        if self.dimension_distribution not in ("uniform", "zipf", "normal"):
            raise ConfigError(
                f"unknown dimension distribution {self.dimension_distribution!r}"
            )
        if self.measure_distribution not in ("lognormal", "normal", "uniform"):
            raise ConfigError(
                f"unknown measure distribution {self.measure_distribution!r}"
            )
        if not (0.0 < self.target_fraction < 1.0):
            raise ConfigError("target_fraction must be in (0, 1)")
        if not (0.0 < self.concentration <= 1.0):
            raise ConfigError("concentration must be in (0, 1]")
        for index in self.planted_dimensions:
            if not (0 <= index < self.n_dimensions):
                raise ConfigError(
                    f"planted dimension index {index} out of range "
                    f"[0, {self.n_dimensions})"
                )


@dataclass
class SyntheticDataset:
    """A generated table plus the ground truth SeeDB should recover."""

    table: Table
    #: The analyst query predicate selecting the target segment.
    predicate: Expression
    #: Dimension column names with planted deviations.
    planted_dimensions: tuple[str, ...]
    config: SyntheticConfig = field(repr=False, default=None)  # type: ignore[assignment]

    def is_planted(self, view: ViewSpec) -> bool:
        """Whether a view's dimension carries a planted deviation."""
        return view.dimension in self.planted_dimensions


def _base_probabilities(config: SyntheticConfig, rng) -> np.ndarray:
    """Marginal distribution over dimension values (the knob)."""
    cardinality = config.cardinality
    if config.dimension_distribution == "uniform":
        return np.full(cardinality, 1.0 / cardinality)
    if config.dimension_distribution == "zipf":
        ranks = np.arange(1, cardinality + 1, dtype=np.float64)
        weights = ranks ** (-config.zipf_exponent)
        return weights / weights.sum()
    # "normal": discretized bell over the domain.
    positions = np.linspace(-2.0, 2.0, cardinality)
    weights = np.exp(-0.5 * positions**2)
    return weights / weights.sum()


def _concentrated_probabilities(config: SyntheticConfig) -> np.ndarray:
    """Target-segment distribution for planted dimensions: almost all mass
    on the first few values, a little everywhere else (so supports match)."""
    cardinality = config.cardinality
    n_hot = max(int(np.ceil(cardinality * config.concentration)), 1)
    probabilities = np.full(cardinality, 0.05 / cardinality)
    probabilities[:n_hot] += 0.95 / n_hot
    return probabilities / probabilities.sum()


def generate_synthetic(
    config: "SyntheticConfig | None" = None,
    seed: int = 0,
    table_name: str = "synthetic",
) -> SyntheticDataset:
    """Generate a synthetic dataset per ``config``.

    The table has dimensions ``d0..d{k-1}`` (values ``d0=v000`` etc.), a
    ``segment`` dimension ("target"/"rest"), and measures ``m0..``.
    The analyst query is ``segment = 'target'``.
    """
    config = config if config is not None else SyntheticConfig()
    seeds = spawn_seeds(seed, config.n_dimensions + config.n_measures + 1)
    segment_rng = derive_rng(seeds[0])
    n = config.n_rows

    in_target = segment_rng.random(n) < config.target_fraction
    data: dict[str, list | np.ndarray] = {
        "segment": np.where(in_target, "target", "rest").tolist()
    }
    roles = {"segment": AttributeRole.DIMENSION}

    planted_names: list[str] = []
    for i in range(config.n_dimensions):
        name = f"d{i}"
        rng = derive_rng(seeds[1 + i])
        base = _base_probabilities(config, rng)
        codes = rng.choice(config.cardinality, size=n, p=base)
        if i in config.planted_dimensions:
            planted_names.append(name)
            hot = _concentrated_probabilities(config)
            n_target = int(in_target.sum())
            codes[in_target] = rng.choice(config.cardinality, size=n_target, p=hot)
        width = len(str(config.cardinality - 1))
        values = np.array(
            [f"{name}=v{code:0{width}d}" for code in range(config.cardinality)]
        )
        data[name] = values[codes].tolist()
        roles[name] = AttributeRole.DIMENSION

    for j in range(config.n_measures):
        name = f"m{j}"
        rng = derive_rng(seeds[1 + config.n_dimensions + j])
        if config.measure_distribution == "lognormal":
            values = rng.lognormal(mean=3.0, sigma=0.8, size=n)
        elif config.measure_distribution == "normal":
            values = rng.normal(loc=100.0, scale=20.0, size=n)
        else:
            values = rng.uniform(0.0, 200.0, size=n)
        data[name] = np.round(values, 4)
        roles[name] = AttributeRole.MEASURE

    table = Table.from_columns(table_name, data, roles=roles)
    return SyntheticDataset(
        table=table,
        predicate=(col("segment") == "target"),
        planted_dimensions=tuple(planted_names),
        config=config,
    )


def add_correlated_copy(
    table: Table,
    source: str,
    name: str,
    flip_fraction: float = 0.0,
    seed: int = 0,
) -> Table:
    """Extend ``table`` with a dimension derived from ``source``.

    With ``flip_fraction=0`` the copy is a bijective re-labeling (Cramér's
    V = 1 — the paper's "full airport name vs abbreviation" case); larger
    fractions add noise to weaken the association. Used by pruning tests
    and benchmark E17.
    """
    if not (0.0 <= flip_fraction <= 1.0):
        raise ConfigError("flip_fraction must be in [0, 1]")
    rng = derive_rng(seed)
    source_values = table.column(source)
    derived = np.array([f"copy({v})" for v in source_values], dtype=object)
    if flip_fraction > 0:
        uniques = np.unique(derived)
        flip = rng.random(len(derived)) < flip_fraction
        derived[flip] = rng.choice(uniques, size=int(flip.sum()))
    data = {col_name: table.column(col_name) for col_name in table.schema.names}
    data[name] = derived.tolist()
    roles = {spec.name: spec.role for spec in table.schema}
    roles[name] = AttributeRole.DIMENSION
    return Table.from_columns(table.name, data, roles=roles)


def add_constant_column(table: Table, name: str, value: str = "only") -> Table:
    """Extend ``table`` with a constant dimension (variance-pruning bait)."""
    data = {col_name: table.column(col_name) for col_name in table.schema.names}
    data[name] = [value] * table.num_rows
    roles = {spec.name: spec.role for spec in table.schema}
    roles[name] = AttributeRole.DIMENSION
    return Table.from_columns(table.name, data, roles=roles)
