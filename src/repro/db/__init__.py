"""In-memory column-store DBMS substrate.

SeeDB is "a layer on top of a traditional relational database system"
(paper §3.1). This package is that underlying system, built from scratch:
typed columns backed by numpy arrays, a predicate AST, single- and
multi-attribute group-by with algebraic aggregates, GROUPING SETS executed
in a single shared scan, and an execution engine with exact scan/row
accounting so the paper's shared-computation claims can be verified
deterministically rather than only by wall-clock time.
"""

from repro.db.types import DataType, AttributeRole, infer_data_type
from repro.db.schema import ColumnSpec, Schema
from repro.db.table import Table
from repro.db.expressions import (
    Expression,
    ColumnRef,
    Literal,
    Comparison,
    In,
    Between,
    And,
    Or,
    Not,
    TruePredicate,
    col,
)
from repro.db.aggregates import Aggregate, AGGREGATE_FUNCTIONS
from repro.db.query import AggregateQuery, FlagColumn, RowSelectQuery
from repro.db.engine import Engine, ExecutionStats
from repro.db.catalog import Catalog
from repro.db.csvio import read_csv, write_csv

__all__ = [
    "DataType",
    "AttributeRole",
    "infer_data_type",
    "ColumnSpec",
    "Schema",
    "Table",
    "Expression",
    "ColumnRef",
    "Literal",
    "Comparison",
    "In",
    "Between",
    "And",
    "Or",
    "Not",
    "TruePredicate",
    "col",
    "Aggregate",
    "AGGREGATE_FUNCTIONS",
    "AggregateQuery",
    "FlagColumn",
    "RowSelectQuery",
    "Engine",
    "ExecutionStats",
    "Catalog",
    "read_csv",
    "write_csv",
]
