"""Aggregate functions with mergeable partial states.

SeeDB's optimizer rewrites the target and comparison view queries into one
query grouped by ``(flag, a)`` (§3.3 "Combine target and comparison view
query"). Recovering the comparison view — which covers the *entire* table —
then requires merging the per-group aggregates of the flag=0 and flag=1
partitions. That only works for *algebraic* aggregates carried as partial
states (sum, count, min, max, sum of squares), so every aggregate here is
defined in terms of:

* ``compute_partials(values, codes, n_groups)`` — vectorized per-group state,
* ``merge_partials(a, b)`` — combine states of two disjoint row sets,
* ``finalize(partials)`` — produce the user-visible value.

Float inputs may contain NaN, which is treated like SQL NULL: excluded from
counts, sums, and extrema.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.util.errors import QueryError

Partials = dict[str, np.ndarray]


def _valid_mask(values: np.ndarray) -> np.ndarray | None:
    """Mask of non-NaN entries, or None when the dtype cannot hold NaN."""
    if values.dtype.kind == "f":
        return ~np.isnan(values)
    return None


def _grouped_sum(
    values: np.ndarray, codes: np.ndarray, n_groups: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-group (sum, valid-count), honouring NaN-as-NULL."""
    mask = _valid_mask(values)
    if mask is None:
        sums = np.bincount(codes, weights=values.astype(np.float64), minlength=n_groups)
        counts = np.bincount(codes, minlength=n_groups).astype(np.float64)
    else:
        sums = np.bincount(
            codes[mask], weights=values[mask].astype(np.float64), minlength=n_groups
        )
        counts = np.bincount(codes[mask], minlength=n_groups).astype(np.float64)
    return sums, counts


class AggregateFunction:
    """Base class; subclasses define one SQL-style aggregate."""

    name: str = ""
    requires_column = True

    def compute_partials(
        self, values: np.ndarray | None, codes: np.ndarray, n_groups: int
    ) -> Partials:
        raise NotImplementedError

    def merge_partials(self, a: Partials, b: Partials) -> Partials:
        """Combine the states of two disjoint row partitions (default: sum)."""
        return {key: a[key] + b[key] for key in a}

    def finalize(self, partials: Partials) -> np.ndarray:
        raise NotImplementedError


class CountFunction(AggregateFunction):
    """``COUNT(*)`` — row count per group (NaN rows still count)."""

    name = "count"
    requires_column = False

    def compute_partials(self, values, codes, n_groups):
        return {"count": np.bincount(codes, minlength=n_groups).astype(np.float64)}

    def finalize(self, partials):
        return partials["count"]


class SumFunction(AggregateFunction):
    """``SUM(m)`` — 0 for empty groups (more useful than SQL's NULL here,
    because view distributions treat an absent group as zero mass)."""

    name = "sum"

    def compute_partials(self, values, codes, n_groups):
        sums, counts = _grouped_sum(values, codes, n_groups)
        return {"sum": sums, "count": counts}

    def finalize(self, partials):
        return partials["sum"]


class AvgFunction(AggregateFunction):
    """``AVG(m)`` — NaN for groups with no valid values."""

    name = "avg"

    def compute_partials(self, values, codes, n_groups):
        sums, counts = _grouped_sum(values, codes, n_groups)
        return {"sum": sums, "count": counts}

    def finalize(self, partials):
        with np.errstate(invalid="ignore", divide="ignore"):
            result = partials["sum"] / partials["count"]
        return np.where(partials["count"] > 0, result, np.nan)


class _ExtremumFunction(AggregateFunction):
    """Shared machinery for MIN/MAX via ``ufunc.at`` scatter reduction."""

    _init_value: float
    _ufunc: np.ufunc

    def compute_partials(self, values, codes, n_groups):
        out = np.full(n_groups, self._init_value, dtype=np.float64)
        mask = _valid_mask(values)
        if mask is None:
            self._ufunc.at(out, codes, values.astype(np.float64))
            counts = np.bincount(codes, minlength=n_groups).astype(np.float64)
        else:
            self._ufunc.at(out, codes[mask], values[mask].astype(np.float64))
            counts = np.bincount(codes[mask], minlength=n_groups).astype(np.float64)
        return {"extreme": out, "count": counts}

    def merge_partials(self, a, b):
        return {
            "extreme": self._ufunc(a["extreme"], b["extreme"]),
            "count": a["count"] + b["count"],
        }

    def finalize(self, partials):
        return np.where(partials["count"] > 0, partials["extreme"], np.nan)


class MinFunction(_ExtremumFunction):
    """``MIN(m)``."""

    name = "min"
    _init_value = np.inf
    _ufunc = np.minimum


class MaxFunction(_ExtremumFunction):
    """``MAX(m)``."""

    name = "max"
    _init_value = -np.inf
    _ufunc = np.maximum


class VarFunction(AggregateFunction):
    """Population variance via the (sum, sum of squares, count) sketch."""

    name = "var"

    def compute_partials(self, values, codes, n_groups):
        mask = _valid_mask(values)
        as_float = values.astype(np.float64)
        if mask is None:
            sums = np.bincount(codes, weights=as_float, minlength=n_groups)
            sumsq = np.bincount(codes, weights=as_float**2, minlength=n_groups)
            counts = np.bincount(codes, minlength=n_groups).astype(np.float64)
        else:
            sums = np.bincount(codes[mask], weights=as_float[mask], minlength=n_groups)
            sumsq = np.bincount(
                codes[mask], weights=as_float[mask] ** 2, minlength=n_groups
            )
            counts = np.bincount(codes[mask], minlength=n_groups).astype(np.float64)
        return {"sum": sums, "sumsq": sumsq, "count": counts}

    def finalize(self, partials):
        counts = partials["count"]
        with np.errstate(invalid="ignore", divide="ignore"):
            mean = partials["sum"] / counts
            variance = partials["sumsq"] / counts - mean**2
        # Clamp tiny negative values caused by floating-point cancellation.
        variance = np.maximum(variance, 0.0)
        return np.where(counts > 0, variance, np.nan)


class StdFunction(VarFunction):
    """Population standard deviation (sqrt of :class:`VarFunction`)."""

    name = "std"

    def finalize(self, partials):
        return np.sqrt(super().finalize(partials))


class CountValidFunction(AggregateFunction):
    """``COUNT(m)`` — count of non-NULL (non-NaN) values of a column.

    Auxiliary aggregate used by the optimizer when decomposing AVG into
    mergeable parts (avg = sum / countv).
    """

    name = "countv"

    def compute_partials(self, values, codes, n_groups):
        _, counts = _grouped_sum(values, codes, n_groups)
        return {"count": counts}

    def finalize(self, partials):
        return partials["count"]


class SumSqFunction(AggregateFunction):
    """``SUM(m*m)`` — auxiliary aggregate for decomposed VAR/STD."""

    name = "sumsq"

    def compute_partials(self, values, codes, n_groups):
        mask = _valid_mask(values)
        as_float = values.astype(np.float64)
        if mask is None:
            sums = np.bincount(codes, weights=as_float**2, minlength=n_groups)
        else:
            sums = np.bincount(
                codes[mask], weights=as_float[mask] ** 2, minlength=n_groups
            )
        return {"sumsq": sums}

    def finalize(self, partials):
        return partials["sumsq"]


AGGREGATE_FUNCTIONS: Mapping[str, AggregateFunction] = {
    f.name: f
    for f in (
        CountFunction(),
        SumFunction(),
        AvgFunction(),
        MinFunction(),
        MaxFunction(),
        VarFunction(),
        StdFunction(),
        CountValidFunction(),
        SumSqFunction(),
    )
}


@dataclass(frozen=True)
class Aggregate:
    """One ``f(m)`` item in a SELECT list.

    ``column`` is None only for ``count`` (i.e. COUNT(*)). ``alias`` names
    the output column; it defaults to ``f(m)`` / ``count(*)``.
    """

    func: str
    column: str | None = None
    alias: str = field(default="")

    def __post_init__(self) -> None:
        if self.func not in AGGREGATE_FUNCTIONS:
            raise QueryError(
                f"unknown aggregate {self.func!r}; "
                f"available: {sorted(AGGREGATE_FUNCTIONS)}"
            )
        function = AGGREGATE_FUNCTIONS[self.func]
        if function.requires_column and self.column is None:
            raise QueryError(f"aggregate {self.func!r} requires a column")
        if not self.alias:
            default_alias = (
                f"{self.func}({self.column})" if self.column else f"{self.func}(*)"
            )
            object.__setattr__(self, "alias", default_alias)

    @property
    def function(self) -> AggregateFunction:
        """The implementing :class:`AggregateFunction`."""
        return AGGREGATE_FUNCTIONS[self.func]

    def __str__(self) -> str:
        return self.alias
