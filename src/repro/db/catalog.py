"""Catalog: the named-table registry of the in-memory DBMS."""

from __future__ import annotations

from typing import Iterator

from repro.db.table import Table
from repro.util.errors import SchemaError


class Catalog:
    """Maps table names to :class:`Table` objects.

    The engine resolves query table references here; the metadata collector
    walks it to gather statistics.
    """

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}

    def register(self, table: Table, replace: bool = False) -> None:
        """Add ``table`` under its own name. Re-registration requires
        ``replace=True`` to catch accidental clobbering."""
        if table.name in self._tables and not replace:
            raise SchemaError(
                f"table {table.name!r} already registered (pass replace=True)"
            )
        self._tables[table.name] = table

    def get(self, name: str) -> Table:
        """Look up a table; raises SchemaError with the available names."""
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError(
                f"no table named {name!r}; registered: {sorted(self._tables)}"
            ) from None

    def drop(self, name: str) -> None:
        """Remove a table (e.g. a materialized sample no longer needed)."""
        if name not in self._tables:
            raise SchemaError(f"cannot drop unknown table {name!r}")
        del self._tables[name]

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._tables))

    def __len__(self) -> int:
        return len(self._tables)

    def tables(self) -> list[Table]:
        """All registered tables, sorted by name."""
        return [self._tables[name] for name in sorted(self._tables)]
