"""CSV import/export with light type inference.

Lets the CLI and examples load real CSV files into the in-memory engine
(SeeDB's demo loads arbitrary datasets). Inference tries INT, then FLOAT,
then ISO dates, then BOOL, and falls back to STR; empty cells become NaN in
float columns and are rejected elsewhere (explicitly, with row numbers).
"""

from __future__ import annotations

import csv
from datetime import date, datetime
from pathlib import Path
from typing import Any, Mapping

from repro.db.table import Table
from repro.db.types import AttributeRole
from repro.util.errors import SchemaError

_TRUE_WORDS = {"true", "t", "yes"}
_FALSE_WORDS = {"false", "f", "no"}


def _parse_cell(text: str) -> Any:
    """Best-effort typed parse of one CSV cell."""
    stripped = text.strip()
    if stripped == "":
        return None
    try:
        return int(stripped)
    except ValueError:
        pass
    try:
        return float(stripped)
    except ValueError:
        pass
    lowered = stripped.lower()
    if lowered in _TRUE_WORDS:
        return True
    if lowered in _FALSE_WORDS:
        return False
    try:
        return datetime.strptime(stripped, "%Y-%m-%d").date()
    except ValueError:
        pass
    return stripped


def _unify_column(name: str, values: list[Any]) -> list[Any]:
    """Resolve mixed int/float columns and reject other mixtures."""
    kinds = {type(v) for v in values if v is not None}
    if kinds <= {int, float} and float in kinds:
        return [float(v) if v is not None else float("nan") for v in values]
    missing = [i for i, v in enumerate(values) if v is None]
    if missing:
        if kinds <= {float} or kinds <= {int, float}:
            return [float(v) if v is not None else float("nan") for v in values]
        raise SchemaError(
            f"column {name!r} has empty cells at rows {missing[:5]} "
            f"and is not numeric; fill or drop them first"
        )
    if len(kinds) > 1:
        # Mixed types that are not int/float: degrade to strings.
        return [str(v) for v in values]
    return values


def read_csv(
    path: "str | Path",
    table_name: str | None = None,
    roles: Mapping[str, AttributeRole] | None = None,
    max_rows: int | None = None,
) -> Table:
    """Load ``path`` into a typed :class:`Table`.

    ``roles`` overrides the inferred dimension/measure classification.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"{path} is empty") from None
        rows = []
        for i, row in enumerate(reader):
            if max_rows is not None and i >= max_rows:
                break
            rows.append([_parse_cell(cell) for cell in row])
    if not rows:
        raise SchemaError(f"{path} has a header but no data rows")
    columns = {
        name: _unify_column(name, [row[i] for row in rows])
        for i, name in enumerate(header)
    }
    return Table.from_columns(table_name or path.stem, columns, roles=roles)


def write_csv(table: Table, path: "str | Path") -> None:
    """Write ``table`` to ``path`` (ISO dates, empty string for NaN)."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.schema.names)
        for row in table.iter_rows():
            rendered = []
            for value in row:
                if value is None:
                    rendered.append("")
                elif isinstance(value, float) and value != value:  # NaN
                    rendered.append("")
                elif isinstance(value, date):
                    rendered.append(value.isoformat())
                else:
                    rendered.append(value)
            writer.writerow(rendered)
