"""The query execution engine of the in-memory DBMS.

Besides executing the three logical query shapes, the engine keeps exact
:class:`ExecutionStats` — table scans, rows scanned, queries executed — so
SeeDB's shared-computation optimizations (paper §3.3) can be validated by
counting work, not only by timing it. One executed query over a table of
``n`` rows costs one scan and ``n`` rows regardless of how many aggregates
or grouping sets it carries; that is exactly the sharing the optimizer
exploits.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from repro.db.aggregates import Aggregate
from repro.db.catalog import Catalog
from repro.db.groupby import (
    Factorization,
    aggregate_by_codes,
    finalize_aggregates,
)
from repro.db.grouping_sets import ColumnFactorizationCache, execute_sets_shared_scan
from repro.db.query import (
    AggregateQuery,
    FlagColumn,
    GroupingKey,
    GroupingSetsQuery,
    Query,
    RowSelectQuery,
    grouping_key_name,
)
from repro.db.schema import ColumnSpec, Schema
from repro.db.table import Table
from repro.db.types import AttributeRole, DataType, infer_data_type
from repro.util.errors import QueryError


@dataclass
class ExecutionStats:
    """Work counters accumulated by an :class:`Engine`."""

    queries: int = 0
    table_scans: int = 0
    rows_scanned: int = 0
    groups_produced: int = 0
    #: One engine serves every session of a service process; the lock keeps
    #: the counters exact when queries run on concurrent worker threads.
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def reset(self) -> None:
        """Zero all counters."""
        with self._lock:
            self.queries = 0
            self.table_scans = 0
            self.rows_scanned = 0
            self.groups_produced = 0

    def count_scan(self, rows: int) -> None:
        """Atomically record one query executing one scan over ``rows``."""
        with self._lock:
            self.queries += 1
            self.table_scans += 1
            self.rows_scanned += rows

    def count_groups(self, n: int) -> None:
        """Atomically record ``n`` output groups."""
        with self._lock:
            self.groups_produced += n

    def snapshot(self) -> "ExecutionStats":
        """An independent copy (for before/after diffs in benchmarks)."""
        return ExecutionStats(
            self.queries, self.table_scans, self.rows_scanned, self.groups_produced
        )

    def delta(self, before: "ExecutionStats") -> "ExecutionStats":
        """Counters accumulated since ``before``."""
        return ExecutionStats(
            self.queries - before.queries,
            self.table_scans - before.table_scans,
            self.rows_scanned - before.rows_scanned,
            self.groups_produced - before.groups_produced,
        )


@dataclass
class Engine:
    """Executes logical queries against tables registered in a catalog."""

    catalog: Catalog
    stats: ExecutionStats = field(default_factory=ExecutionStats)

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------

    def execute(self, query: Query) -> "Table | list[Table]":
        """Dispatch on the query shape."""
        if isinstance(query, RowSelectQuery):
            return self.execute_select(query)
        if isinstance(query, AggregateQuery):
            return self.execute_aggregate(query)
        if isinstance(query, GroupingSetsQuery):
            return self.execute_grouping_sets(query)
        raise QueryError(f"unsupported query type {type(query).__name__}")

    def execute_select(self, query: RowSelectQuery) -> Table:
        """Filter the base table by the query predicate (then LIMIT)."""
        table = self.catalog.get(query.table)
        self._count_scan(table)
        if query.predicate is not None:
            mask = query.predicate.evaluate(table)
            table = table.mask(mask, name=f"{table.name}_selected")
        if query.limit is not None:
            table = table.head(query.limit)
        return table

    def execute_aggregate(self, query: AggregateQuery) -> Table:
        """Filter, group, aggregate — one scan."""
        table = self.catalog.get(query.table)
        self._count_scan(table)
        filtered = self._apply_predicate(table, query.predicate)
        flag_arrays = self._materialize_flags(filtered, query.group_by)
        cache = ColumnFactorizationCache(filtered, flag_arrays)
        factorization = cache.factorize_set(query.group_by)
        measure_arrays = {
            aggregate.column: filtered.column(aggregate.column)
            for aggregate in query.aggregates
            if aggregate.column is not None
        }
        partials = aggregate_by_codes(factorization, measure_arrays, query.aggregates)
        finalized = finalize_aggregates(partials, query.aggregates)
        self.stats.count_groups(factorization.n_groups)
        return self._build_result(
            table, query.group_by, factorization, finalized, query.aggregates
        )

    def execute_grouping_sets(self, query: GroupingSetsQuery) -> list[Table]:
        """Execute all grouping sets over one shared scan."""
        table = self.catalog.get(query.table)
        self._count_scan(table)
        filtered = self._apply_predicate(table, query.predicate)
        all_keys = tuple(
            key for key_set in query.sets for key in key_set
        )
        flag_arrays = self._materialize_flags(filtered, all_keys)

        def build(factorization: Factorization, finalized, key_set):
            self.stats.count_groups(factorization.n_groups)
            return self._build_result(
                table, key_set, factorization, finalized, query.aggregates
            )

        return execute_sets_shared_scan(
            filtered, query.sets, query.aggregates, flag_arrays, build
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _count_scan(self, table: Table) -> None:
        self.stats.count_scan(table.num_rows)

    @staticmethod
    def _apply_predicate(table: Table, predicate) -> Table:
        if predicate is None:
            return table
        return table.mask(predicate.evaluate(table))

    @staticmethod
    def _materialize_flags(
        table: Table, keys: tuple[GroupingKey, ...]
    ) -> dict[str, np.ndarray]:
        """Evaluate every FlagColumn among ``keys`` to an int64 0/1 array."""
        flags: dict[str, np.ndarray] = {}
        for key in keys:
            if isinstance(key, FlagColumn) and key.name not in flags:
                flags[key.name] = key.predicate.evaluate(table).astype(np.int64)
        return flags

    @staticmethod
    def _build_result(
        base_table: Table,
        group_by: tuple[GroupingKey, ...],
        factorization: Factorization,
        finalized: dict[str, np.ndarray],
        aggregates: tuple[Aggregate, ...],
    ) -> Table:
        """Assemble the result table: key columns then aggregate columns."""
        specs: list[ColumnSpec] = []
        arrays: dict[str, np.ndarray] = {}
        for key in group_by:
            name = grouping_key_name(key)
            key_values = factorization.keys[name]
            if isinstance(key, FlagColumn):
                dtype = DataType.INT
                semantic = None
            else:
                base_spec = base_table.schema[name]
                dtype = base_spec.dtype
                semantic = base_spec.semantic
                if dtype is DataType.STR:
                    key_values = np.asarray(key_values, dtype=object)
            specs.append(ColumnSpec(name, dtype, AttributeRole.DIMENSION, semantic))
            arrays[name] = key_values
        for aggregate in aggregates:
            specs.append(
                ColumnSpec(aggregate.alias, DataType.FLOAT, AttributeRole.MEASURE)
            )
            # np.bincount yields int64 for empty inputs; results are FLOAT.
            arrays[aggregate.alias] = np.asarray(
                finalized[aggregate.alias], dtype=np.float64
            )
        key_names = "_".join(grouping_key_name(k) for k in group_by) or "all"
        return Table(f"{base_table.name}_by_{key_names}", Schema(tuple(specs)), arrays)


def infer_result_dtype(values: np.ndarray) -> DataType:
    """Data type of a computed result column (exported for backends)."""
    return infer_data_type(values)
