"""Predicate expression AST.

SeeDB input queries select "one or more rows from the fact table" (§2), so
the expression language covers the WHERE-clause subset needed for that:
comparisons, IN, BETWEEN, and boolean combinators. Every node knows how to

* evaluate itself to a boolean numpy mask against a :class:`Table`, and
* report the columns it references (used by the metadata access log).

SQL *rendering* lives in :mod:`repro.backends.sqlgen` and *parsing* in
:mod:`repro.sqlparser`, keeping this module dependency-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date
from typing import Any

import numpy as np

from repro.db.table import Table
from repro.util.errors import QueryError

_COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")


class Expression:
    """Base class for boolean predicate nodes."""

    def evaluate(self, table: Table) -> np.ndarray:
        """Return a boolean mask of the rows of ``table`` matching this node."""
        raise NotImplementedError

    def referenced_columns(self) -> frozenset[str]:
        """Names of all columns this predicate reads."""
        raise NotImplementedError

    # Convenience combinators so predicates compose fluently:
    def __and__(self, other: "Expression") -> "Expression":
        return And((self, other))

    def __or__(self, other: "Expression") -> "Expression":
        return Or((self, other))

    def __invert__(self) -> "Expression":
        return Not(self)


@dataclass(frozen=True)
class TruePredicate(Expression):
    """Matches every row; the identity element for AND."""

    def evaluate(self, table: Table) -> np.ndarray:
        return np.ones(table.num_rows, dtype=bool)

    def referenced_columns(self) -> frozenset[str]:
        return frozenset()


@dataclass(frozen=True)
class ColumnRef:
    """A reference to a column by name (operand of comparisons)."""

    name: str

    def values(self, table: Table) -> np.ndarray:
        return table.column(self.name)


@dataclass(frozen=True)
class Literal:
    """A constant operand."""

    value: Any


def _coerce_literal(value: Any) -> Any:
    """Normalize literals so comparisons against date columns work."""
    if isinstance(value, date) and not isinstance(value, np.datetime64):
        return np.datetime64(value, "D")
    return value


@dataclass(frozen=True)
class Comparison(Expression):
    """``column <op> literal`` for op in =, !=, <, <=, >, >=."""

    op: str
    column: ColumnRef
    literal: Literal

    def __post_init__(self) -> None:
        if self.op not in _COMPARISON_OPS:
            raise QueryError(
                f"unsupported comparison operator {self.op!r}; "
                f"expected one of {_COMPARISON_OPS}"
            )

    def evaluate(self, table: Table) -> np.ndarray:
        values = self.column.values(table)
        literal = _coerce_literal(self.literal.value)
        try:
            if self.op == "=":
                return values == literal
            if self.op == "!=":
                return values != literal
            if self.op == "<":
                return values < literal
            if self.op == "<=":
                return values <= literal
            if self.op == ">":
                return values > literal
            return values >= literal
        except TypeError as exc:
            raise QueryError(
                f"cannot compare column {self.column.name!r} with {literal!r}: {exc}"
            ) from exc

    def referenced_columns(self) -> frozenset[str]:
        return frozenset({self.column.name})


@dataclass(frozen=True)
class In(Expression):
    """``column IN (v1, v2, ...)``."""

    column: ColumnRef
    values: tuple[Any, ...]

    def evaluate(self, table: Table) -> np.ndarray:
        column_values = self.column.values(table)
        candidates = [_coerce_literal(v) for v in self.values]
        if not candidates:
            return np.zeros(table.num_rows, dtype=bool)
        return np.isin(column_values, candidates)

    def referenced_columns(self) -> frozenset[str]:
        return frozenset({self.column.name})


@dataclass(frozen=True)
class Between(Expression):
    """``column BETWEEN low AND high`` (inclusive, like SQL)."""

    column: ColumnRef
    low: Any
    high: Any

    def evaluate(self, table: Table) -> np.ndarray:
        values = self.column.values(table)
        low = _coerce_literal(self.low)
        high = _coerce_literal(self.high)
        return (values >= low) & (values <= high)

    def referenced_columns(self) -> frozenset[str]:
        return frozenset({self.column.name})


@dataclass(frozen=True)
class And(Expression):
    """Conjunction of two or more predicates."""

    operands: tuple[Expression, ...]

    def __post_init__(self) -> None:
        if len(self.operands) < 2:
            raise QueryError("And requires at least two operands")

    def evaluate(self, table: Table) -> np.ndarray:
        mask = self.operands[0].evaluate(table)
        for operand in self.operands[1:]:
            mask = mask & operand.evaluate(table)
        return mask

    def referenced_columns(self) -> frozenset[str]:
        return frozenset().union(*(op.referenced_columns() for op in self.operands))


@dataclass(frozen=True)
class Or(Expression):
    """Disjunction of two or more predicates."""

    operands: tuple[Expression, ...]

    def __post_init__(self) -> None:
        if len(self.operands) < 2:
            raise QueryError("Or requires at least two operands")

    def evaluate(self, table: Table) -> np.ndarray:
        mask = self.operands[0].evaluate(table)
        for operand in self.operands[1:]:
            mask = mask | operand.evaluate(table)
        return mask

    def referenced_columns(self) -> frozenset[str]:
        return frozenset().union(*(op.referenced_columns() for op in self.operands))


@dataclass(frozen=True)
class Not(Expression):
    """Negation."""

    operand: Expression

    def evaluate(self, table: Table) -> np.ndarray:
        return ~self.operand.evaluate(table)

    def referenced_columns(self) -> frozenset[str]:
        return self.operand.referenced_columns()


class _ColumnBuilder:
    """Fluent predicate builder: ``col('price') > 10`` etc.

    Returned by :func:`col`; the rich-comparison operators build
    :class:`Comparison` nodes so analyst-facing code reads naturally:

    >>> predicate = (col("product") == "Laserwave") & (col("amount") > 0)
    """

    def __init__(self, name: str) -> None:
        self._ref = ColumnRef(name)

    def __eq__(self, other: Any) -> Comparison:  # type: ignore[override]
        return Comparison("=", self._ref, Literal(other))

    def __ne__(self, other: Any) -> Comparison:  # type: ignore[override]
        return Comparison("!=", self._ref, Literal(other))

    def __lt__(self, other: Any) -> Comparison:
        return Comparison("<", self._ref, Literal(other))

    def __le__(self, other: Any) -> Comparison:
        return Comparison("<=", self._ref, Literal(other))

    def __gt__(self, other: Any) -> Comparison:
        return Comparison(">", self._ref, Literal(other))

    def __ge__(self, other: Any) -> Comparison:
        return Comparison(">=", self._ref, Literal(other))

    def isin(self, values: Any) -> In:
        return In(self._ref, tuple(values))

    def between(self, low: Any, high: Any) -> Between:
        return Between(self._ref, low, high)

    __hash__ = None  # type: ignore[assignment]  # == builds a node, not a bool


def col(name: str) -> _ColumnBuilder:
    """Entry point of the fluent predicate builder (see :class:`_ColumnBuilder`)."""
    return _ColumnBuilder(name)
