"""Vectorized group-by: factorization and grouped aggregation.

The executor's core primitive. A *factorization* maps each row to a dense
group code ``0..n_groups-1``; grouped aggregation then reduces measure
columns by code using the mergeable partial states of
:mod:`repro.db.aggregates`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.db.aggregates import Aggregate, Partials
from repro.util.errors import QueryError


@dataclass(frozen=True)
class Factorization:
    """Dense group codes for one or more key columns.

    ``keys`` holds, per key column, the distinct key value of each group
    (all arrays of length ``n_groups``, aligned with the codes).
    """

    codes: np.ndarray
    n_groups: int
    keys: dict[str, np.ndarray]

    @property
    def key_names(self) -> tuple[str, ...]:
        return tuple(self.keys)


def factorize(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Map ``values`` to dense codes; return ``(codes, uniques)``.

    Equivalent to pandas' ``factorize`` but ordered by sorted unique value,
    which makes group order deterministic across engines (SQL ``ORDER BY``
    and numpy both sort), an invariant the distribution-alignment code in
    :mod:`repro.metrics.normalize` relies on.
    """
    if values.dtype == object:
        # np.unique on object arrays requires orderable values; dimension
        # columns are strings by construction so plain unique works.
        uniques, codes = np.unique(values.astype(str), return_inverse=True)
        return codes, uniques
    uniques, codes = np.unique(values, return_inverse=True)
    return codes, uniques


def factorize_multi(
    arrays: dict[str, np.ndarray], n_rows: int
) -> Factorization:
    """Factorize the combination of several key columns in one pass.

    Single-column group-by (SeeDB's common case) short-circuits to
    :func:`factorize`. Multi-column keys are combined via mixed-radix codes
    then re-compacted, avoiding materializing row tuples.
    """
    if not arrays:
        # GROUP BY () — a single global group (used for table-level stats).
        return Factorization(
            codes=np.zeros(n_rows, dtype=np.int64), n_groups=1 if n_rows else 0, keys={}
        )

    names = list(arrays)
    if len(names) == 1:
        name = names[0]
        codes, uniques = factorize(arrays[name])
        return Factorization(codes=codes, n_groups=len(uniques), keys={name: uniques})

    per_column: list[tuple[np.ndarray, np.ndarray]] = [
        factorize(arrays[name]) for name in names
    ]
    combined = per_column[0][0].astype(np.int64)
    for codes, uniques in per_column[1:]:
        combined = combined * len(uniques) + codes
    compact_values, first_index, compact_codes = np.unique(
        combined, return_index=True, return_inverse=True
    )
    keys = {
        name: arrays[name][first_index] for name in names
    }
    return Factorization(
        codes=compact_codes, n_groups=len(compact_values), keys=keys
    )


def aggregate_by_codes(
    factorization: Factorization,
    measure_arrays: dict[str, np.ndarray],
    aggregates: tuple[Aggregate, ...],
) -> dict[str, Partials]:
    """Compute partial states for each aggregate under ``factorization``.

    Returns ``{alias: partials}``. Finalization into user-visible values is
    a separate step (:func:`finalize_aggregates`) so the optimizer can merge
    partials across partitions first.
    """
    partials_by_alias: dict[str, Partials] = {}
    for aggregate in aggregates:
        if aggregate.alias in partials_by_alias:
            raise QueryError(f"duplicate aggregate alias {aggregate.alias!r}")
        if aggregate.column is None:
            values = None
        else:
            if aggregate.column not in measure_arrays:
                raise QueryError(
                    f"aggregate {aggregate.alias!r} references missing column "
                    f"{aggregate.column!r}"
                )
            values = measure_arrays[aggregate.column]
        partials_by_alias[aggregate.alias] = aggregate.function.compute_partials(
            values, factorization.codes, factorization.n_groups
        )
    return partials_by_alias


def finalize_aggregates(
    partials_by_alias: dict[str, Partials],
    aggregates: tuple[Aggregate, ...],
) -> dict[str, np.ndarray]:
    """Turn partial states into final per-group values, ``{alias: array}``."""
    return {
        aggregate.alias: aggregate.function.finalize(partials_by_alias[aggregate.alias])
        for aggregate in aggregates
    }


def merge_aggregate_partials(
    a: dict[str, Partials],
    b: dict[str, Partials],
    aggregates: tuple[Aggregate, ...],
) -> dict[str, Partials]:
    """Merge two partial-state maps over the *same* group universe.

    Used when recovering the comparison view (all rows) from the flag=0 and
    flag=1 partitions of a combined query.
    """
    return {
        aggregate.alias: aggregate.function.merge_partials(
            a[aggregate.alias], b[aggregate.alias]
        )
        for aggregate in aggregates
    }
