"""Shared-scan execution of multiple group-by sets.

The heart of SeeDB's "Combine Multiple Group-bys" optimization on the
in-memory backend: the filtered table is scanned once, every referenced key
column is factorized once, and each grouping set reuses those cached
factorizations. With ``k`` sets over ``n`` rows this does one pass of
filtering plus one factorization per *distinct column* instead of ``k``
full passes.
"""

from __future__ import annotations

import numpy as np

from repro.db.aggregates import Aggregate
from repro.db.groupby import (
    Factorization,
    aggregate_by_codes,
    factorize,
    finalize_aggregates,
)
from repro.db.query import FlagColumn, GroupingKey, grouping_key_name
from repro.db.table import Table
from repro.util.errors import QueryError


class ColumnFactorizationCache:
    """Caches ``(codes, uniques)`` per key column of one (filtered) table."""

    def __init__(self, table: Table, flag_arrays: dict[str, np.ndarray]):
        self._table = table
        self._flag_arrays = flag_arrays
        self._cache: dict[str, tuple[np.ndarray, np.ndarray]] = {}

    def key_array(self, key: GroupingKey) -> np.ndarray:
        """Raw values of a grouping key (base column or materialized flag)."""
        name = grouping_key_name(key)
        if isinstance(key, FlagColumn):
            try:
                return self._flag_arrays[name]
            except KeyError:
                raise QueryError(
                    f"flag column {name!r} was not materialized before grouping"
                ) from None
        return self._table.column(name)

    def factorized(self, key: GroupingKey) -> tuple[np.ndarray, np.ndarray]:
        """Cached factorization of one grouping key."""
        name = grouping_key_name(key)
        if name not in self._cache:
            self._cache[name] = factorize(self.key_array(key))
        return self._cache[name]

    def factorize_set(self, keys: tuple[GroupingKey, ...]) -> Factorization:
        """Combined factorization for a grouping set, reusing column caches."""
        n_rows = self._table.num_rows
        if not keys:
            return Factorization(
                codes=np.zeros(n_rows, dtype=np.int64),
                n_groups=1 if n_rows else 0,
                keys={},
            )
        if len(keys) == 1:
            codes, uniques = self.factorized(keys[0])
            return Factorization(
                codes=codes,
                n_groups=len(uniques),
                keys={grouping_key_name(keys[0]): uniques},
            )
        combined = None
        per_key = []
        for key in keys:
            codes, uniques = self.factorized(key)
            per_key.append((grouping_key_name(key), codes, uniques))
            if combined is None:
                combined = codes.astype(np.int64)
            else:
                combined = combined * len(uniques) + codes
        assert combined is not None
        _, first_index, compact_codes = np.unique(
            combined, return_index=True, return_inverse=True
        )
        key_values = {
            name: self.key_array(key)[first_index]
            for key, (name, _, _) in zip(keys, per_key)
        }
        return Factorization(
            codes=compact_codes, n_groups=len(first_index), keys=key_values
        )


def execute_sets_shared_scan(
    table: Table,
    sets: tuple[tuple[GroupingKey, ...], ...],
    aggregates: tuple[Aggregate, ...],
    flag_arrays: dict[str, np.ndarray],
    build_result,
) -> list[Table]:
    """Execute every grouping set against ``table`` with shared work.

    ``build_result(factorization, finalized, set_keys)`` constructs the
    result table — injected by the engine so schema construction (and its
    dependency on the base schema) stays in one place.
    """
    cache = ColumnFactorizationCache(table, flag_arrays)
    results: list[Table] = []
    for key_set in sets:
        factorization = cache.factorize_set(key_set)
        measure_arrays = {
            aggregate.column: table.column(aggregate.column)
            for aggregate in aggregates
            if aggregate.column is not None
        }
        partials = aggregate_by_codes(factorization, measure_arrays, aggregates)
        finalized = finalize_aggregates(partials, aggregates)
        results.append(build_result(factorization, finalized, key_set))
    return results
