"""Logical query model shared by all backends.

Three query shapes cover everything SeeDB needs (paper §2-3):

* :class:`RowSelectQuery` — the analyst's input query ``Q`` selecting rows
  from the fact table (``SELECT * FROM t WHERE ...``).
* :class:`AggregateQuery` — a view query
  (``SELECT a, f(m) FROM t [WHERE ...] GROUP BY a``), possibly with several
  aggregates and several group-by keys after optimizer combining.
* :class:`GroupingSetsQuery` — several group-by sets over one scan
  (the "Combine Multiple Group-bys" optimization; SQL ``GROUPING SETS``).

Group-by keys are either plain column names or a :class:`FlagColumn` — a
virtual 0/1 column marking rows matched by a predicate, which is how the
optimizer folds target and comparison views into one query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.db.aggregates import Aggregate
from repro.db.expressions import Expression
from repro.util.errors import QueryError


@dataclass(frozen=True)
class FlagColumn:
    """Virtual column: 1 where ``predicate`` holds, else 0.

    Renders to SQL as ``CASE WHEN <predicate> THEN 1 ELSE 0 END AS <name>``.
    """

    name: str
    predicate: Expression

    def __post_init__(self) -> None:
        if not self.name:
            raise QueryError("flag column needs a name")


GroupingKey = Union[str, FlagColumn]


def grouping_key_name(key: GroupingKey) -> str:
    """The output column name of a grouping key."""
    return key if isinstance(key, str) else key.name


@dataclass(frozen=True)
class RowSelectQuery:
    """``SELECT * FROM table [WHERE predicate] [LIMIT n]`` — the analyst's
    query Q. ``limit`` serves frontend previews; view enumeration always
    works on the unlimited selection semantics (a LIMIT would make the
    target view depend on physical row order)."""

    table: str
    predicate: Expression | None = None
    limit: "int | None" = None

    def __post_init__(self) -> None:
        if self.limit is not None and self.limit < 0:
            raise QueryError(f"limit must be >= 0, got {self.limit}")


@dataclass(frozen=True)
class AggregateQuery:
    """``SELECT keys, aggs FROM table [WHERE predicate] GROUP BY keys``."""

    table: str
    group_by: tuple[GroupingKey, ...]
    aggregates: tuple[Aggregate, ...]
    predicate: Expression | None = None

    def __post_init__(self) -> None:
        if not self.aggregates:
            raise QueryError("aggregate query needs at least one aggregate")
        names = [grouping_key_name(key) for key in self.group_by]
        if len(set(names)) != len(names):
            raise QueryError(f"duplicate group-by keys: {names}")
        aliases = [a.alias for a in self.aggregates]
        if len(set(aliases)) != len(aliases):
            raise QueryError(f"duplicate aggregate aliases: {aliases}")
        overlap = set(names) & set(aliases)
        if overlap:
            raise QueryError(f"keys and aggregates share names: {sorted(overlap)}")

    @property
    def key_names(self) -> tuple[str, ...]:
        """Output names of the group-by keys, in order."""
        return tuple(grouping_key_name(key) for key in self.group_by)


@dataclass(frozen=True)
class GroupingSetsQuery:
    """Several group-by key sets evaluated over a single scan of ``table``.

    Execution yields one result table per set, in order. Equivalent to SQL's
    ``GROUP BY GROUPING SETS ((s1...), (s2...))`` followed by splitting the
    result by set.
    """

    table: str
    sets: tuple[tuple[GroupingKey, ...], ...]
    aggregates: tuple[Aggregate, ...]
    predicate: Expression | None = None

    def __post_init__(self) -> None:
        if not self.sets:
            raise QueryError("grouping-sets query needs at least one set")
        if not self.aggregates:
            raise QueryError("grouping-sets query needs at least one aggregate")

    def as_single_queries(self) -> tuple[AggregateQuery, ...]:
        """The semantically equivalent independent queries (for fallback
        execution on backends without shared-scan support)."""
        return tuple(
            AggregateQuery(
                table=self.table,
                group_by=key_set,
                aggregates=self.aggregates,
                predicate=self.predicate,
            )
            for key_set in self.sets
        )


Query = Union[RowSelectQuery, AggregateQuery, GroupingSetsQuery]
