"""Table schemas with SeeDB dimension/measure annotations.

A :class:`Schema` is an ordered collection of :class:`ColumnSpec`. Besides
the storage type, each column carries its SeeDB :class:`AttributeRole`,
because the candidate-view space of §2 is the cross product
``dimensions × measures × aggregate functions``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db.types import AttributeRole, DataType
from repro.util.errors import SchemaError


@dataclass(frozen=True)
class ColumnSpec:
    """Declaration of one column: name, storage type, SeeDB role.

    ``semantic`` optionally tags domain meaning ("geography", "time",
    "currency", ...) which the visualization layer uses when choosing chart
    types (paper §3.2: "semantics (e.g. geography vs. time series)").
    """

    name: str
    dtype: DataType
    role: AttributeRole
    semantic: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("column name must be non-empty")
        if self.role is AttributeRole.MEASURE and not self.dtype.is_numeric:
            raise SchemaError(
                f"column {self.name!r}: measures must be numeric, got {self.dtype.value}"
            )


@dataclass(frozen=True)
class Schema:
    """An ordered, name-unique collection of column specs."""

    columns: tuple[ColumnSpec, ...]
    _by_name: dict = field(init=False, repr=False, compare=False, hash=False)

    def __post_init__(self) -> None:
        by_name: dict[str, ColumnSpec] = {}
        for spec in self.columns:
            if spec.name in by_name:
                raise SchemaError(f"duplicate column name {spec.name!r}")
            by_name[spec.name] = spec
        object.__setattr__(self, "_by_name", by_name)

    @classmethod
    def of(cls, *columns: ColumnSpec) -> "Schema":
        """Convenience constructor from varargs."""
        return cls(tuple(columns))

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self):
        return iter(self.columns)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> ColumnSpec:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(
                f"no column named {name!r}; available: {sorted(self._by_name)}"
            ) from None

    @property
    def names(self) -> tuple[str, ...]:
        """Column names in declaration order."""
        return tuple(spec.name for spec in self.columns)

    @property
    def dimensions(self) -> tuple[ColumnSpec, ...]:
        """Columns usable as SeeDB group-by attributes (the set ``A``)."""
        return tuple(s for s in self.columns if s.role is AttributeRole.DIMENSION)

    @property
    def measures(self) -> tuple[ColumnSpec, ...]:
        """Columns usable as SeeDB aggregation attributes (the set ``M``)."""
        return tuple(s for s in self.columns if s.role is AttributeRole.MEASURE)

    def require(self, name: str, role: AttributeRole | None = None) -> ColumnSpec:
        """Look up ``name``, optionally asserting its role; raise SchemaError otherwise."""
        spec = self[name]
        if role is not None and spec.role is not role:
            raise SchemaError(
                f"column {name!r} has role {spec.role.value}, expected {role.value}"
            )
        return spec

    def with_roles(self, roles: dict[str, AttributeRole]) -> "Schema":
        """Return a copy with the given columns' roles replaced."""
        unknown = set(roles) - set(self._by_name)
        if unknown:
            raise SchemaError(f"unknown columns in role override: {sorted(unknown)}")
        return Schema(
            tuple(
                ColumnSpec(s.name, s.dtype, roles.get(s.name, s.role), s.semantic)
                for s in self.columns
            )
        )
