"""Columnar tables: the storage layer of the in-memory DBMS.

A :class:`Table` stores each column as one numpy array (column-major, like
an analytics engine), which makes SeeDB's workload — scan, filter, group,
aggregate — vectorizable. Tables are immutable by convention: operations
return new tables sharing column arrays where possible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.db.schema import ColumnSpec, Schema
from repro.db.types import AttributeRole, DataType, coerce_array, default_role, infer_data_type
from repro.util.errors import SchemaError


@dataclass(frozen=True)
class Table:
    """A named, schema-typed columnar table.

    Invariants (checked at construction): every schema column has exactly one
    array, all arrays are one-dimensional and of equal length, and each
    array's dtype matches its declared :class:`DataType`.
    """

    name: str
    schema: Schema
    columns: Mapping[str, np.ndarray]

    def __post_init__(self) -> None:
        missing = set(self.schema.names) - set(self.columns)
        extra = set(self.columns) - set(self.schema.names)
        if missing or extra:
            raise SchemaError(
                f"table {self.name!r}: schema/column mismatch "
                f"(missing={sorted(missing)}, extra={sorted(extra)})"
            )
        lengths = {name: len(array) for name, array in self.columns.items()}
        if len(set(lengths.values())) > 1:
            raise SchemaError(f"table {self.name!r}: ragged columns {lengths}")
        for spec in self.schema:
            array = self.columns[spec.name]
            if array.ndim != 1:
                raise SchemaError(
                    f"column {spec.name!r} must be 1-D, got shape {array.shape}"
                )
            expected = spec.dtype.numpy_dtype
            if array.dtype != expected and not (
                spec.dtype is DataType.DATE and array.dtype.kind == "M"
            ):
                raise SchemaError(
                    f"column {spec.name!r}: dtype {array.dtype} != declared {expected}"
                )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_columns(
        cls,
        name: str,
        data: Mapping[str, Sequence[Any]],
        roles: Mapping[str, AttributeRole] | None = None,
        semantics: Mapping[str, str] | None = None,
    ) -> "Table":
        """Build a table from ``{column: values}``, inferring types and roles.

        ``roles`` overrides the heuristic dimension/measure classification
        (:func:`repro.db.types.default_role`) per column.
        """
        roles = dict(roles or {})
        semantics = dict(semantics or {})
        specs: list[ColumnSpec] = []
        arrays: dict[str, np.ndarray] = {}
        for column_name, values in data.items():
            dtype = infer_data_type(values)
            array = coerce_array(values, dtype)
            n_rows = len(array)
            if column_name in roles:
                role = roles[column_name]
            else:
                distinct_fraction = (
                    len(np.unique(array)) / n_rows if n_rows and dtype.is_numeric else 0.0
                )
                role = default_role(dtype, distinct_fraction)
            specs.append(
                ColumnSpec(column_name, dtype, role, semantics.get(column_name))
            )
            arrays[column_name] = array
        return cls(name, Schema(tuple(specs)), arrays)

    @classmethod
    def from_rows(
        cls,
        name: str,
        header: Sequence[str],
        rows: Iterable[Sequence[Any]],
        roles: Mapping[str, AttributeRole] | None = None,
    ) -> "Table":
        """Build a table from a header and row tuples (row-major input)."""
        materialized = [list(row) for row in rows]
        for i, row in enumerate(materialized):
            if len(row) != len(header):
                raise SchemaError(
                    f"row {i} has {len(row)} cells, header has {len(header)}"
                )
        data = {
            column: [row[i] for row in materialized]
            for i, column in enumerate(header)
        }
        return cls.from_columns(name, data, roles=roles)

    @classmethod
    def empty_like(cls, other: "Table", name: str | None = None) -> "Table":
        """An empty table with ``other``'s schema."""
        arrays = {
            spec.name: np.empty(0, dtype=other.columns[spec.name].dtype)
            for spec in other.schema
        }
        return cls(name or other.name, other.schema, arrays)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_rows(self) -> int:
        """Row count."""
        if not self.schema.columns:
            return 0
        return len(self.columns[self.schema.columns[0].name])

    def __len__(self) -> int:
        return self.num_rows

    def column(self, name: str) -> np.ndarray:
        """The backing array for ``name`` (raises SchemaError if unknown)."""
        self.schema[name]  # validates
        return self.columns[name]

    def row(self, index: int) -> dict[str, Any]:
        """Row ``index`` as a ``{column: value}`` dict (for tests/debugging)."""
        return {name: self.columns[name][index] for name in self.schema.names}

    def iter_rows(self) -> Iterator[tuple[Any, ...]]:
        """Iterate rows as tuples in schema order. O(rows) — debugging only."""
        arrays = [self.columns[name] for name in self.schema.names]
        for i in range(self.num_rows):
            yield tuple(array[i] for array in arrays)

    def to_rows(self) -> list[tuple[Any, ...]]:
        """All rows as a list of tuples (small tables / tests)."""
        return list(self.iter_rows())

    # ------------------------------------------------------------------
    # Relational operations (return new tables)
    # ------------------------------------------------------------------

    def mask(self, keep: np.ndarray, name: str | None = None) -> "Table":
        """Select the rows where boolean array ``keep`` is True."""
        if keep.dtype != np.bool_ or keep.shape != (self.num_rows,):
            raise SchemaError(
                f"mask must be a boolean array of length {self.num_rows}"
            )
        arrays = {col: array[keep] for col, array in self.columns.items()}
        return Table(name or self.name, self.schema, arrays)

    def take(self, indices: np.ndarray, name: str | None = None) -> "Table":
        """Select rows by integer position (used by samplers)."""
        arrays = {col: array[indices] for col, array in self.columns.items()}
        return Table(name or self.name, self.schema, arrays)

    def select_columns(self, names: Sequence[str], name: str | None = None) -> "Table":
        """Project onto ``names`` preserving their given order."""
        specs = tuple(self.schema[n] for n in names)
        arrays = {n: self.columns[n] for n in names}
        return Table(name or self.name, Schema(specs), arrays)

    def rename(self, name: str) -> "Table":
        """The same table under a new name."""
        return Table(name, self.schema, self.columns)

    def head(self, n: int = 5) -> "Table":
        """The first ``n`` rows (for previews and view metadata)."""
        arrays = {col: array[:n] for col, array in self.columns.items()}
        return Table(self.name, self.schema, arrays)

    def concat(self, other: "Table", name: str | None = None) -> "Table":
        """Rows of ``self`` followed by rows of ``other`` (schemas must match)."""
        if self.schema.names != other.schema.names:
            raise SchemaError(
                f"cannot concat tables with different columns: "
                f"{self.schema.names} vs {other.schema.names}"
            )
        arrays = {
            col: np.concatenate([self.columns[col], other.columns[col]])
            for col in self.schema.names
        }
        return Table(name or self.name, self.schema, arrays)

    def nbytes(self) -> int:
        """Approximate in-memory footprint of the column arrays."""
        total = 0
        for array in self.columns.values():
            if array.dtype == object:
                total += sum(len(str(v)) for v in array) + 8 * len(array)
            else:
                total += array.nbytes
        return total

    def __repr__(self) -> str:
        return (
            f"Table({self.name!r}, rows={self.num_rows}, "
            f"columns={list(self.schema.names)})"
        )
