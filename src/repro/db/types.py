"""Column data types and attribute roles.

SeeDB's problem statement (§2) assumes a snowflake schema whose attributes
are partitioned into *dimension* attributes ``A`` (group-by candidates) and
*measure* attributes ``M`` (aggregation candidates). The storage type and
the role are independent: an integer column may be a dimension (e.g. a year)
or a measure (e.g. a quantity).
"""

from __future__ import annotations

import enum
from datetime import date
from typing import Any

import numpy as np

from repro.util.errors import SchemaError


class DataType(enum.Enum):
    """Storage type of a column, mapped onto a numpy dtype."""

    INT = "int"
    FLOAT = "float"
    STR = "str"
    BOOL = "bool"
    DATE = "date"

    @property
    def numpy_dtype(self) -> np.dtype:
        """The numpy dtype used to store columns of this type."""
        return _NUMPY_DTYPES[self]

    @property
    def is_numeric(self) -> bool:
        """Whether values support arithmetic (candidates for measures)."""
        return self in (DataType.INT, DataType.FLOAT)

    @property
    def is_orderable(self) -> bool:
        """Whether values have a natural total order (for line charts etc.)."""
        return self in (DataType.INT, DataType.FLOAT, DataType.DATE)


_NUMPY_DTYPES = {
    DataType.INT: np.dtype(np.int64),
    DataType.FLOAT: np.dtype(np.float64),
    DataType.STR: np.dtype(object),
    DataType.BOOL: np.dtype(np.bool_),
    DataType.DATE: np.dtype("datetime64[D]"),
}


class AttributeRole(enum.Enum):
    """SeeDB role of a column (paper §2): group-by key or aggregand."""

    DIMENSION = "dimension"
    MEASURE = "measure"
    IGNORED = "ignored"  # e.g. primary keys: neither grouped nor aggregated


def infer_data_type(values: Any) -> DataType:
    """Infer the :class:`DataType` of a sequence of Python/numpy values.

    Inference looks at the first non-``None`` value; mixed-type columns are
    rejected during coercion (:func:`coerce_array`), not here.
    """
    array = np.asarray(values) if not isinstance(values, np.ndarray) else values
    if array.dtype.kind in ("i", "u"):
        return DataType.INT
    if array.dtype.kind == "f":
        return DataType.FLOAT
    if array.dtype.kind == "b":
        return DataType.BOOL
    if array.dtype.kind == "M":
        return DataType.DATE
    if array.dtype.kind in ("U", "S"):
        return DataType.STR
    # Object array: inspect the first non-None element.
    for value in array.ravel():
        if value is None:
            continue
        if isinstance(value, bool):
            return DataType.BOOL
        if isinstance(value, (int, np.integer)):
            return DataType.INT
        if isinstance(value, (float, np.floating)):
            return DataType.FLOAT
        if isinstance(value, (date, np.datetime64)):
            return DataType.DATE
        if isinstance(value, str):
            return DataType.STR
        raise SchemaError(f"cannot infer a column type for value {value!r}")
    raise SchemaError("cannot infer a column type from all-None values")


def coerce_array(values: Any, dtype: DataType) -> np.ndarray:
    """Coerce ``values`` into the canonical numpy array for ``dtype``.

    Raises :class:`SchemaError` when a value does not fit the declared type
    (e.g. a string in an INT column), so type errors surface at load time
    rather than mid-query.
    """
    try:
        if dtype is DataType.STR:
            array = np.empty(len(values), dtype=object)
            for i, value in enumerate(values):
                if value is not None and not isinstance(value, str):
                    raise SchemaError(
                        f"expected str at index {i}, got {type(value).__name__}"
                    )
                array[i] = value
            return array
        return np.asarray(values, dtype=dtype.numpy_dtype)
    except (ValueError, TypeError) as exc:
        raise SchemaError(f"cannot coerce values to {dtype.value}: {exc}") from exc


def default_role(dtype: DataType, distinct_fraction: float = 0.0) -> AttributeRole:
    """Heuristic role for a column when the user does not declare one.

    Numeric columns default to measures; everything else to dimensions.
    A numeric column whose distinct-value fraction is very low (a code or
    category stored as an integer) is classified as a dimension instead —
    the same heuristic real BI tools apply when profiling a table.
    """
    if dtype.is_numeric:
        if 0.0 < distinct_fraction <= 0.01:
            return AttributeRole.DIMENSION
        return AttributeRole.MEASURE
    return AttributeRole.DIMENSION
