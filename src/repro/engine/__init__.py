"""Phase-based execution engine: the one pipeline behind every strategy.

Figure 4 names the stages — Metadata Collector, Query Generator,
Optimizer, DBMS, View Processor, top-k — and this package makes each an
explicit, independently timed, swappable :class:`Phase`. The batch
recommender, incremental (phased + Hoeffding-pruned) execution, and
multi-attribute views are all phase lists over the same
:class:`ExecutionEngine`, which owns the session cache and the persistent
worker pool.
"""

from repro.engine.cache import SAMPLE_SUFFIX, CacheStats, EngineCache, SessionCache
from repro.engine.context import ExecutionContext, describe_predicate
from repro.engine.engine import ExecutionEngine
from repro.engine.incremental import (
    BOUNDED_METRICS,
    DimensionState,
    IncrementalRound,
    IncrementalScorePhase,
    IncrementalTrace,
    PhasedExecutePhase,
    TRACE_KEY,
)
from repro.engine.multiview import (
    DropEmptyViewsPhase,
    MultiViewEnumeratePhase,
    MultiViewPlanPhase,
    MultiViewPrunePhase,
)
from repro.engine.phases import (
    CostBasedPlanner,
    EnumeratePhase,
    ExecutePhase,
    MetadataPhase,
    Phase,
    PlanPhase,
    PrunePhase,
    SamplePhase,
    ScorePhase,
    SelectPhase,
    default_phases,
)

__all__ = [
    "ExecutionEngine",
    "ExecutionContext",
    "SessionCache",
    "EngineCache",
    "CacheStats",
    "SAMPLE_SUFFIX",
    "describe_predicate",
    "Phase",
    "MetadataPhase",
    "EnumeratePhase",
    "PrunePhase",
    "SamplePhase",
    "PlanPhase",
    "CostBasedPlanner",
    "ExecutePhase",
    "ScorePhase",
    "SelectPhase",
    "default_phases",
    "PhasedExecutePhase",
    "IncrementalRound",
    "IncrementalScorePhase",
    "IncrementalTrace",
    "DimensionState",
    "BOUNDED_METRICS",
    "TRACE_KEY",
    "MultiViewEnumeratePhase",
    "MultiViewPrunePhase",
    "MultiViewPlanPhase",
    "DropEmptyViewsPhase",
]
