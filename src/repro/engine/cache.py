"""Caches over one backend, keyed on its data version.

Repeated ``recommend()`` calls in an analyst session hit the same table
with different predicates; the schema, the metadata statistics, the base
table materialization, and any sampled execution table are all invariant
until the data changes. The cache keys every entry on the backend's
``data_version`` counter (bumped by ``register_table``/``drop_table``):
an unchanged counter means cache hits and strictly fewer DBMS round trips,
a changed counter evicts everything — including materialized
``__seedb_sample`` tables, which the cache owns and drops (the sample-leak
fix: samples never outlive the data they were drawn from, and
:meth:`SessionCache.close` removes them at session end).

Two layers share the implementation:

* :class:`SessionCache` — one cache instance, now internally synchronized
  (every lookup/eviction runs under one re-entrant lock, so eviction can
  never race a ``data_version`` bump observed by ``sync``);
* :class:`EngineCache` — the shared, refcounted per-backend promotion of
  the same cache: every engine on one backend gets the *same* instance
  via :meth:`EngineCache.acquire`, so concurrent sessions reuse schema,
  metadata, and materialized samples. The last release closes it.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass, field

from repro.backends.base import Backend, collect_statistics, materialize_sample
from repro.db.table import Table
from repro.metadata.calibration import CalibrationStore
from repro.metadata.collector import MetadataCollector, TableMetadata
from repro.metadata.stats import TableProfile

#: Suffix of cache-owned sampled execution tables.
SAMPLE_SUFFIX = "__seedb_sample"


def sample_table_name(source: str, fraction: float, seed: int) -> str:
    """Deterministic sample-table name encoding its knobs.

    Encoding fraction and seed keeps two sessions sharing one backend from
    clobbering each other's samples: equal names imply equal content (both
    samplers are seed-deterministic), different knobs get different tables.
    """
    return f"{source}{SAMPLE_SUFFIX}_{int(round(fraction * 1_000_000))}_{seed}"


@dataclass
class CacheStats:
    """Observability counters (asserted on by the cache tests)."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    samples_dropped: int = 0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.samples_dropped = 0


@dataclass
class _SampleEntry:
    """One materialized sample: its name plus the knobs that produced it."""

    name: str
    fraction: float
    seed: int


class SessionCache:
    """Caches schema / base-table / metadata / row-count / sample lookups.

    Internally synchronized: every lookup, eviction, and :meth:`sync` runs
    under one re-entrant lock, so concurrent ``recommend()`` calls may
    share an instance. Holding the lock across the miss path doubles as
    request coalescing — two sessions asking for the same metadata compute
    it once, not twice.
    """

    def __init__(self, backend: Backend):
        self.backend = backend
        self.stats = CacheStats()
        self._lock = threading.RLock()
        self._version: "int | None" = None  # guarded-by: _lock
        self._schemas: dict = {}  # guarded-by: _lock
        # (name, max_rows) -> Table
        self._tables: dict = {}  # guarded-by: _lock
        # (name, max_rows) -> TableMetadata
        self._metadata: dict[tuple, TableMetadata] = {}  # guarded-by: _lock
        self._row_counts: dict[str, int] = {}  # guarded-by: _lock
        # source -> entry
        self._samples: dict[str, _SampleEntry] = {}  # guarded-by: _lock
        self._profiles: dict[str, TableProfile] = {}  # guarded-by: _lock
        #: Cost-model calibration — deliberately *not* keyed on
        #: ``data_version`` and never evicted by :meth:`invalidate`:
        #: per-unit costs describe the machine and backend, not the data.
        #: Shared through :class:`EngineCache`, so every engine, service
        #: worker, and cluster replica on one backend learns from all runs.
        self.calibration = CalibrationStore(
            path=getattr(backend, "calibration_path", None)
        )

    # -- lifecycle -------------------------------------------------------

    def sync(self) -> None:
        """Validate the cache against the backend's current data version.

        On mismatch every entry is evicted and cache-owned sample tables
        are dropped; the version is re-read *after* the drops so the
        cache's own maintenance does not invalidate the next run. Runs
        entirely under the cache lock, so an eviction can never interleave
        with another session's lookup of a half-cleared cache.
        """
        with self._lock:
            version = self.backend.data_version
            if self._version is not None and version != self._version:
                self.invalidate()
            self._version = self.backend.data_version

    def invalidate(self) -> None:
        """Evict everything and drop owned sample tables."""
        with self._lock:
            self.drop_samples()
            self._schemas.clear()
            self._tables.clear()
            self._metadata.clear()
            self._row_counts.clear()
            self._profiles.clear()
            self.stats.invalidations += 1

    def drop_samples(self) -> None:
        """Drop every cache-owned materialized sample table."""
        with self._lock:
            for entry in list(self._samples.values()):
                self._drop_owned(entry.name)
            self._samples.clear()

    def _drop_owned(self, name: str) -> None:
        """Drop a cache-owned table without self-invalidating.

        ``drop_table`` bumps the backend's data version; re-reading it here
        keeps the cache's own maintenance from looking like an external
        data change on the next :meth:`sync`. Caller holds the lock.
        """
        if self.backend.has_table(name):
            self.backend.drop_table(name)
            self.stats.samples_dropped += 1
        if self._version is not None:
            self._version = self.backend.data_version

    def close(self) -> None:
        """End-of-session cleanup: evict and drop samples."""
        with self._lock:
            self.invalidate()
            self._version = None

    # -- cached lookups ---------------------------------------------------

    def schema(self, table: str):
        with self._lock:
            if table not in self._schemas:
                self.stats.misses += 1
                self._schemas[table] = self.backend.schema(table)
            else:
                self.stats.hits += 1
            return self._schemas[table]

    def base_table(self, table: str, max_rows: "int | None" = None) -> Table:
        """A (possibly row-capped) materialization of ``table``.

        Bounded memory: a full materialization serves every capped request
        by slicing, and fetching the full table evicts any capped copies —
        at most one stored materialization per table once the full one
        exists.
        """
        with self._lock:
            full = self._tables.get((table, None))
            if full is not None:
                self.stats.hits += 1
                if max_rows is not None and full.num_rows > max_rows:
                    return full.head(max_rows)
                return full
            key = (table, max_rows)
            if key not in self._tables:
                self.stats.misses += 1
                fetched = self.backend.fetch_table(table, max_rows=max_rows)
                if max_rows is None:
                    for stale in [k for k in self._tables if k[0] == table]:
                        del self._tables[stale]
                self._tables[key] = fetched
            else:
                self.stats.hits += 1
            return self._tables[key]

    def metadata(
        self,
        collector: MetadataCollector,
        table: str,
        max_rows: "int | None" = None,
    ) -> TableMetadata:
        """Table metadata computed once per (data version, row cap).

        Keyed on ``max_rows`` too: statistics from a capped materialization
        must not serve a call with a different cap. ``refresh=True``
        bypasses the collector's own per-name cache so a data change
        genuinely recomputes statistics.
        """
        key = (table, max_rows)
        with self._lock:
            if key not in self._metadata:
                self.stats.misses += 1
                base = self.base_table(table, max_rows=max_rows)
                self._metadata[key] = collector.collect(base, refresh=True)
            else:
                self.stats.hits += 1
            return self._metadata[key]

    def row_count(self, table: str) -> int:
        with self._lock:
            if table not in self._row_counts:
                self.stats.misses += 1
                self._row_counts[table] = self.backend.row_count(table)
            else:
                self.stats.hits += 1
            return self._row_counts[table]

    def profile(self, table: str) -> TableProfile:
        """The table's planner profile, collected once per data version.

        Capability-dispatched (:func:`collect_statistics`): pushed
        aggregate SQL or the client-side fallback, per the backend's
        declaration. Collection never bumps ``data_version``, so the
        entry survives until genuine data changes evict it via ``sync``.
        """
        with self._lock:
            if table not in self._profiles:
                self.stats.misses += 1
                self._profiles[table] = collect_statistics(self.backend, table)
            else:
                self.stats.hits += 1
            return self._profiles[table]

    def sample(self, source: str, fraction: float, seed: int) -> str:
        """Name of a materialized sample of ``source``, creating on miss.

        The sample is reused while (fraction, seed, data version) hold; a
        request with different knobs re-materializes in place.
        """
        with self._lock:
            entry = self._samples.get(source)
            name = sample_table_name(source, fraction, seed)
            if (
                entry is not None
                and entry.fraction == fraction
                and entry.seed == seed
                and self.backend.has_table(entry.name)
            ):
                self.stats.hits += 1
                return entry.name
            self.stats.misses += 1
            if entry is not None:
                # Knobs changed: retire the old sample before materializing.
                self._drop_owned(entry.name)
            # Capability-gated: in-DBMS sampling or the client-side
            # Bernoulli fallback, per the backend's declaration.
            materialize_sample(self.backend, source, name, fraction, seed=seed)
            self._samples[source] = _SampleEntry(
                name=name, fraction=fraction, seed=seed
            )
            return name

    @property
    def live_samples(self) -> list[str]:
        """Names of sample tables the cache currently owns."""
        with self._lock:
            return [entry.name for entry in self._samples.values()]

    def __enter__(self) -> "SessionCache":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class EngineCache(SessionCache):
    """The shared, refcounted per-backend promotion of :class:`SessionCache`.

    Keyed on backend *identity* (one live backend object = one cache; the
    per-entry ``data_version`` keying is inherited from ``sync``), handed
    out by :meth:`acquire` and returned by :meth:`close`: every engine on
    one backend shares schema, metadata, base-table, and sample lookups,
    and the cache only truly closes — dropping owned sample tables — when
    its last lease is released. Both the lease count and the registry are
    guarded by one class-level lock, so a release can never race another
    engine's acquire into resurrecting a closing cache.
    """

    #: backend -> its shared cache. Weak keys: a garbage-collected backend
    #: (callers that never close) silently drops its registry slot.
    _registry: "weakref.WeakKeyDictionary[Backend, EngineCache]" = (
        weakref.WeakKeyDictionary()
    )
    _registry_lock = threading.Lock()

    def __init__(self, backend: Backend):
        super().__init__(backend)
        self._leases = 0

    @classmethod
    def acquire(cls, backend: Backend) -> "EngineCache":
        """The shared cache for ``backend``, creating it on first use."""
        with cls._registry_lock:
            cache = cls._registry.get(backend)
            if cache is None:
                cache = cls(backend)
                cls._registry[backend] = cache
            cache._leases += 1
            return cache

    @classmethod
    def shared_for(cls, backend: Backend) -> "EngineCache | None":
        """The live shared cache for ``backend`` without taking a lease."""
        with cls._registry_lock:
            return cls._registry.get(backend)

    @property
    def leases(self) -> int:
        """Engines currently holding this cache."""
        with self._registry_lock:
            return self._leases

    def close(self) -> None:
        """Release one lease; the last release performs the real close.

        The whole close — deregistration *and* sample drops — runs under
        the registry lock: a concurrent ``acquire`` would otherwise build
        a fresh cache and materialize a sample under the same
        deterministic name this close is about to drop. Safe ordering:
        nothing acquires the registry lock while holding a cache lock.
        """
        with self._registry_lock:
            self._leases = max(0, self._leases - 1)
            if self._leases > 0:
                return
            if type(self)._registry.get(self.backend) is self:
                del type(self)._registry[self.backend]
            super().close()
