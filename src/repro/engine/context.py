"""The state that flows through the execution pipeline.

One :class:`ExecutionContext` is created per recommendation request and
threaded through an ordered list of :class:`~repro.engine.phases.Phase`
objects. Each phase reads the fields earlier phases produced and writes
its own — the dataclass makes the hand-offs of Figure 4 explicit and
independently testable (a phase can be exercised on a hand-built context).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.backends.base import Backend
from repro.core.config import SeeDBConfig
from repro.db.query import RowSelectQuery
from repro.model.reference import TABLE_REFERENCE, ResolvedReference
from repro.util.timing import Stopwatch

if TYPE_CHECKING:
    from repro.core.result import RecommendationResult
    from repro.db.schema import Schema
    from repro.db.table import Table
    from repro.engine.cache import SessionCache
    from repro.metadata.collector import MetadataCollector, TableMetadata
    from repro.model.view import RawViewData, ScoredView
    from repro.optimizer.cost import PlanDecision
    from repro.optimizer.parallel import ParallelExecutor
    from repro.optimizer.plan import ExecutionPlan
    from repro.pruning.base import PruneReport
    from repro.util.deadline import CancelToken, Deadline


@dataclass
class ExecutionContext:
    """Everything one recommendation run reads and produces.

    The first block is the request; the second is session-scoped machinery
    the engine injects; the rest is filled in by phases as the pipeline
    advances (field comments name the phase that owns each).
    """

    # -- request ---------------------------------------------------------
    backend: Backend
    query: RowSelectQuery
    config: SeeDBConfig
    k: int
    #: Comparison row set (paper default: the whole table). Execute-side
    #: phases and the planner read this to build the comparison queries.
    reference: ResolvedReference = TABLE_REFERENCE
    #: Optional view-space filters: restrict enumeration to these
    #: dimension / measure attributes (None = no restriction).
    dimensions: "tuple[str, ...] | None" = None
    measures: "tuple[str, ...] | None" = None

    # -- injected by the engine ------------------------------------------
    cache: "SessionCache | None" = None
    executor: "ParallelExecutor | None" = None
    metadata_collector: "MetadataCollector | None" = None
    stopwatch: Stopwatch = field(default_factory=Stopwatch)
    #: Request-lifecycle budget: the engine checks the token at phase
    #: boundaries, the phased executor between rounds, and backends per
    #: query (via the thread-local cancel scope).
    cancel_token: "CancelToken | None" = None

    # -- MetadataPhase ----------------------------------------------------
    base_table: "Table | None" = None
    metadata: "TableMetadata | None" = None

    # -- EnumeratePhase ---------------------------------------------------
    schema: "Schema | None" = None
    candidates: list = field(default_factory=list)

    # -- PrunePhase -------------------------------------------------------
    surviving: list = field(default_factory=list)
    prune_reports: "list[PruneReport]" = field(default_factory=list)

    # -- SamplePhase ------------------------------------------------------
    execution_table: "str | None" = None
    sample_fraction: "float | None" = None

    # -- PlanPhase --------------------------------------------------------
    plan: "ExecutionPlan | None" = None
    plan_description: str = ""
    #: The cost-based planner's choice record (None on the static path);
    #: the engine fills in ``observed_seconds`` after execution and feeds
    #: the calibration store.
    plan_decision: "PlanDecision | None" = None

    # -- ExecutePhase -----------------------------------------------------
    raw_views: "dict[Any, RawViewData]" = field(default_factory=dict)

    # -- ScorePhase -------------------------------------------------------
    scored: "dict[Any, ScoredView]" = field(default_factory=dict)

    # -- SelectPhase ------------------------------------------------------
    recommendations: "list[ScoredView]" = field(default_factory=list)

    # -- RenderPhase ------------------------------------------------------
    #: JSON-safe chart frames for the recommendations (None when the
    #: request did not ask for rendering).
    visualizations: "list[dict] | None" = None

    # -- accounting / extension point --------------------------------------
    #: Backend query counter at the start of view-query execution; metadata
    #: round trips are deliberately excluded from ``n_queries``.
    queries_before: "int | None" = None
    #: Phase-specific side outputs (parallel reports, incremental pruning
    #: traces, ...) keyed by a phase-chosen name.
    extras: dict[str, Any] = field(default_factory=dict)
    #: Set by the phased executor when a deadline expired mid-run and it
    #: degraded to the best current answer instead of erroring.
    partial: bool = False
    #: Hoeffding ε of the last completed round when ``partial`` (how far
    #: any view's utility estimate can still move).
    partial_epsilon: "float | None" = None

    @property
    def deadline(self) -> "Deadline | None":
        return self.cancel_token.deadline if self.cancel_token is not None else None

    def check_cancelled(self) -> None:
        """Raise the token's typed error if the budget is gone.

        Once the run has degraded to a partial answer only an *explicit*
        cancel aborts it — the remaining phases just package what exists.
        """
        if self.cancel_token is None:
            return
        if self.partial:
            self.cancel_token.check_cancel()
        else:
            self.cancel_token.check()

    def mark_query_baseline(self) -> None:
        """Record the view-query counting baseline (first caller wins)."""
        if self.queries_before is None:
            self.queries_before = self.backend.queries_executed

    @property
    def n_queries(self) -> int:
        """View-query round trips issued since the baseline."""
        if self.queries_before is None:
            return 0
        return self.backend.queries_executed - self.queries_before

    def resolve_execution_table(self) -> str:
        """Where view queries run: the sample if one was materialized."""
        return (
            self.execution_table
            if self.execution_table is not None
            else self.query.table
        )

    def to_result(self) -> "RecommendationResult":
        """Package the finished context as a :class:`RecommendationResult`."""
        from repro.core.result import RecommendationResult

        return RecommendationResult(
            table=self.query.table,
            predicate_description=describe_predicate(self.query),
            k=self.k,
            metric=self.config.metric,
            recommendations=self.recommendations,
            all_scored=self.scored,
            prune_reports=self.prune_reports,
            stopwatch=self.stopwatch,
            n_candidate_views=len(self.candidates),
            n_executed_views=len(self.surviving),
            n_queries=self.n_queries,
            sample_fraction=self.sample_fraction,
            plan_description=self.plan_description,
            plan_decision=(
                self.plan_decision.to_dict()
                if self.plan_decision is not None
                else None
            ),
            reference_description=self.reference.describe(),
            partial=self.partial,
            partial_epsilon=self.partial_epsilon,
            visualizations=self.visualizations,
        )


def describe_predicate(query: RowSelectQuery) -> str:
    """Human-readable rendering of the analyst's predicate.

    Falls back to ``repr`` for Expression subclasses the SQL renderer does
    not know — custom predicates execute fine on the in-memory path and
    must not crash result packaging.
    """
    if query.predicate is None:
        return "all rows"
    from repro.backends.sqlgen import render_expression
    from repro.util.errors import QueryError

    try:
        return render_expression(query.predicate)
    except QueryError:
        return repr(query.predicate)
