"""The ExecutionEngine: one pipeline, three strategies, shared services.

The engine owns the session-scoped machinery the per-call monolith could
not support:

* a :class:`~repro.engine.cache.SessionCache` keyed on the backend's
  ``data_version`` — repeated ``recommend()`` calls in one session skip
  redundant schema/metadata/sample round trips;
* a persistent :class:`~repro.optimizer.parallel.ParallelExecutor` reused
  across calls instead of constructing a fresh thread pool per plan;
* one :class:`~repro.metadata.collector.MetadataCollector` whose access
  log accumulates session history for access-frequency pruning.

``run()`` drives any ordered list of phases over an
:class:`~repro.engine.context.ExecutionContext`, timing each phase under
its name. The default phase list reproduces Figure 4; the incremental and
multiview strategies swap individual phases (see
:mod:`repro.engine.incremental` / :mod:`repro.engine.multiview`).
"""

from __future__ import annotations

from typing import Iterable

from repro.backends.base import Backend
from repro.core.config import SeeDBConfig
from repro.db.query import RowSelectQuery
from repro.engine.cache import SessionCache
from repro.engine.context import ExecutionContext
from repro.engine.phases import Phase, default_phases
from repro.metadata.collector import MetadataCollector
from repro.optimizer.parallel import ParallelExecutor


class ExecutionEngine:
    """Runs phase pipelines over one backend with session-scoped reuse."""

    def __init__(
        self,
        backend: Backend,
        metadata_collector: "MetadataCollector | None" = None,
        cache: "SessionCache | None" = None,
    ):
        self.backend = backend
        self.metadata = (
            metadata_collector if metadata_collector is not None else MetadataCollector()
        )
        self.cache = cache if cache is not None else SessionCache(backend)
        self._executor: "ParallelExecutor | None" = None

    # -- running pipelines ------------------------------------------------

    def new_context(
        self, query: RowSelectQuery, config: SeeDBConfig, k: int
    ) -> ExecutionContext:
        """A context wired to this engine's session services."""
        return ExecutionContext(
            backend=self.backend,
            query=query,
            config=config,
            k=k,
            cache=self.cache,
            executor=self.executor_for(config.n_workers),
            metadata_collector=self.metadata,
        )

    def run(
        self, phases: Iterable[Phase], ctx: ExecutionContext
    ) -> ExecutionContext:
        """Execute ``phases`` in order, timing each under its name."""
        self.cache.sync()
        for phase in phases:
            with ctx.stopwatch.time(phase.name):
                phase.run(ctx)
        return ctx

    def recommend(
        self,
        query: RowSelectQuery,
        config: SeeDBConfig,
        k: int,
        phases: "Iterable[Phase] | None" = None,
    ) -> ExecutionContext:
        """Convenience: new context + default (or given) phases + run."""
        ctx = self.new_context(query, config, k)
        return self.run(phases if phases is not None else default_phases(), ctx)

    # -- session services ---------------------------------------------------

    def executor_for(self, n_workers: int) -> "ParallelExecutor | None":
        """The persistent worker pool sized to ``n_workers`` (None if 1).

        The pool survives across calls; it is only rebuilt when the
        requested worker count changes.
        """
        if n_workers <= 1:
            return None
        if self._executor is None or self._executor.n_workers != n_workers:
            if self._executor is not None:
                self._executor.close()
            self._executor = ParallelExecutor(n_workers=n_workers, persistent=True)
        return self._executor

    @property
    def executor(self) -> "ParallelExecutor | None":
        """The currently held persistent executor, if any."""
        return self._executor

    def close(self) -> None:
        """Release session resources: worker pool and cached samples."""
        if self._executor is not None:
            self._executor.close()
            self._executor = None
        self.cache.close()

    def __enter__(self) -> "ExecutionEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
