"""The ExecutionEngine: one pipeline, three strategies, shared services.

The engine owns the session-scoped machinery the per-call monolith could
not support:

* a shared :class:`~repro.engine.cache.EngineCache` keyed on the backend's
  identity and ``data_version`` — every engine on one backend reuses the
  same schema/metadata/sample lookups, across sessions and across the
  service layer's worker threads;
* run-scoped :class:`~repro.optimizer.parallel.ParallelExecutor` views
  over the process-wide bounded worker pool
  (:func:`~repro.optimizer.parallel.get_shared_pool`) — engines own no
  threads, so total DBMS concurrency stays bounded however many engines
  exist;
* one :class:`~repro.metadata.collector.MetadataCollector` whose access
  log accumulates session history for access-frequency pruning.

``recommend()`` is reentrant: all mutable run state lives in the per-call
:class:`~repro.engine.context.ExecutionContext`, the cache and collector
are internally synchronized, and the executor map is guarded — concurrent
calls on one engine are safe and produce the same results as serial ones.

``run()`` drives any ordered list of phases over an
:class:`~repro.engine.context.ExecutionContext`, timing each phase under
its name. The default phase list reproduces Figure 4; the incremental and
multiview strategies swap individual phases (see
:mod:`repro.engine.incremental` / :mod:`repro.engine.multiview`).
"""

from __future__ import annotations

import threading
from typing import Iterable

from repro.backends.base import Backend
from repro.core.config import SeeDBConfig
from repro.db.query import RowSelectQuery
from repro.engine.cache import EngineCache, SessionCache
from repro.engine.context import ExecutionContext
from repro.engine.phases import Phase, default_phases
from repro.metadata.collector import MetadataCollector
from repro.model.reference import TABLE_REFERENCE, ResolvedReference
from repro.optimizer.parallel import ParallelExecutor, get_shared_pool
from repro.util.deadline import CancelToken, cancel_scope


class ExecutionEngine:
    """Runs phase pipelines over one backend with session-scoped reuse."""

    def __init__(
        self,
        backend: Backend,
        metadata_collector: "MetadataCollector | None" = None,
        cache: "SessionCache | None" = None,
    ):
        self.backend = backend
        self.metadata = (
            metadata_collector if metadata_collector is not None else MetadataCollector()
        )
        self.cache = cache if cache is not None else EngineCache.acquire(backend)
        self._lock = threading.Lock()
        self._closed = False
        #: n_workers -> shared-pool-backed executor view (threadless).
        self._executors: dict[int, ParallelExecutor] = {}

    # -- running pipelines ------------------------------------------------

    def new_context(
        self,
        query: RowSelectQuery,
        config: SeeDBConfig,
        k: int,
        reference: "ResolvedReference | None" = None,
        dimensions: "tuple[str, ...] | None" = None,
        measures: "tuple[str, ...] | None" = None,
        cancel_token: "CancelToken | None" = None,
    ) -> ExecutionContext:
        """A context wired to this engine's session services."""
        return ExecutionContext(
            backend=self.backend,
            query=query,
            config=config,
            k=k,
            reference=reference if reference is not None else TABLE_REFERENCE,
            dimensions=dimensions,
            measures=measures,
            cache=self.cache,
            executor=self.executor_for(config.n_workers),
            metadata_collector=self.metadata,
            cancel_token=cancel_token,
        )

    def run(
        self, phases: Iterable[Phase], ctx: ExecutionContext
    ) -> ExecutionContext:
        """Execute ``phases`` in order, timing each under its name.

        The context's cancel token (if any) is checked at every phase
        boundary and installed as the thread's cancel scope so backends
        can interrupt long queries mid-phase.
        """
        self.cache.sync()
        with cancel_scope(ctx.cancel_token):
            for phase in phases:
                ctx.check_cancelled()
                with ctx.stopwatch.time(phase.name):
                    phase.run(ctx)
        self._observe_plan_outcome(ctx)
        return ctx

    def _observe_plan_outcome(self, ctx: ExecutionContext) -> None:
        """Close the cost-model feedback loop after a cost-planned run.

        Reconciles the planner's predicted seconds with the observed
        execute-phase wall clock and folds the ratio into the session
        cache's shared :class:`~repro.metadata.calibration.CalibrationStore`
        (EWMA per backend) — the next prediction on this backend starts
        from coefficients scaled toward what this machine actually does.
        """
        decision = ctx.plan_decision
        if decision is None or decision.predicted_seconds <= 0:
            return
        observed = ctx.stopwatch.phases.get("execute")
        if observed is None:
            return
        decision.observed_seconds = observed
        self.cache.calibration.observe(
            self.backend.name,
            decision.predicted_seconds,
            observed,
            plan_kind=decision.kind,
        )

    def recommend(
        self,
        query: RowSelectQuery,
        config: SeeDBConfig,
        k: int,
        phases: "Iterable[Phase] | None" = None,
        reference: "ResolvedReference | None" = None,
        dimensions: "tuple[str, ...] | None" = None,
        measures: "tuple[str, ...] | None" = None,
        cancel_token: "CancelToken | None" = None,
    ) -> ExecutionContext:
        """Convenience: new context + default (or given) phases + run."""
        ctx = self.new_context(
            query,
            config,
            k,
            reference=reference,
            dimensions=dimensions,
            measures=measures,
            cancel_token=cancel_token,
        )
        return self.run(phases if phases is not None else default_phases(), ctx)

    # -- session services ---------------------------------------------------

    def executor_for(self, n_workers: int) -> "ParallelExecutor | None":
        """An executor bounded to ``n_workers`` over the shared pool.

        ``None`` for sequential execution. The returned executor owns no
        threads — it is a reusable view claiming at most ``n_workers`` of
        the process-wide pool per run, so concurrent calls with different
        worker counts never tear down each other's pools.

        Capability-gated: a backend declaring ``parallel_queries=False``
        or a ``"serial"`` threading model executes sequentially no matter
        what ``n_workers`` asks for — the declaration, not the backend
        class, is what the engine trusts.
        """
        capabilities = self.backend.capabilities
        if not capabilities.parallel_queries:
            return None
        if capabilities.threading_model == "serial":
            return None
        if n_workers <= 1:
            return None
        with self._lock:
            executor = self._executors.get(n_workers)
            if executor is None:
                executor = ParallelExecutor(
                    n_workers=n_workers, pool=get_shared_pool()
                )
                self._executors[n_workers] = executor
            return executor

    @property
    def executor(self) -> "ParallelExecutor | None":
        """The most recently built executor view, if any."""
        with self._lock:
            if not self._executors:
                return None
            return next(reversed(self._executors.values()))

    def close(self) -> None:
        """Release session resources: executor views and the cache lease.

        The shared worker pool stays up (other engines borrow from it);
        closing the cache releases this engine's lease — the backend-wide
        shared cache drops samples only when its last engine closes.
        Idempotent: a second close (context-manager exit after an explicit
        close) must not release a lease some *other* engine still holds.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            executors, self._executors = list(self._executors.values()), {}
        for executor in executors:
            executor.close()
        self.cache.close()

    def __enter__(self) -> "ExecutionEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
