"""Incremental execution as swappable Execute/Score phases.

The phased-execution scheme of §1 challenge (d) — interleaved row
partitions, running mergeable-aggregate state per view, Hoeffding-style
confidence pruning between phases — re-hosted on the shared engine.
:class:`PhasedExecutePhase` replaces the batch ``ExecutePhase`` and leaves
ordinary :class:`~repro.model.view.RawViewData` in the context, so the
standard View Processor / top-k phases finish the run: the incremental
path no longer carries private copies of align/normalize/score/top-k.

State is columnar: each :class:`DimensionState` keeps one dense
``(2 flags, n_groups)`` array per auxiliary aggregate, merged per phase
with vectorized scatter updates (one dict lookup per result row for the
key→column mapping; everything else is whole-array arithmetic), and the
per-phase utility re-estimates run through the shared batch scorer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.view_processor import ViewProcessor
from repro.db.aggregates import Aggregate
from repro.db.catalog import Catalog
from repro.db.engine import Engine
from repro.db.expressions import TruePredicate
from repro.db.query import AggregateQuery, FlagColumn
from repro.db.table import Table
from repro.engine.context import ExecutionContext
from repro.engine.phases import Phase, ScorePhase
from repro.metrics.normalize import canonical_key
from repro.model.view import RawViewData, ViewSpec
from repro.optimizer.combine import dedup_aggregates, merge_spec
from repro.optimizer.extract import FLAG_NAME
from repro.testing.faults import fault_point

#: Metrics whose values are bounded in [0, 1], the precondition for the
#: Hoeffding-style pruning bound.
BOUNDED_METRICS = frozenset(
    {"js", "total_variation", "maxdev", "chisquare", "emd", "hellinger"}
)

#: Accumulation mode per auxiliary aggregate function.
_ACCUMULATE_ADD = frozenset({"sum", "count", "countv", "sumsq"})


@dataclass
class DimensionState:
    """Accumulated per-(flag, group) aux values for one dimension.

    Running partial distributions live in dense 2-D arrays: per auxiliary
    aggregate one ``(2, n_groups)`` value matrix (row = flag partition),
    plus one shared presence mask distinguishing "group never seen under
    this flag" from a genuine accumulated value. Columns are assigned in
    first-seen order and the sorted view of the key universe is cached
    between phases.
    """

    aux: tuple[Aggregate, ...]
    #: key -> column, in first-seen order.
    index: dict[Any, int] = field(default_factory=dict)
    #: Column's key, aligned with ``index`` values.
    keys: list[Any] = field(default_factory=list)
    #: alias -> (2, n_groups) accumulated values.
    data: dict[str, np.ndarray] = field(default_factory=dict)
    #: (2, n_groups) — whether a (flag, group) cell has been absorbed.
    present: np.ndarray = field(default_factory=lambda: np.zeros((2, 0), dtype=bool))
    _sorted_columns: "np.ndarray | None" = field(default=None, repr=False)

    def __post_init__(self) -> None:
        for aggregate in self.aux:
            self.data.setdefault(aggregate.alias, np.zeros((2, 0), dtype=np.float64))

    def absorb(self, result: Table, dimension: str) -> None:
        """Merge one phase's flag-combined result into the running state."""
        if result.num_rows == 0:
            return
        flags = np.asarray(result.column(FLAG_NAME)).astype(np.int64)
        self._absorb(flags, result, dimension)

    def absorb_partition(self, result: Table, dimension: str, flag: int) -> None:
        """Merge a single-side result (no flag column) under ``flag``.

        Query references issue separate target/reference queries per
        partition; their rows all land in one flag row of the state
        (1 = target, 0 = reference).
        """
        if result.num_rows == 0:
            return
        flags = np.full(result.num_rows, flag, dtype=np.int64)
        self._absorb(flags, result, dimension)

    def _absorb(self, flags: np.ndarray, result: Table, dimension: str) -> None:
        n_rows = result.num_rows
        raw_keys = result.column(dimension)
        index = self.index
        columns = np.empty(n_rows, dtype=np.int64)
        for i in range(n_rows):
            key = canonical_key(raw_keys[i])
            column = index.get(key)
            if column is None:
                column = len(index)
                index[key] = column
                self.keys.append(key)
                self._sorted_columns = None
            columns[i] = column
        self._grow(len(index))

        existing = self.present[flags, columns]
        new = ~existing
        for aggregate in self.aux:
            values = np.asarray(result.column(aggregate.alias), dtype=np.float64)
            data = self.data[aggregate.alias]
            if aggregate.func in _ACCUMULATE_ADD:
                # NaN partial sums never overwrite accumulated mass; a NaN
                # *first* value is kept verbatim (matching scalar merge).
                add = existing & ~np.isnan(values)
                data[flags[add], columns[add]] += values[add]
            else:
                merge = np.fmin if aggregate.func == "min" else np.fmax
                data[flags[existing], columns[existing]] = merge(
                    data[flags[existing], columns[existing]], values[existing]
                )
            data[flags[new], columns[new]] = values[new]
        self.present[flags, columns] = True

    def _grow(self, n_columns: int) -> None:
        current = self.present.shape[1]
        if n_columns <= current:
            return
        pad = n_columns - current
        self.present = np.pad(self.present, ((0, 0), (0, pad)))
        for alias, data in self.data.items():
            self.data[alias] = np.pad(data, ((0, 0), (0, pad)))

    def _ordered_columns(self) -> np.ndarray:
        """Column indices in sorted-key order (cached between phases)."""
        if self._sorted_columns is None:
            order = sorted(
                range(len(self.keys)),
                key=lambda column: (
                    type(self.keys[column]).__name__,
                    self.keys[column],
                ),
            )
            self._sorted_columns = np.asarray(order, dtype=np.int64)
        return self._sorted_columns

    def raw_view(
        self, view: ViewSpec, comparison_flags: tuple[int, ...] = (0, 1)
    ) -> RawViewData:
        """The view's target/comparison series reconstructed from state.

        ``comparison_flags`` selects which flag partitions make up the
        comparison side: ``(0, 1)`` merges both (the whole-table
        reference), ``(0,)`` takes the non-target partition alone
        (complement and query references). Returning :class:`RawViewData`
        is what lets the shared View Processor score incremental estimates
        exactly like batch results.
        """
        spec = merge_spec(view.aggregate)
        ordered = self._ordered_columns()
        if ordered.size:
            target_columns = ordered[self.present[1, ordered]]
            comparison_columns = ordered[
                self.present[list(comparison_flags)][:, ordered].any(axis=0)
            ]
        else:
            target_columns = comparison_columns = ordered
        target_keys = [self.keys[column] for column in target_columns]
        comparison_keys = [self.keys[column] for column in comparison_columns]
        return RawViewData(
            spec=view,
            target_keys=target_keys,
            target_values=spec.reconstruct(self._merged(target_columns, (1,))),
            comparison_keys=comparison_keys,
            comparison_values=spec.reconstruct(
                self._merged(comparison_columns, comparison_flags)
            ),
        )

    def _merged(
        self, columns: np.ndarray, flags: tuple[int, ...]
    ) -> dict[str, np.ndarray]:
        """{alias: values} over ``columns``, merged across ``flags``.

        Additive aggregates sum present cells (absent = neutral 0); extrema
        take the NaN-ignoring min/max with NaN as the absent fill — the
        vectorized form of the scalar per-cell merge.
        """
        rows = list(flags)
        arrays: dict[str, np.ndarray] = {}
        for aggregate in self.aux:
            data = self.data[aggregate.alias][rows][:, columns]
            present = self.present[rows][:, columns]
            if aggregate.func in _ACCUMULATE_ADD:
                merged = np.where(present, data, 0.0).sum(axis=0)
            else:
                stacked = np.where(present, data, np.nan)
                merge = np.fmin if aggregate.func == "min" else np.fmax
                merged = merge.reduce(stacked, axis=0)
            arrays[aggregate.alias] = np.asarray(merged, dtype=np.float64)
        return arrays


@dataclass
class IncrementalTrace:
    """Side outputs of a phased run, stored in ``ctx.extras``."""

    #: Last utility estimate of every view, pruned ones included.
    utilities: dict[ViewSpec, float] = field(default_factory=dict)
    #: Views dropped early: spec -> phase index at which they were pruned.
    pruned_at_phase: dict[ViewSpec, int] = field(default_factory=dict)
    phases_executed: int = 0
    n_phases: int = 0
    work_done: int = 0
    work_possible: int = 0


#: ``ctx.extras`` key under which the trace is published.
TRACE_KEY = "incremental"


@dataclass
class IncrementalRound:
    """One executed phase of a phased run (the streaming unit).

    ``scored`` holds the current utility estimates of every still-alive
    view — :class:`~repro.model.view.ScoredView` objects from the shared
    batch scorer, so partial rounds carry real distributions, not just
    numbers. ``epsilon`` is the Hoeffding half-width used for pruning this
    round (None while pruning is inactive).
    """

    phase: int
    n_phases: int
    scored: dict
    views_alive: int
    views_pruned: int
    epsilon: "float | None" = None


class PhasedExecutePhase(Phase):
    """Execute view queries one partition at a time with early pruning.

    Partitions are interleaved row slices (row ``i`` belongs to phase
    ``i mod n_phases``), so each phase is an unbiased sample. Pruning uses
    Hoeffding-style confidence intervals: view ``V`` is dropped after phase
    ``m`` when ``u_m(V) + ε_m < L`` where ``L`` is the k-th largest lower
    bound and ``ε_m = epsilon_scale * sqrt(ln(2/δ) / (2m))`` — valid for
    metrics bounded in [0, 1].
    """

    name = "execute"

    def __init__(
        self,
        table: "Table | None" = None,
        n_phases: int = 10,
        delta: float = 0.05,
        min_phases_before_pruning: int = 2,
        epsilon_scale: float = 0.25,
        metric=None,
        normalization=None,
    ):
        self.table = table
        self.n_phases = n_phases
        self.delta = delta
        self.min_phases_before_pruning = min_phases_before_pruning
        self.epsilon_scale = epsilon_scale
        self.metric = metric
        self.normalization = normalization

    def run(self, ctx: ExecutionContext) -> None:
        for _round in self.rounds(ctx):
            pass

    def rounds(self, ctx: ExecutionContext):
        """Drive phased execution, yielding one :class:`IncrementalRound`
        per executed phase — the progressive-delivery hook behind
        :meth:`repro.SeeDB.recommend_iter`. Exhausting the generator
        finalizes ``ctx.raw_views`` exactly like :meth:`run`.

        The context's reference selects the comparison side: table and
        complement references share the flag-combined per-phase query
        (comparison = both partitions merged, or flag=0 alone); a query
        reference issues separate target/reference queries per phase —
        the two selections may overlap, which one 0/1 flag cannot encode.
        """
        views = list(ctx.surviving)
        trace = IncrementalTrace(
            n_phases=self.n_phases, work_possible=len(views) * self.n_phases
        )
        ctx.extras[TRACE_KEY] = trace
        if not views:
            return
        table = self.table if self.table is not None else self._fetch(ctx)
        reference = ctx.reference
        comparison_flags = (0, 1) if reference.merge_partitions else (0,)
        predicate = (
            ctx.query.predicate
            if ctx.query.predicate is not None
            else TruePredicate()
        )
        metric = (
            self.metric if self.metric is not None else ctx.config.resolve_metric()
        )
        normalization = (
            self.normalization
            if self.normalization is not None
            else ctx.config.normalization
        )
        processor = ViewProcessor(metric, normalization)

        groups: dict[str, list[ViewSpec]] = {}
        for view in views:
            groups.setdefault(view.dimension, []).append(view)
        states = {
            dimension: DimensionState(
                aux=dedup_aggregates(
                    [a for v in members for a in merge_spec(v.aggregate).aux]
                )
            )
            for dimension, members in groups.items()
        }

        alive: set[ViewSpec] = set(views)
        k = ctx.k
        indices = np.arange(table.num_rows)
        token = ctx.cancel_token
        for phase in range(self.n_phases):
            # Chaos seam: phased queries run on a local engine, so this is
            # the round-granular injection point the backend-level hook
            # cannot cover. Placed before the token check so an injected
            # stall is *observed* by the deadline logic, like real slowness.
            fault_point("engine.round")
            if token is not None:
                # Explicit cancellation always aborts; deadline expiry
                # degrades gracefully once at least one unbiased round has
                # been absorbed — the best current top-k ships marked
                # partial, with the Hoeffding ε saying how far any
                # estimate can still move.
                token.check_cancel()
                if token.expired():
                    if trace.phases_executed >= 1:
                        ctx.partial = True
                        ctx.partial_epsilon = self.epsilon_scale * math.sqrt(
                            math.log(2.0 / self.delta)
                            / (2.0 * trace.phases_executed)
                        )
                        break
                    token.check()
            active_dimensions = {v.dimension for v in alive}
            if not active_dimensions:
                break
            partition = table.take(indices[phase :: self.n_phases], name="__phase")
            catalog = Catalog()
            catalog.register(partition)
            engine = Engine(catalog)
            flag = FlagColumn(FLAG_NAME, predicate)
            for dimension in sorted(active_dimensions):
                state = states[dimension]
                if reference.flag_combinable:
                    result = engine.execute(
                        AggregateQuery("__phase", (flag, dimension), state.aux, None)
                    )
                    assert isinstance(result, Table)
                    state.absorb(result, dimension)
                else:
                    target_result = engine.execute(
                        AggregateQuery(
                            "__phase", (dimension,), state.aux, ctx.query.predicate
                        )
                    )
                    reference_result = engine.execute(
                        AggregateQuery(
                            "__phase", (dimension,), state.aux, reference.predicate
                        )
                    )
                    assert isinstance(target_result, Table)
                    assert isinstance(reference_result, Table)
                    state.absorb_partition(target_result, dimension, flag=1)
                    state.absorb_partition(reference_result, dimension, flag=0)
                trace.work_done += sum(1 for v in groups[dimension] if v in alive)
            trace.phases_executed = phase + 1

            # Re-estimate utilities for alive views via the shared batch
            # scorer (one dense block per dimension, not one call per view).
            estimates = processor.score_batch(
                [
                    states[view.dimension].raw_view(view, comparison_flags)
                    for view in alive
                ]
            )
            for view, scored in estimates.items():
                trace.utilities[view] = scored.utility

            # Hoeffding-style pruning once enough phases accumulated.
            epsilon = None
            if (
                trace.phases_executed >= self.min_phases_before_pruning
                and trace.phases_executed < self.n_phases
                and len(alive) > k
            ):
                epsilon = self.epsilon_scale * math.sqrt(
                    math.log(2.0 / self.delta) / (2.0 * trace.phases_executed)
                )
                lower_bounds = sorted(
                    (trace.utilities[view] - epsilon for view in alive), reverse=True
                )
                threshold = lower_bounds[k - 1] if len(lower_bounds) >= k else -1.0
                for view in list(alive):
                    if trace.utilities[view] + epsilon < threshold:
                        alive.discard(view)
                        trace.pruned_at_phase[view] = trace.phases_executed

            yield IncrementalRound(
                phase=trace.phases_executed,
                n_phases=self.n_phases,
                scored={view: estimates[view] for view in alive},
                views_alive=len(alive),
                views_pruned=len(trace.pruned_at_phase),
                epsilon=epsilon,
            )

        ctx.raw_views = {
            view: states[view.dimension].raw_view(view, comparison_flags)
            for view in views
            if view in alive
        }

    @staticmethod
    def _fetch(ctx: ExecutionContext) -> Table:
        # Deliberately NOT ctx.base_table: MetadataPhase materializes that
        # capped at config.metadata_max_rows (a row *prefix*, fine for
        # statistics, biased for execution). Phased execution needs the
        # full table.
        if ctx.cache is not None:
            return ctx.cache.base_table(ctx.query.table, max_rows=None)
        return ctx.backend.fetch_table(ctx.query.table)


class IncrementalScorePhase(ScorePhase):
    """Standard scoring, plus folding final utilities back into the trace.

    Scored utilities equal the last running estimates by construction
    (both come from the same accumulated state through the same View
    Processor); the fold keeps the published trace exact.
    """

    def run(self, ctx: ExecutionContext) -> None:
        super().run(ctx)
        trace = ctx.extras.get(TRACE_KEY)
        if isinstance(trace, IncrementalTrace):
            for spec, scored in ctx.scored.items():
                trace.utilities[spec] = scored.utility
