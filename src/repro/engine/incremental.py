"""Incremental execution as swappable Execute/Score phases.

The phased-execution scheme of §1 challenge (d) — interleaved row
partitions, running mergeable-aggregate state per view, Hoeffding-style
confidence pruning between phases — re-hosted on the shared engine.
:class:`PhasedExecutePhase` replaces the batch ``ExecutePhase`` and leaves
ordinary :class:`~repro.model.view.RawViewData` in the context, so the
standard View Processor / top-k phases finish the run: the incremental
path no longer carries private copies of align/normalize/score/top-k.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.view_processor import ViewProcessor
from repro.db.aggregates import Aggregate
from repro.db.catalog import Catalog
from repro.db.engine import Engine
from repro.db.expressions import TruePredicate
from repro.db.query import AggregateQuery, FlagColumn
from repro.db.table import Table
from repro.engine.context import ExecutionContext
from repro.engine.phases import Phase, ScorePhase
from repro.metrics.normalize import canonical_key
from repro.model.view import RawViewData, ViewSpec
from repro.optimizer.combine import dedup_aggregates, merge_spec
from repro.optimizer.extract import FLAG_NAME

#: Metrics whose values are bounded in [0, 1], the precondition for the
#: Hoeffding-style pruning bound.
BOUNDED_METRICS = frozenset(
    {"js", "total_variation", "maxdev", "chisquare", "emd", "hellinger"}
)

#: Accumulation mode per auxiliary aggregate function.
_ACCUMULATE_ADD = frozenset({"sum", "count", "countv", "sumsq"})


@dataclass
class DimensionState:
    """Accumulated per-(flag, group) aux values for one dimension."""

    aux: tuple[Aggregate, ...]
    #: (flag, group_key) -> {alias: value}
    cells: dict[tuple[int, Any], dict[str, float]] = field(default_factory=dict)

    def absorb(self, result: Table, dimension: str) -> None:
        """Merge one phase's flag-combined result into the running state."""
        flags = np.asarray(result.column(FLAG_NAME))
        keys = result.column(dimension)
        columns = {a.alias: result.column(a.alias) for a in self.aux}
        for i in range(result.num_rows):
            cell_key = (int(flags[i]), canonical_key(keys[i]))
            cell = self.cells.get(cell_key)
            if cell is None:
                self.cells[cell_key] = {
                    a.alias: float(columns[a.alias][i]) for a in self.aux
                }
                continue
            for aggregate in self.aux:
                value = float(columns[aggregate.alias][i])
                if aggregate.func in _ACCUMULATE_ADD:
                    if not math.isnan(value):
                        cell[aggregate.alias] += value
                elif aggregate.func == "min":
                    cell[aggregate.alias] = _fmin(cell[aggregate.alias], value)
                else:  # max
                    cell[aggregate.alias] = _fmax(cell[aggregate.alias], value)

    def raw_view(self, view: ViewSpec) -> RawViewData:
        """The view's target/comparison series reconstructed from state.

        Returning :class:`RawViewData` is what lets the shared View
        Processor score incremental estimates exactly like batch results.
        """
        spec = merge_spec(view.aggregate)
        target_keys = sorted(
            {key for flag, key in self.cells if flag == 1},
            key=lambda k: (type(k).__name__, k),
        )
        all_keys = sorted(
            {key for _flag, key in self.cells},
            key=lambda k: (type(k).__name__, k),
        )

        def values_for(keys, flags):
            arrays = {}
            for aggregate in self.aux:
                fill = 0.0 if aggregate.func in _ACCUMULATE_ADD else float("nan")
                column = []
                for key in keys:
                    merged = None
                    for flag in flags:
                        cell = self.cells.get((flag, key))
                        if cell is None:
                            continue
                        value = cell[aggregate.alias]
                        if merged is None:
                            merged = value
                        elif aggregate.func in _ACCUMULATE_ADD:
                            merged += value
                        elif aggregate.func == "min":
                            merged = _fmin(merged, value)
                        else:
                            merged = _fmax(merged, value)
                    column.append(fill if merged is None else merged)
                arrays[aggregate.alias] = np.array(column, dtype=np.float64)
            return spec.reconstruct(arrays)

        return RawViewData(
            spec=view,
            target_keys=target_keys,
            target_values=values_for(target_keys, (1,)),
            comparison_keys=all_keys,
            comparison_values=values_for(all_keys, (0, 1)),
        )


def _fmin(a: float, b: float) -> float:
    if math.isnan(a):
        return b
    if math.isnan(b):
        return a
    return min(a, b)


def _fmax(a: float, b: float) -> float:
    if math.isnan(a):
        return b
    if math.isnan(b):
        return a
    return max(a, b)


@dataclass
class IncrementalTrace:
    """Side outputs of a phased run, stored in ``ctx.extras``."""

    #: Last utility estimate of every view, pruned ones included.
    utilities: dict[ViewSpec, float] = field(default_factory=dict)
    #: Views dropped early: spec -> phase index at which they were pruned.
    pruned_at_phase: dict[ViewSpec, int] = field(default_factory=dict)
    phases_executed: int = 0
    n_phases: int = 0
    work_done: int = 0
    work_possible: int = 0


#: ``ctx.extras`` key under which the trace is published.
TRACE_KEY = "incremental"


class PhasedExecutePhase(Phase):
    """Execute view queries one partition at a time with early pruning.

    Partitions are interleaved row slices (row ``i`` belongs to phase
    ``i mod n_phases``), so each phase is an unbiased sample. Pruning uses
    Hoeffding-style confidence intervals: view ``V`` is dropped after phase
    ``m`` when ``u_m(V) + ε_m < L`` where ``L`` is the k-th largest lower
    bound and ``ε_m = epsilon_scale * sqrt(ln(2/δ) / (2m))`` — valid for
    metrics bounded in [0, 1].
    """

    name = "execute"

    def __init__(
        self,
        table: "Table | None" = None,
        n_phases: int = 10,
        delta: float = 0.05,
        min_phases_before_pruning: int = 2,
        epsilon_scale: float = 0.25,
        metric=None,
        normalization=None,
    ):
        self.table = table
        self.n_phases = n_phases
        self.delta = delta
        self.min_phases_before_pruning = min_phases_before_pruning
        self.epsilon_scale = epsilon_scale
        self.metric = metric
        self.normalization = normalization

    def run(self, ctx: ExecutionContext) -> None:
        views = list(ctx.surviving)
        trace = IncrementalTrace(
            n_phases=self.n_phases, work_possible=len(views) * self.n_phases
        )
        ctx.extras[TRACE_KEY] = trace
        if not views:
            return
        table = self.table if self.table is not None else self._fetch(ctx)
        predicate = (
            ctx.query.predicate
            if ctx.query.predicate is not None
            else TruePredicate()
        )
        metric = (
            self.metric if self.metric is not None else ctx.config.resolve_metric()
        )
        normalization = (
            self.normalization
            if self.normalization is not None
            else ctx.config.normalization
        )
        processor = ViewProcessor(metric, normalization)

        groups: dict[str, list[ViewSpec]] = {}
        for view in views:
            groups.setdefault(view.dimension, []).append(view)
        states = {
            dimension: DimensionState(
                aux=dedup_aggregates(
                    [a for v in members for a in merge_spec(v.aggregate).aux]
                )
            )
            for dimension, members in groups.items()
        }

        alive: set[ViewSpec] = set(views)
        k = ctx.k
        indices = np.arange(table.num_rows)
        for phase in range(self.n_phases):
            active_dimensions = {v.dimension for v in alive}
            if not active_dimensions:
                break
            partition = table.take(indices[phase :: self.n_phases], name="__phase")
            catalog = Catalog()
            catalog.register(partition)
            engine = Engine(catalog)
            flag = FlagColumn(FLAG_NAME, predicate)
            for dimension in sorted(active_dimensions):
                state = states[dimension]
                result = engine.execute(
                    AggregateQuery("__phase", (flag, dimension), state.aux, None)
                )
                assert isinstance(result, Table)
                state.absorb(result, dimension)
                trace.work_done += sum(1 for v in groups[dimension] if v in alive)
            trace.phases_executed = phase + 1

            # Re-estimate utilities for alive views via the shared scorer.
            for view in list(alive):
                raw = states[view.dimension].raw_view(view)
                trace.utilities[view] = processor.score(raw).utility

            # Hoeffding-style pruning once enough phases accumulated.
            if (
                trace.phases_executed >= self.min_phases_before_pruning
                and trace.phases_executed < self.n_phases
                and len(alive) > k
            ):
                epsilon = self.epsilon_scale * math.sqrt(
                    math.log(2.0 / self.delta) / (2.0 * trace.phases_executed)
                )
                lower_bounds = sorted(
                    (trace.utilities[view] - epsilon for view in alive), reverse=True
                )
                threshold = lower_bounds[k - 1] if len(lower_bounds) >= k else -1.0
                for view in list(alive):
                    if trace.utilities[view] + epsilon < threshold:
                        alive.discard(view)
                        trace.pruned_at_phase[view] = trace.phases_executed

        ctx.raw_views = {
            view: states[view.dimension].raw_view(view)
            for view in views
            if view in alive
        }

    @staticmethod
    def _fetch(ctx: ExecutionContext) -> Table:
        # Deliberately NOT ctx.base_table: MetadataPhase materializes that
        # capped at config.metadata_max_rows (a row *prefix*, fine for
        # statistics, biased for execution). Phased execution needs the
        # full table.
        if ctx.cache is not None:
            return ctx.cache.base_table(ctx.query.table, max_rows=None)
        return ctx.backend.fetch_table(ctx.query.table)


class IncrementalScorePhase(ScorePhase):
    """Standard scoring, plus folding final utilities back into the trace.

    Scored utilities equal the last running estimates by construction
    (both come from the same accumulated state through the same View
    Processor); the fold keeps the published trace exact.
    """

    def run(self, ctx: ExecutionContext) -> None:
        super().run(ctx)
        trace = ctx.extras.get(TRACE_KEY)
        if isinstance(trace, IncrementalTrace):
            for spec, scored in ctx.scored.items():
                trace.utilities[spec] = scored.utility
