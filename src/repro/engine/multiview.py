"""Multi-attribute views as a swappable Enumerate/Prune/Plan phase set.

The §2 generalization ("SEEDB techniques can directly be used to recommend
visualizations for multiple column views") re-hosted on the shared engine:
enumeration produces :class:`~repro.core.multiview.MultiViewSpec`
candidates, planning maps each dimension *combination* onto one
:class:`~repro.optimizer.plan.MultiFlagStep`, and the standard
Execute/Score/Select phases — including the persistent worker pool and the
shared View Processor — do the rest. The multiview path therefore shares
every line of execution, alignment, normalization, and top-k code with the
batch path, which is the point the paper's sentence makes.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.multiview import MultiViewSpec, enumerate_multi_views
from repro.engine.context import ExecutionContext
from repro.engine.phases import Phase
from repro.optimizer.plan import ExecutionPlan, MultiFlagStep
from repro.pruning.base import PruneReport


class MultiViewEnumeratePhase(Phase):
    """Enumerate all ``n_dimensions``-attribute views of the schema."""

    name = "enumerate"

    def __init__(
        self,
        n_dimensions: int = 2,
        functions: Sequence[str] = ("sum", "avg"),
        include_count: bool = True,
    ):
        self.n_dimensions = n_dimensions
        self.functions = tuple(functions)
        self.include_count = include_count

    def run(self, ctx: ExecutionContext) -> None:
        ctx.mark_query_baseline()
        ctx.schema = (
            ctx.cache.schema(ctx.query.table)
            if ctx.cache is not None
            else ctx.backend.schema(ctx.query.table)
        )
        ctx.candidates = enumerate_multi_views(
            ctx.schema,
            self.n_dimensions,
            self.functions,
            self.include_count,
            dimensions=list(ctx.dimensions) if ctx.dimensions is not None else None,
        )
        from repro.engine.phases import filter_view_space

        ctx.candidates = filter_view_space(ctx.candidates, None, ctx.measures)
        ctx.surviving = list(ctx.candidates)


class MultiViewPrunePhase(Phase):
    """Drop views touching any predicate-constrained dimension.

    The tuple-dimension analogue of ``split_predicate_dimensions``: a view
    grouping by a constrained attribute deviates maximally by construction.
    """

    name = "prune"

    def run(self, ctx: ExecutionContext) -> None:
        predicate = ctx.query.predicate
        if predicate is None:
            return
        constrained = predicate.referenced_columns()
        report = PruneReport(
            rule="predicate_dimensions", examined=len(ctx.surviving)
        )
        kept: list[MultiViewSpec] = []
        for view in ctx.surviving:
            overlap = set(view.dimensions) & constrained
            if overlap:
                report.pruned.append(
                    (
                        view,
                        f"dimension(s) {sorted(overlap)} constrained by the "
                        "analyst's predicate (trivially deviating)",
                    )
                )
            else:
                kept.append(view)
        ctx.prune_reports.append(report)
        ctx.surviving = kept


class DropEmptyViewsPhase(Phase):
    """Remove scored views whose aligned series produced no groups.

    A view with no attribute-value combinations (empty table, fully
    disjoint partitions) carries no information; recommending its
    zero-utility placeholder would hand downstream consumers empty
    distributions. Runs between Score and Select.
    """

    name = "filter"

    def run(self, ctx: ExecutionContext) -> None:
        ctx.scored = {
            spec: view for spec, view in ctx.scored.items() if view.groups
        }


class MultiViewPlanPhase(Phase):
    """One flag-combined query per dimension combination, aggregates shared."""

    name = "plan"

    def run(self, ctx: ExecutionContext) -> None:
        if not ctx.reference.flag_combinable:
            from repro.util.errors import QueryError

            raise QueryError(
                "multi-attribute views support only flag-combinable "
                "references (table / complement), not query-vs-query"
            )
        by_dims: dict[tuple[str, ...], list[MultiViewSpec]] = {}
        for view in ctx.surviving:
            by_dims.setdefault(view.dimensions, []).append(view)
        table = ctx.resolve_execution_table()
        ctx.plan = ExecutionPlan(
            steps=[
                MultiFlagStep(
                    table=table,
                    predicate=ctx.query.predicate,
                    dimensions=dims,
                    view_specs=tuple(members),
                    reference=ctx.reference,
                )
                for dims, members in by_dims.items()
            ]
        )
        ctx.plan_description = ctx.plan.describe()
