"""The default phase set: Figure 4 as composable pipeline stages.

Metadata Collector → Query Generator (enumerate + prune) → Optimizer
(sample + plan) → DBMS (execute) → View Processor (score) → top-k
(select). Each phase is an object with a ``name`` (its stopwatch key) and
a ``run(ctx)`` that reads/writes :class:`~repro.engine.context.ExecutionContext`
fields. Alternative strategies swap individual phases: incremental
execution replaces Execute/Score (:mod:`repro.engine.incremental`),
multi-attribute views replace Enumerate/Prune/Plan
(:mod:`repro.engine.multiview`).
"""

from __future__ import annotations

from repro.core.space import enumerate_views, split_predicate_dimensions
from repro.core.topk import top_k_views
from repro.core.view_processor import ViewProcessor
from repro.engine.context import ExecutionContext
from repro.optimizer.plan import Planner
from repro.pruning.base import PruneReport


class Phase:
    """One pipeline stage; ``name`` doubles as the stopwatch key."""

    name: str = ""

    def run(self, ctx: ExecutionContext) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def filter_view_space(candidates, dimensions, measures):
    """Restrict enumerated views to the requested attribute subsets.

    ``dimensions``/``measures`` of None mean "no restriction"; count(*)
    views (measure None) survive any measure filter — they carry no
    measure to restrict.
    """
    if dimensions is not None:
        allowed = set(dimensions)
        candidates = [v for v in candidates if v.dimension in allowed]
    if measures is not None:
        allowed = set(measures)
        candidates = [
            v for v in candidates if v.measure is None or v.measure in allowed
        ]
    return candidates


class MetadataPhase(Phase):
    """Collect table metadata (cached per data version) and log the query."""

    name = "metadata"

    def run(self, ctx: ExecutionContext) -> None:
        collector = ctx.metadata_collector
        if collector is not None:
            # The analyst's query itself is history the access-frequency
            # pruner learns from (§3.3).
            collector.access_log.record_query(ctx.query)
        max_rows = ctx.config.metadata_max_rows
        if ctx.cache is not None:
            ctx.base_table = ctx.cache.base_table(ctx.query.table, max_rows=max_rows)
            if collector is not None:
                ctx.metadata = ctx.cache.metadata(
                    collector, ctx.query.table, max_rows=max_rows
                )
        else:
            ctx.base_table = ctx.backend.fetch_table(
                ctx.query.table, max_rows=max_rows
            )
            if collector is not None:
                ctx.metadata = collector.collect(ctx.base_table)
        # Count view-query round trips only (metadata fetches excluded).
        ctx.mark_query_baseline()


class EnumeratePhase(Phase):
    """Enumerate the candidate view space A x M x F."""

    name = "enumerate"

    def run(self, ctx: ExecutionContext) -> None:
        ctx.mark_query_baseline()
        ctx.schema = (
            ctx.cache.schema(ctx.query.table)
            if ctx.cache is not None
            else ctx.backend.schema(ctx.query.table)
        )
        ctx.candidates = enumerate_views(
            ctx.schema,
            functions=ctx.config.aggregate_functions,
            include_count=ctx.config.include_count_views,
        )
        ctx.candidates = filter_view_space(
            ctx.candidates, ctx.dimensions, ctx.measures
        )
        ctx.surviving = list(ctx.candidates)


class PrunePhase(Phase):
    """Drop predicate-constrained dimensions, then run the pruning rules."""

    name = "prune"

    def run(self, ctx: ExecutionContext) -> None:
        surviving = list(ctx.surviving)
        if ctx.config.exclude_predicate_dimensions:
            surviving, excluded = split_predicate_dimensions(
                surviving, ctx.query.predicate
            )
            report = PruneReport(
                rule="predicate_dimensions", examined=len(ctx.candidates)
            )
            report.pruned.extend(excluded)
            ctx.prune_reports.append(report)
        if ctx.metadata is not None:
            pipeline = ctx.config.pruning_pipeline()
            surviving, rule_reports = pipeline.apply(surviving, ctx.metadata)
            ctx.prune_reports.extend(rule_reports)
        ctx.surviving = surviving


class SamplePhase(Phase):
    """Materialize a sampled execution table when the optimization applies.

    The fraction comes from ``config.sample_fraction``, or — opt-in, when
    that is unset but ``auto_sample_epsilon`` is — from the cost model's
    Hoeffding-bound selector (the smallest candidate fraction whose
    sampled size keeps the error within the ε budget). Auto selection
    never engages silently: both knobs default to exact execution.
    """

    name = "sample"

    def run(self, ctx: ExecutionContext) -> None:
        config = ctx.config
        ctx.execution_table = ctx.query.table
        ctx.sample_fraction = None
        fraction = config.sample_fraction
        if fraction is not None and fraction >= 1.0:
            return
        auto = fraction is None
        if auto and not (
            config.cost_based_planning and config.auto_sample_epsilon is not None
        ):
            return
        rows = (
            ctx.cache.row_count(ctx.query.table)
            if ctx.cache is not None
            else ctx.backend.row_count(ctx.query.table)
        )
        if rows < config.min_rows_for_sampling:
            return
        if auto:
            from repro.optimizer.cost import choose_sample_fraction

            fraction = choose_sample_fraction(rows, config.auto_sample_epsilon)
            if fraction is None or fraction >= 1.0:
                return
            ctx.extras["auto_sample_fraction"] = fraction
        if ctx.cache is not None:
            ctx.execution_table = ctx.cache.sample(
                ctx.query.table, fraction, config.sample_seed
            )
        else:
            # No cache owner: the sample is the caller's to drop — its name
            # is published under extras["unmanaged_sample"].
            from repro.backends.base import materialize_sample
            from repro.engine.cache import sample_table_name

            ctx.execution_table = sample_table_name(
                ctx.query.table, fraction, config.sample_seed
            )
            materialize_sample(
                ctx.backend,
                ctx.query.table,
                ctx.execution_table,
                fraction,
                seed=config.sample_seed,
            )
            ctx.extras["unmanaged_sample"] = ctx.execution_table
        ctx.sample_fraction = fraction


class PlanPhase(Phase):
    """Map surviving views onto an execution plan (the Optimizer proper)."""

    name = "plan"

    def run(self, ctx: ExecutionContext) -> None:
        cardinalities: dict[str, int] = {}
        if ctx.metadata is not None and ctx.schema is not None:
            cardinalities = {
                spec.name: ctx.metadata.stats[spec.name].n_distinct
                for spec in ctx.schema.dimensions
            }
        planner = Planner(ctx.config.planner_config())
        ctx.plan = planner.plan(
            ctx.surviving,
            ctx.resolve_execution_table(),
            ctx.query.predicate,
            cardinalities,
            ctx.backend.capabilities,
            reference=ctx.reference,
        )
        ctx.plan_description = ctx.plan.describe()


class CostBasedPlanner(PlanPhase):
    """Cost-based Optimizer: enumerate candidate plans, run the cheapest.

    Replaces the static capability branch that resolved
    ``GroupByCombining.AUTO``: every feasible combining mode is planned,
    priced by :func:`~repro.optimizer.cost.estimate_plan_cost` against the
    table's statistics profile, converted to seconds with the backend's
    calibrated coefficients, and the argmin executes. Ties (strict
    comparison) keep the capability-declared choice, so the static branch
    remains the behavior on indifferent workloads. Every candidate is
    equivalence-preserving, so the choice changes *how* views execute,
    never the recommendations. ``config.cost_based_planning=False``
    reverts to the static :class:`PlanPhase` wholesale.

    The phase keeps ``name = "plan"`` so stopwatch breakdowns and result
    schemas are unchanged; its decision record travels on
    ``ctx.plan_decision`` and feeds the engine's calibration loop.
    """

    name = "plan"

    def run(self, ctx: ExecutionContext) -> None:
        config = ctx.config
        if not getattr(config, "cost_based_planning", False):
            super().run(ctx)
            return
        from dataclasses import replace

        from repro.optimizer.cost import (
            CostModel,
            PlanDecision,
            choose_parallelism,
            estimate_plan_cost,
        )
        from repro.optimizer.plan import GroupByCombining, resolve_auto_mode

        capabilities = ctx.backend.capabilities
        profile = self._profile(ctx)
        cardinalities = self._cardinalities(ctx, profile)
        if profile is not None:
            n_rows = profile.n_rows
        elif ctx.base_table is not None:
            n_rows = ctx.base_table.num_rows
        else:
            n_rows = 0
        model = CostModel.for_backend(
            ctx.backend.name,
            ctx.cache.calibration if ctx.cache is not None else None,
        )
        table = ctx.resolve_execution_table()
        base = config.planner_config()

        mode = config.groupby_combining
        static_choice = resolve_auto_mode(mode, capabilities)
        if mode is GroupByCombining.AUTO:
            # Static choice first: strict argmin keeps it on ties.
            candidates = [static_choice] + [
                m
                for m in (
                    GroupByCombining.GROUPING_SETS,
                    GroupByCombining.ROLLUP,
                    GroupByCombining.NONE,
                )
                if m is not static_choice
            ]
        else:
            candidates = [static_choice]

        best = None
        candidate_seconds: dict[str, float] = {}
        for candidate in candidates:
            planner = Planner(replace(base, groupby_combining=candidate))
            plan = planner.plan(
                ctx.surviving,
                table,
                ctx.query.predicate,
                cardinalities,
                capabilities,
                reference=ctx.reference,
            )
            cost = estimate_plan_cost(
                plan,
                n_rows,
                cardinalities,
                capabilities,
                sample_fraction=ctx.sample_fraction,
            )
            seconds = model.predict_seconds(cost)
            candidate_seconds[candidate.value] = seconds
            if best is None or seconds < best[2]:
                best = (plan, cost, seconds, candidate)

        plan, cost, seconds, chosen = best
        ctx.plan = plan
        ctx.plan_description = plan.describe()
        decision = PlanDecision(
            kind=chosen.value,
            cost_based=len(candidates) > 1,
            predicted=cost,
            predicted_seconds=seconds,
            candidate_seconds=candidate_seconds,
            coefficients=model.coefficients,
            sample_fraction=ctx.sample_fraction,
        )
        n_steps = len(plan.steps)
        decision.recommended_workers = choose_parallelism(
            n_steps,
            seconds / n_steps if n_steps else 0.0,
            config.n_workers,
        )
        if (
            config.auto_parallelism
            and ctx.executor is not None
            and decision.recommended_workers <= 1
        ):
            # Predicted per-step work cannot amortize worker dispatch
            # overhead: degrade this run to sequential execution.
            ctx.executor = None
        ctx.plan_decision = decision

    def _profile(self, ctx: ExecutionContext):
        """The base table's statistics profile, or None when unavailable."""
        from repro.util.errors import ReproError

        try:
            if ctx.cache is not None:
                return ctx.cache.profile(ctx.query.table)
            from repro.backends.base import collect_statistics

            return collect_statistics(ctx.backend, ctx.query.table)
        except ReproError:
            # Statistics are advisory: fall back to metadata-derived
            # cardinalities rather than failing the recommendation.
            return None

    def _cardinalities(self, ctx: ExecutionContext, profile) -> dict[str, int]:
        """Dimension cardinalities: profile first, metadata stats fallback."""
        cardinalities: dict[str, int] = {}
        if ctx.metadata is not None and ctx.schema is not None:
            cardinalities = {
                spec.name: ctx.metadata.stats[spec.name].n_distinct
                for spec in ctx.schema.dimensions
            }
        if profile is not None:
            cardinalities.update(profile.cardinalities())
        return cardinalities


class ExecutePhase(Phase):
    """Run the plan against the DBMS, parallel when a pool is available."""

    name = "execute"

    def run(self, ctx: ExecutionContext) -> None:
        if ctx.plan is None:
            return
        if ctx.executor is not None:
            ctx.raw_views, report = ctx.executor.run(ctx.plan, ctx.backend)
            ctx.extras["parallel_report"] = report
        else:
            ctx.raw_views = ctx.plan.run(ctx.backend)


class ScorePhase(Phase):
    """View Processor: align, normalize, and score every raw view.

    Scores through the columnar batch path by default (dense per-attribute
    blocks, vectorized metrics — bit-for-bit identical utilities); set
    ``config.batch_scoring = False`` to fall back to the per-view loop.

    ``metric``/``normalization`` override the context config — the hook
    through which facades holding a custom :class:`DistanceMetric`
    *instance* (not just a registry name) keep it across the pipeline.
    """

    name = "score"

    def __init__(self, metric=None, normalization=None):
        self.metric = metric
        self.normalization = normalization

    def processor(self, ctx: ExecutionContext) -> ViewProcessor:
        """The View Processor configured for this run."""
        metric = (
            self.metric if self.metric is not None else ctx.config.resolve_metric()
        )
        normalization = (
            self.normalization
            if self.normalization is not None
            else ctx.config.normalization
        )
        return ViewProcessor(metric, normalization)

    def run(self, ctx: ExecutionContext) -> None:
        processor = self.processor(ctx)
        if getattr(ctx.config, "batch_scoring", True):
            ctx.scored = processor.score_batch(ctx.raw_views)
        else:
            ctx.scored = processor.score_all(ctx.raw_views)


class SelectPhase(Phase):
    """Pick the top-k by utility (Problem 2.1)."""

    name = "select"

    def run(self, ctx: ExecutionContext) -> None:
        ctx.recommendations = top_k_views(ctx.scored.values(), ctx.k)


class RenderPhase(Phase):
    """Translate the selected top-k into chart frames (§3.2 frontend).

    Appended after :class:`SelectPhase` when the request's
    ``options.render`` block asks for output. Each recommended view is
    paired with a chart chosen by the DataVizard-style selector
    (:func:`repro.viz.chart_select.select_chart`: dtype, cardinality,
    semantic tag, series count) and emitted as a JSON-safe frame —
    Vega-Lite spec or standalone SVG plus the chart-type rationale.
    Frames live on ``ctx.visualizations`` and travel inside the result,
    so coalesced joiners, the in-process LRU, and the shm cluster cache
    all carry them without re-rendering.
    """

    name = "render"

    def __init__(self, render: "dict | None" = None):
        #: Normalized ``options.render`` block (format/theme/max_charts).
        self.render = dict(render) if render else {}

    def run(self, ctx: ExecutionContext) -> None:
        from repro.viz.render import build_visualizations

        ctx.visualizations = build_visualizations(
            ctx.recommendations, ctx.schema, self.render
        )


def default_phases() -> list[Phase]:
    """The standard batch pipeline, in Figure-4 order."""
    return [
        MetadataPhase(),
        EnumeratePhase(),
        PrunePhase(),
        SamplePhase(),
        CostBasedPlanner(),
        ExecutePhase(),
        ScorePhase(),
        SelectPhase(),
    ]
