"""The default phase set: Figure 4 as composable pipeline stages.

Metadata Collector → Query Generator (enumerate + prune) → Optimizer
(sample + plan) → DBMS (execute) → View Processor (score) → top-k
(select). Each phase is an object with a ``name`` (its stopwatch key) and
a ``run(ctx)`` that reads/writes :class:`~repro.engine.context.ExecutionContext`
fields. Alternative strategies swap individual phases: incremental
execution replaces Execute/Score (:mod:`repro.engine.incremental`),
multi-attribute views replace Enumerate/Prune/Plan
(:mod:`repro.engine.multiview`).
"""

from __future__ import annotations

from repro.core.space import enumerate_views, split_predicate_dimensions
from repro.core.topk import top_k_views
from repro.core.view_processor import ViewProcessor
from repro.engine.context import ExecutionContext
from repro.optimizer.plan import Planner
from repro.pruning.base import PruneReport


class Phase:
    """One pipeline stage; ``name`` doubles as the stopwatch key."""

    name: str = ""

    def run(self, ctx: ExecutionContext) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def filter_view_space(candidates, dimensions, measures):
    """Restrict enumerated views to the requested attribute subsets.

    ``dimensions``/``measures`` of None mean "no restriction"; count(*)
    views (measure None) survive any measure filter — they carry no
    measure to restrict.
    """
    if dimensions is not None:
        allowed = set(dimensions)
        candidates = [v for v in candidates if v.dimension in allowed]
    if measures is not None:
        allowed = set(measures)
        candidates = [
            v for v in candidates if v.measure is None or v.measure in allowed
        ]
    return candidates


class MetadataPhase(Phase):
    """Collect table metadata (cached per data version) and log the query."""

    name = "metadata"

    def run(self, ctx: ExecutionContext) -> None:
        collector = ctx.metadata_collector
        if collector is not None:
            # The analyst's query itself is history the access-frequency
            # pruner learns from (§3.3).
            collector.access_log.record_query(ctx.query)
        max_rows = ctx.config.metadata_max_rows
        if ctx.cache is not None:
            ctx.base_table = ctx.cache.base_table(ctx.query.table, max_rows=max_rows)
            if collector is not None:
                ctx.metadata = ctx.cache.metadata(
                    collector, ctx.query.table, max_rows=max_rows
                )
        else:
            ctx.base_table = ctx.backend.fetch_table(
                ctx.query.table, max_rows=max_rows
            )
            if collector is not None:
                ctx.metadata = collector.collect(ctx.base_table)
        # Count view-query round trips only (metadata fetches excluded).
        ctx.mark_query_baseline()


class EnumeratePhase(Phase):
    """Enumerate the candidate view space A x M x F."""

    name = "enumerate"

    def run(self, ctx: ExecutionContext) -> None:
        ctx.mark_query_baseline()
        ctx.schema = (
            ctx.cache.schema(ctx.query.table)
            if ctx.cache is not None
            else ctx.backend.schema(ctx.query.table)
        )
        ctx.candidates = enumerate_views(
            ctx.schema,
            functions=ctx.config.aggregate_functions,
            include_count=ctx.config.include_count_views,
        )
        ctx.candidates = filter_view_space(
            ctx.candidates, ctx.dimensions, ctx.measures
        )
        ctx.surviving = list(ctx.candidates)


class PrunePhase(Phase):
    """Drop predicate-constrained dimensions, then run the pruning rules."""

    name = "prune"

    def run(self, ctx: ExecutionContext) -> None:
        surviving = list(ctx.surviving)
        if ctx.config.exclude_predicate_dimensions:
            surviving, excluded = split_predicate_dimensions(
                surviving, ctx.query.predicate
            )
            report = PruneReport(
                rule="predicate_dimensions", examined=len(ctx.candidates)
            )
            report.pruned.extend(excluded)
            ctx.prune_reports.append(report)
        if ctx.metadata is not None:
            pipeline = ctx.config.pruning_pipeline()
            surviving, rule_reports = pipeline.apply(surviving, ctx.metadata)
            ctx.prune_reports.extend(rule_reports)
        ctx.surviving = surviving


class SamplePhase(Phase):
    """Materialize a sampled execution table when the optimization applies."""

    name = "sample"

    def run(self, ctx: ExecutionContext) -> None:
        config = ctx.config
        ctx.execution_table = ctx.query.table
        ctx.sample_fraction = None
        if config.sample_fraction is None or config.sample_fraction >= 1.0:
            return
        rows = (
            ctx.cache.row_count(ctx.query.table)
            if ctx.cache is not None
            else ctx.backend.row_count(ctx.query.table)
        )
        if rows < config.min_rows_for_sampling:
            return
        if ctx.cache is not None:
            ctx.execution_table = ctx.cache.sample(
                ctx.query.table, config.sample_fraction, config.sample_seed
            )
        else:
            # No cache owner: the sample is the caller's to drop — its name
            # is published under extras["unmanaged_sample"].
            from repro.backends.base import materialize_sample
            from repro.engine.cache import sample_table_name

            ctx.execution_table = sample_table_name(
                ctx.query.table, config.sample_fraction, config.sample_seed
            )
            materialize_sample(
                ctx.backend,
                ctx.query.table,
                ctx.execution_table,
                config.sample_fraction,
                seed=config.sample_seed,
            )
            ctx.extras["unmanaged_sample"] = ctx.execution_table
        ctx.sample_fraction = config.sample_fraction


class PlanPhase(Phase):
    """Map surviving views onto an execution plan (the Optimizer proper)."""

    name = "plan"

    def run(self, ctx: ExecutionContext) -> None:
        cardinalities: dict[str, int] = {}
        if ctx.metadata is not None and ctx.schema is not None:
            cardinalities = {
                spec.name: ctx.metadata.stats[spec.name].n_distinct
                for spec in ctx.schema.dimensions
            }
        planner = Planner(ctx.config.planner_config())
        ctx.plan = planner.plan(
            ctx.surviving,
            ctx.resolve_execution_table(),
            ctx.query.predicate,
            cardinalities,
            ctx.backend.capabilities,
            reference=ctx.reference,
        )
        ctx.plan_description = ctx.plan.describe()


class ExecutePhase(Phase):
    """Run the plan against the DBMS, parallel when a pool is available."""

    name = "execute"

    def run(self, ctx: ExecutionContext) -> None:
        if ctx.plan is None:
            return
        if ctx.executor is not None:
            ctx.raw_views, report = ctx.executor.run(ctx.plan, ctx.backend)
            ctx.extras["parallel_report"] = report
        else:
            ctx.raw_views = ctx.plan.run(ctx.backend)


class ScorePhase(Phase):
    """View Processor: align, normalize, and score every raw view.

    Scores through the columnar batch path by default (dense per-attribute
    blocks, vectorized metrics — bit-for-bit identical utilities); set
    ``config.batch_scoring = False`` to fall back to the per-view loop.

    ``metric``/``normalization`` override the context config — the hook
    through which facades holding a custom :class:`DistanceMetric`
    *instance* (not just a registry name) keep it across the pipeline.
    """

    name = "score"

    def __init__(self, metric=None, normalization=None):
        self.metric = metric
        self.normalization = normalization

    def processor(self, ctx: ExecutionContext) -> ViewProcessor:
        """The View Processor configured for this run."""
        metric = (
            self.metric if self.metric is not None else ctx.config.resolve_metric()
        )
        normalization = (
            self.normalization
            if self.normalization is not None
            else ctx.config.normalization
        )
        return ViewProcessor(metric, normalization)

    def run(self, ctx: ExecutionContext) -> None:
        processor = self.processor(ctx)
        if getattr(ctx.config, "batch_scoring", True):
            ctx.scored = processor.score_batch(ctx.raw_views)
        else:
            ctx.scored = processor.score_all(ctx.raw_views)


class SelectPhase(Phase):
    """Pick the top-k by utility (Problem 2.1)."""

    name = "select"

    def run(self, ctx: ExecutionContext) -> None:
        ctx.recommendations = top_k_views(ctx.scored.values(), ctx.k)


def default_phases() -> list[Phase]:
    """The standard batch pipeline, in Figure-4 order."""
    return [
        MetadataPhase(),
        EnumeratePhase(),
        PrunePhase(),
        SamplePhase(),
        PlanPhase(),
        ExecutePhase(),
        ScorePhase(),
        SelectPhase(),
    ]
