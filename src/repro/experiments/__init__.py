"""Experiment harness for the demo scenarios (§4).

Scenario 1 (utility): does SeeDB surface the planted-interesting views,
and how does metric choice change that? Scenario 2 (performance): how do
latency and accuracy respond to data size, attribute count, distribution,
and each optimization toggle? The benchmarks under ``benchmarks/`` are
thin wrappers over these runners, so every table/figure of EXPERIMENTS.md
can also be regenerated programmatically.
"""

from repro.experiments.harness import Sweep, measure, sweep_rows
from repro.experiments.latency import (
    latency_vs_optimizations,
    measure_recommendation,
)
from repro.experiments.accuracy import (
    metric_quality_on_planted,
    precision_at_k,
    sampling_accuracy_sweep,
)
from repro.experiments.figures import (
    figure_1_spec,
    figures_2_3_utilities,
    verify_table_1,
)
from repro.experiments.report import render_markdown_table, write_rows_csv

__all__ = [
    "Sweep",
    "measure",
    "sweep_rows",
    "latency_vs_optimizations",
    "measure_recommendation",
    "metric_quality_on_planted",
    "precision_at_k",
    "sampling_accuracy_sweep",
    "figure_1_spec",
    "figures_2_3_utilities",
    "verify_table_1",
    "render_markdown_table",
    "write_rows_csv",
]
