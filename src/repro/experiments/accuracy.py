"""Accuracy experiments (demo Scenario 1 and the sampling trade-off).

Ground truth comes from planted deviations in synthetic data: a view is
"truly interesting" when its dimension carries a planted deviation.
Precision@k then measures how well a (metric, configuration) surfaces the
planted views, and the sampling sweep quantifies accuracy loss vs. sample
fraction — the trade-off §3.3 calls out.
"""

from __future__ import annotations

from typing import Any

from repro.backends.memory import MemoryBackend
from repro.core.config import SeeDBConfig
from repro.core.recommender import SeeDB
from repro.core.result import RecommendationResult
from repro.datasets.synthetic import SyntheticDataset
from repro.db.query import RowSelectQuery
from repro.metrics.registry import available_metrics
from repro.sampling.accuracy import kendall_tau, topk_precision, utility_errors


def precision_at_k(result: RecommendationResult, dataset: SyntheticDataset) -> float:
    """Fraction of recommended views whose dimension was planted."""
    if not result.recommendations:
        return 0.0
    hits = sum(
        1 for view in result.recommendations if dataset.is_planted(view.spec)
    )
    return hits / len(result.recommendations)


def metric_quality_on_planted(
    dataset: SyntheticDataset,
    k: int = 5,
    metrics: "list[str] | None" = None,
    config: "SeeDBConfig | None" = None,
) -> list[dict[str, Any]]:
    """Scenario 1 rows: precision@k of every distance metric."""
    backend = MemoryBackend()
    backend.register_table(dataset.table)
    query = RowSelectQuery(dataset.table.name, dataset.predicate)
    base = config if config is not None else SeeDBConfig(prune_correlated=False)
    rows = []
    for metric in metrics if metrics is not None else available_metrics():
        seedb = SeeDB(backend, base.with_overrides(metric=metric))
        result = seedb.recommend(query, k=k)
        rows.append(
            {
                "metric": metric,
                "precision_at_k": round(precision_at_k(result, dataset), 4),
                "top_view": result.recommendations[0].spec.label
                if result.recommendations
                else "(none)",
            }
        )
    return rows


def sampling_accuracy_sweep(
    dataset: SyntheticDataset,
    fractions: "list[float]",
    k: int = 5,
    config: "SeeDBConfig | None" = None,
) -> list[dict[str, Any]]:
    """E10 rows: latency proxy + accuracy vs sample fraction.

    The exact (fraction=None) run provides ground-truth utilities; each
    sampled run is compared against it with top-k precision, Kendall's
    tau, and mean utility error.
    """
    backend = MemoryBackend()
    backend.register_table(dataset.table)
    query = RowSelectQuery(dataset.table.name, dataset.predicate)
    base = config if config is not None else SeeDBConfig(
        prune_correlated=False, min_rows_for_sampling=0
    )

    exact = SeeDB(backend, base).recommend(query, k=k)
    exact_utilities = exact.utilities

    rows: list[dict[str, Any]] = [
        {
            "fraction": 1.0,
            "topk_precision": 1.0,
            "kendall_tau": 1.0,
            "mean_abs_error": 0.0,
            "latency_s": round(exact.total_seconds, 5),
        }
    ]
    for fraction in fractions:
        sampled_config = base.with_overrides(sample_fraction=fraction)
        result = SeeDB(backend, sampled_config).recommend(query, k=k)
        errors = utility_errors(exact_utilities, result.utilities)
        rows.append(
            {
                "fraction": fraction,
                "topk_precision": round(
                    topk_precision(exact_utilities, result.utilities, k), 4
                ),
                "kendall_tau": round(kendall_tau(exact_utilities, result.utilities), 4),
                "mean_abs_error": round(errors["mean_abs_error"], 5),
                "latency_s": round(result.total_seconds, 5),
            }
        )
    return rows
