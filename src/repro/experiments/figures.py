"""Regeneration of the paper's concrete artifacts (Table 1, Figures 1-3).

* :func:`verify_table_1` — checks the engine reproduces Table 1 exactly
  from the fact table.
* :func:`figure_1_spec` — the bar chart of Figure 1.
* :func:`figures_2_3_utilities` — the Scenario A vs Scenario B utility
  comparison: the same target view scored against the Figure 2 and
  Figure 3 comparison distributions must rank A far above B, for every
  metric. This is the paper's core qualitative claim made quantitative.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.backends.memory import MemoryBackend
from repro.datasets.laserwave import (
    TABLE_1_ROWS,
    laserwave_sales_history,
    laserwave_table_1,
    scenario_a_comparison,
    scenario_b_comparison,
)
from repro.db.aggregates import Aggregate
from repro.db.expressions import col
from repro.db.query import AggregateQuery
from repro.metrics.normalize import align_series, normalize_distribution
from repro.metrics.registry import available_metrics, get_metric
from repro.viz.spec import ChartSpec, ChartType, single_series_spec


def verify_table_1(n_rows: int = 20_000, seed: int = 42) -> dict[str, Any]:
    """Run the §1 query pipeline and compare against Table 1 verbatim.

    Returns per-store computed totals and the max absolute error (which
    must be < 1 cent — the fact-table construction is exact by design).
    """
    backend = MemoryBackend()
    backend.register_table(laserwave_sales_history(n_rows=n_rows, seed=seed))
    result = backend.execute(
        AggregateQuery(
            table="sales",
            group_by=("store",),
            aggregates=(Aggregate("sum", "amount", "total_sales"),),
            predicate=(col("product") == "Laserwave"),
        )
    )
    computed = dict(zip(result.column("store"), result.column("total_sales")))
    expected = dict(TABLE_1_ROWS)
    max_error = max(
        abs(float(computed[store]) - total) for store, total in expected.items()
    )
    return {
        "computed": {store: float(value) for store, value in computed.items()},
        "expected": expected,
        "max_abs_error": max_error,
    }


def figure_1_spec() -> ChartSpec:
    """The Figure 1 bar chart (total sales by store for the Laserwave)."""
    table = laserwave_table_1()
    return single_series_spec(
        title="Total Sales by Store for Laserwave (Figure 1)",
        x_label="Store",
        y_label="Total Sales ($)",
        categories=list(table.column("store")),
        values=list(table.column("total_sales")),
        chart_type=ChartType.BAR,
    )


def figures_2_3_utilities(metrics: "list[str] | None" = None) -> list[dict[str, Any]]:
    """Utility of the Laserwave view vs Scenario A and B, per metric.

    The paper's claim: against Figure 2 (opposite trend) the view is
    interesting; against Figure 3 (same trend) it is not. Quantitatively:
    utility(A) must exceed utility(B) by a wide margin for every metric.
    """
    target = laserwave_table_1()
    rows = []
    for metric_name in metrics if metrics is not None else available_metrics():
        metric = get_metric(metric_name)
        utilities = {}
        for label, comparison in (
            ("scenario_a", scenario_a_comparison()),
            ("scenario_b", scenario_b_comparison()),
        ):
            _groups, target_values, comparison_values = align_series(
                list(target.column("store")),
                target.column("total_sales"),
                list(comparison.column("store")),
                comparison.column("total_sales"),
            )
            utilities[label] = metric.distance(
                normalize_distribution(target_values),
                normalize_distribution(comparison_values),
            )
        ratio = (
            utilities["scenario_a"] / utilities["scenario_b"]
            if utilities["scenario_b"] > 0
            else np.inf
        )
        rows.append(
            {
                "metric": metric_name,
                "utility_scenario_a": round(utilities["scenario_a"], 4),
                "utility_scenario_b": round(utilities["scenario_b"], 4),
                "a_over_b": round(float(ratio), 2),
            }
        )
    return rows
