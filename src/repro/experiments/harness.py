"""Generic sweep/measurement helpers shared by all experiments."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from repro.util.tabulate import format_table


def measure(fn: Callable[[], Any], repeats: int = 3) -> dict[str, float]:
    """Run ``fn`` ``repeats`` times; report best/mean wall-clock seconds.

    Best-of-N is the standard latency estimator for noisy machines; the
    mean is reported alongside for context.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        timings.append(time.perf_counter() - start)
    return {
        "best_seconds": min(timings),
        "mean_seconds": sum(timings) / len(timings),
    }


@dataclass
class Sweep:
    """A one-parameter experiment sweep producing printable rows.

    ``run`` maps a parameter value to a result dict; rows share the union
    of keys with the parameter first.
    """

    parameter: str
    values: Sequence[Any]
    run: Callable[[Any], dict[str, Any]]

    def rows(self) -> list[dict[str, Any]]:
        results = []
        for value in self.values:
            row = {self.parameter: value}
            row.update(self.run(value))
            results.append(row)
        return results

    def table(self) -> str:
        return rows_to_table(self.rows())


def sweep_rows(
    parameter: str, values: Sequence[Any], run: Callable[[Any], dict[str, Any]]
) -> list[dict[str, Any]]:
    """Functional shorthand for ``Sweep(parameter, values, run).rows()``."""
    return Sweep(parameter, values, run).rows()


def rows_to_table(rows: Iterable[dict[str, Any]]) -> str:
    """Render dict rows as an aligned text table (union of keys)."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    headers: list[str] = []
    for row in rows:
        for key in row:
            if key not in headers:
                headers.append(key)
    body = [[row.get(key, "") for key in headers] for row in rows]
    return format_table(body, headers=headers)
