"""Latency experiments (demo Scenario 2).

Shared runners for the data-size / attribute-count / distribution /
optimization sweeps. Each measurement reports wall-clock latency plus the
deterministic work counters (queries, scans) so benchmark results are
interpretable even on noisy machines.
"""

from __future__ import annotations

from typing import Any

from repro.backends.base import Backend
from repro.backends.memory import MemoryBackend
from repro.core.config import SeeDBConfig
from repro.core.recommender import SeeDB
from repro.db.expressions import Expression
from repro.db.query import RowSelectQuery
from repro.db.table import Table
from repro.experiments.harness import measure
from repro.optimizer.plan import GroupByCombining


def measure_recommendation(
    table: Table,
    predicate: "Expression | None",
    config: SeeDBConfig,
    backend: "Backend | None" = None,
    repeats: int = 3,
    k: int = 5,
) -> dict[str, Any]:
    """Latency + work counters for one configuration on one table."""
    if backend is None:
        backend = MemoryBackend()
    if not backend.has_table(table.name):
        backend.register_table(table)
    seedb = SeeDB(backend, config)
    query = RowSelectQuery(table.name, predicate)

    result_holder: dict[str, Any] = {}

    def run() -> None:
        result_holder["result"] = seedb.recommend(query, k=k)

    timing = measure(run, repeats=repeats)
    result = result_holder["result"]
    row: dict[str, Any] = {
        "latency_s": round(timing["best_seconds"], 5),
        "queries": result.n_queries,
        "views_executed": result.n_executed_views,
        "views_pruned": len(result.pruned_views()),
    }
    if isinstance(backend, MemoryBackend):
        row["scans"] = backend.engine.stats.table_scans
        backend.engine.stats.reset()
    return row


#: The ablation grid of benchmark E16: one row per optimization bundle.
OPTIMIZATION_GRID: tuple[tuple[str, dict[str, Any]], ...] = (
    (
        "basic (none)",
        dict(
            combine_target_comparison=False,
            combine_aggregates=False,
            groupby_combining=GroupByCombining.NONE,
            prune_low_variance=False,
            prune_cardinality=False,
            prune_correlated=False,
        ),
    ),
    (
        "+combine target/comparison",
        dict(
            combine_target_comparison=True,
            combine_aggregates=False,
            groupby_combining=GroupByCombining.NONE,
            prune_low_variance=False,
            prune_cardinality=False,
            prune_correlated=False,
        ),
    ),
    (
        "+combine aggregates",
        dict(
            combine_target_comparison=True,
            combine_aggregates=True,
            groupby_combining=GroupByCombining.NONE,
            prune_low_variance=False,
            prune_cardinality=False,
            prune_correlated=False,
        ),
    ),
    (
        "+combine group-bys",
        dict(
            combine_target_comparison=True,
            combine_aggregates=True,
            groupby_combining=GroupByCombining.AUTO,
            prune_low_variance=False,
            prune_cardinality=False,
            prune_correlated=False,
        ),
    ),
    (
        "+pruning",
        dict(
            combine_target_comparison=True,
            combine_aggregates=True,
            groupby_combining=GroupByCombining.AUTO,
            prune_low_variance=True,
            prune_cardinality=True,
            prune_correlated=True,
        ),
    ),
)


def latency_vs_optimizations(
    table: Table,
    predicate: "Expression | None",
    repeats: int = 3,
    base_config: "SeeDBConfig | None" = None,
) -> list[dict[str, Any]]:
    """The E16 ablation: cumulative optimization bundles on one workload."""
    rows = []
    base = base_config if base_config is not None else SeeDBConfig()
    for label, overrides in OPTIMIZATION_GRID:
        config = base.with_overrides(**overrides)
        row: dict[str, Any] = {"configuration": label}
        row.update(
            measure_recommendation(table, predicate, config, repeats=repeats)
        )
        rows.append(row)
    return rows
