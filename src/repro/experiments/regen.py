"""Regenerate the EXPERIMENTS.md measured-results appendix from CSVs.

``pytest benchmarks/ --benchmark-only`` writes each experiment's rows to
``benchmarks/results/<id>.csv``; this module turns that directory back
into one markdown document so the numbers in the write-up always have a
regenerable source. Used as::

    python -m repro.experiments.regen benchmarks/results >> appendix.md
"""

from __future__ import annotations

import csv
import sys
from pathlib import Path

from repro.experiments.report import render_markdown_table

#: Human titles per experiment-id prefix (anything unknown is titled by id).
TITLES = {
    "e1_table1": "E1 — Table 1: Laserwave totals by store",
    "e3_scenario_a_vs_b": "E3 — Figures 2 vs 3: utility per metric",
    "e6_view_space": "E6 — View-space growth",
    "e7_combine_target_comparison": "E7 — Target+comparison combining (work counts)",
    "e8_combine_aggregates": "E8 — Multi-aggregate combining",
    "e9_combine_groupbys": "E9 — Group-by combining strategies",
    "e9_rollup_budget": "E9 — Rollup memory-budget knob",
    "e9b_binpack_ablation": "E9b — Bin-packing: FFD vs exact",
    "e10_sampling_fractions": "E10 — Sampling: latency vs accuracy",
    "e10b_sampler_ablation": "E10b — Sampler choice on skewed data",
    "e11_parallelism": "E11 — Parallel execution",
    "e12_metric_quality": "E12 — Scenario 1: metric quality",
    "e13_datasize": "E13 — Scenario 2: data size",
    "e14_attributes": "E14 — Scenario 2: attribute count",
    "e15_distribution": "E15 — Scenario 2: data distribution",
    "e16_optimization_ablation": "E16 — Scenario 2: optimization toggles",
    "e17_pruning": "E17 — Pruning ablation",
    "e18_metric_agreement": "E18 — Metric ranking agreement",
    "e19_incremental": "E19 — Incremental early termination",
}


def load_result_rows(path: Path) -> list[dict]:
    """Rows of one experiment CSV, numerics converted back."""
    with path.open(newline="") as handle:
        rows = list(csv.DictReader(handle))
    for row in rows:
        for key, value in row.items():
            try:
                row[key] = int(value)
            except (TypeError, ValueError):
                try:
                    row[key] = float(value)
                except (TypeError, ValueError):
                    pass
    return rows


def render_results_appendix(results_dir: "str | Path") -> str:
    """All experiment CSVs under ``results_dir`` as one markdown document."""
    results_dir = Path(results_dir)
    paths = sorted(results_dir.glob("*.csv"))
    if not paths:
        return f"(no experiment CSVs found under {results_dir})"
    sections = ["# Measured results (regenerated from benchmark CSVs)"]
    for path in paths:
        title = TITLES.get(path.stem, path.stem)
        sections.append(f"\n## {title}\n")
        sections.append(render_markdown_table(load_result_rows(path)))
    return "\n".join(sections)


def main(argv: "list[str] | None" = None) -> int:
    """CLI: print the appendix for a results directory."""
    args = argv if argv is not None else sys.argv[1:]
    results_dir = args[0] if args else "benchmarks/results"
    print(render_results_appendix(results_dir))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
