"""Report writers: experiment rows as markdown tables and CSV files."""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any, Iterable


def render_markdown_table(rows: Iterable[dict[str, Any]]) -> str:
    """Render dict rows as a GitHub-flavoured markdown table."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    headers: list[str] = []
    for row in rows:
        for key in row:
            if key not in headers:
                headers.append(key)
    lines = [
        "| " + " | ".join(headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    for row in rows:
        lines.append(
            "| " + " | ".join(_cell(row.get(key, "")) for key in headers) + " |"
        )
    return "\n".join(lines)


def write_rows_csv(rows: Iterable[dict[str, Any]], path: "str | Path") -> Path:
    """Write dict rows to a CSV file; returns the path."""
    rows = list(rows)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    headers: list[str] = []
    for row in rows:
        for key in row:
            if key not in headers:
                headers.append(key)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=headers)
        writer.writeheader()
        writer.writerows(rows)
    return path


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return format(value, ".4g")
    return str(value)
