"""SeeDB frontend (§3.2, Figure 5).

"The SEEDB frontend, designed as a thin client, performs two main
functions: it allows the analyst to issue a query to SEEDB, and it
visualizes the results." Three query mechanisms, as in the paper: raw SQL
(:mod:`repro.sqlparser`), a form-based :class:`QueryBuilder`, and
pre-defined :mod:`templates <repro.frontend.templates>`. The
:class:`AnalystSession` ties them to recommendations, drill-downs, and
view metadata; :mod:`repro.frontend.cli` is the terminal equivalent of the
demo UI.
"""

from repro.frontend.query_builder import QueryBuilder
from repro.frontend.templates import available_templates, build_template
from repro.frontend.session import AnalystSession

__all__ = [
    "QueryBuilder",
    "available_templates",
    "build_template",
    "AnalystSession",
]

# The HTTP server (repro.frontend.server) is imported lazily by callers:
# it pulls in the service layer, which sessions not serving HTTP may skip.
