"""Command-line frontend: the terminal analogue of the demo UI (Figure 5).

Examples::

    seedb --dataset store_orders --sql "SELECT * FROM store_orders \
          WHERE category = 'Technology'" --k 3
    seedb --csv sales.csv --sql "SELECT * FROM sales WHERE region = 'west'" \
          --metric emd --backend sqlite --export charts/
    seedb serve --dataset store_orders --port 8080

The ``serve`` subcommand starts the HTTP/JSON frontend: a
:class:`~repro.service.SeeDBService` wrapping the loaded table, exposed
via ``/recommend``, ``/views``, ``/dashboard``, ``/healthz``, and
``/stats``.
"""

from __future__ import annotations

import argparse
import sys

from repro.api import RecommendationRequest, Reference
from repro.backends.registry import available_backend_schemes, backend_from_uri
from repro.core.config import SeeDBConfig
from repro.core.recommender import SeeDB
from repro.datasets.registry import available_datasets, load_dataset
from repro.db.csvio import read_csv
from repro.frontend.templates import available_templates, build_template
from repro.metrics.registry import available_metrics
from repro.util.errors import ReproError
from repro.viz.export import export_recommendations
from repro.viz.render_text import render_ascii
from repro.viz.spec import view_to_chart_spec


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="seedb",
        description="Recommend interesting visualizations for a query "
        "(SeeDB, VLDB 2014).",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--csv", help="load a CSV file as the fact table")
    source.add_argument(
        "--dataset",
        choices=available_datasets(),
        help="use a built-in demo dataset",
    )
    query_source = parser.add_mutually_exclusive_group(required=True)
    query_source.add_argument(
        "--sql",
        help="analyst query: SELECT * FROM <table> [WHERE ...]",
    )
    query_source.add_argument(
        "--template",
        choices=available_templates(),
        help="build the query from a pre-defined template (§3.2 mechanism c)",
    )
    parser.add_argument(
        "--template-arg",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="template parameter, e.g. --template-arg column=profit "
        "(repeatable; numeric values are auto-converted)",
    )
    parser.add_argument("--k", type=int, default=5, help="views to recommend")
    parser.add_argument(
        "--metric",
        default="js",
        choices=available_metrics(),
        help="deviation metric",
    )
    parser.add_argument(
        "--backend",
        default="memory",
        metavar="URI",
        help="DBMS backend to run on: "
        + ", ".join(available_backend_schemes())
        + " (bare name or URI, e.g. duckdb:///file.db)",
    )
    parser.add_argument(
        "--sample-fraction",
        type=float,
        default=None,
        help="run view queries on a sample of this fraction",
    )
    parser.add_argument(
        "--workers", type=int, default=1, help="parallel query workers"
    )
    parser.add_argument(
        "--export", metavar="DIR", help="write SVG/Vega/text charts to DIR"
    )
    parser.add_argument(
        "--html", metavar="FILE", help="write a standalone HTML report to FILE"
    )
    parser.add_argument(
        "--reference",
        default="table",
        metavar="SPEC",
        help="comparison row set: 'table' (whole table, default), "
        "'complement' (everything the query excludes), or a second "
        "row-selection SQL query to compare against",
    )
    parser.add_argument(
        "--stream",
        action="store_true",
        help="progressive delivery: print each incremental round's top "
        "view as it is estimated, then the final recommendations",
    )
    parser.add_argument(
        "--show-bad-views",
        action="store_true",
        help="also print the lowest-utility views (demo Scenario 1)",
    )
    parser.add_argument(
        "--charts", action="store_true", help="print ASCII charts for the top views"
    )
    return parser


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="seedb serve",
        description="Serve SeeDB recommendations over HTTP/JSON.",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--csv", help="load a CSV file as the fact table")
    source.add_argument(
        "--dataset",
        choices=available_datasets(),
        help="use a built-in demo dataset",
    )
    parser.add_argument(
        "--backend",
        default="memory",
        metavar="URI",
        help="DBMS backend to serve from: "
        + ", ".join(available_backend_schemes())
        + " (bare name or URI, e.g. duckdb:///file.db)",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8080, help="bind port (0 picks a free one)"
    )
    parser.add_argument("--k", type=int, default=5, help="default views per request")
    parser.add_argument(
        "--metric",
        default="js",
        choices=available_metrics(),
        help="default deviation metric",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="worker *processes* for the sharded cluster tier (0 = serve "
        "from threads in this process; N >= 1 spawns N process shards "
        "with consistent-hash routing and a shared-memory result cache)",
    )
    parser.add_argument(
        "--query-workers",
        type=int,
        default=1,
        help="parallel query workers per request (within one execution)",
    )
    parser.add_argument(
        "--max-requests",
        type=int,
        default=8,
        help="concurrent request executions the service schedules",
    )
    parser.add_argument(
        "--no-coalesce",
        action="store_true",
        help="disable identical in-flight request coalescing",
    )
    parser.add_argument(
        "--result-cache",
        type=int,
        default=256,
        help="finished-result LRU entries (0 disables)",
    )
    return parser


def serve_main(argv: "list[str] | None" = None) -> int:
    """``seedb serve`` entry point: load data, start the HTTP frontend.

    With ``--workers N`` (N >= 1) the service is a
    :class:`~repro.service.ClusterService` — the worker pool is started
    *before* any server thread exists, which keeps process forking safe —
    and SIGTERM/SIGINT drain gracefully: stop accepting, finish in-flight
    requests, join every worker, close backend replicas.
    """
    import signal
    import threading

    from repro.frontend.server import make_server
    from repro.service import ClusterService, SeeDBService

    args = build_serve_parser().parse_args(argv)
    service = None
    backend = None
    try:
        table = read_csv(args.csv) if args.csv else load_dataset(args.dataset)
        backend = backend_from_uri(args.backend)
        backend.register_table(table)
        config = SeeDBConfig(
            metric=args.metric, k=args.k, n_workers=args.query_workers
        )
        service_kwargs = dict(
            max_workers=args.max_requests,
            coalesce_requests=not args.no_coalesce,
            result_cache_size=args.result_cache,
        )
        if args.workers > 0:
            service = ClusterService(workers=args.workers, **service_kwargs)
        else:
            service = SeeDBService(**service_kwargs)
        service.register_backend(
            "default", backend, config=config, owned=True
        )
        if args.workers > 0:
            service.start()  # before the HTTP server spawns threads
        server = make_server(service, host=args.host, port=args.port)
    except (ReproError, OSError) as error:
        # Tear down whatever was built: an owned SqliteBackend holds a
        # temp database file that must not outlive a failed start.
        if service is not None:
            service.close()
        elif backend is not None:
            close = getattr(backend, "close", None)
            if close is not None:
                close()
        print(f"error: {error}", file=sys.stderr)
        return 2
    # Graceful drain on SIGTERM/SIGINT: serve_forever unblocks (shutdown
    # must come from another thread), then the finally block finishes
    # in-flight requests, joins workers, and closes backend replicas.
    # Handlers go in BEFORE the banner: supervisors (and tests) treat the
    # banner as "ready", and a SIGTERM racing the last few statements of
    # startup must drain, not hit the default action mid-setup.
    stopping = threading.Event()

    def _request_stop(signum, frame):  # noqa: ARG001 - signal API
        if not stopping.is_set():
            stopping.set()
            print(f"\nreceived {signal.Signals(signum).name}, draining", flush=True)
            threading.Thread(target=server.shutdown, daemon=True).start()

    try:
        signal.signal(signal.SIGTERM, _request_stop)
        signal.signal(signal.SIGINT, _request_stop)
    except ValueError:
        pass  # not the main thread (embedded runs manage their own lifecycle)

    host, port = server.server_address[:2]
    tier = f"{args.workers} worker processes" if args.workers > 0 else "threads"
    print(
        f"seedb serving {table.name!r} ({args.backend}, {tier}) "
        f"on http://{host}:{port}"
    )
    print(
        "endpoints: POST /recommend  GET /dashboard?table=…  "
        "GET /views?table=…  GET /healthz  GET /stats"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.server_close()
        service.close()
        print("drained; workers joined; backends closed", flush=True)
    return 0


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    if argv and argv[0] == "lint":
        # The invariant lint suite (lock order, guarded fields, counter
        # accounting, cancellation coverage, wire-schema drift).
        from repro.analysis.__main__ import main as lint_main

        return lint_main(argv[1:])
    args = build_parser().parse_args(argv)
    backend = None
    seedb = None
    try:
        if args.csv:
            table = read_csv(args.csv)
        else:
            table = load_dataset(args.dataset)
        backend = backend_from_uri(args.backend)
        backend.register_table(table)

        if args.template:
            params = _parse_template_args(args.template_arg)
            query = build_template(args.template, table, **params)
        else:
            query = args.sql

        config = SeeDBConfig(
            metric=args.metric,
            k=args.k,
            sample_fraction=args.sample_fraction,
            n_workers=args.workers,
        )
        seedb = SeeDB(backend, config)
        # Everything the flags describe folds into one declarative
        # RecommendationRequest — the same object the HTTP API accepts.
        request = RecommendationRequest(
            target=seedb.resolve_query(query),
            reference=Reference.from_dict(args.reference),
        )
        if args.stream:
            result = None
            for partial in seedb.recommend_iter(request):
                if partial.is_final:
                    result = partial.result
                    continue
                top = partial.recommendations[0] if partial.recommendations else None
                print(
                    f"round {partial.round}/{partial.n_rounds}: "
                    f"{partial.views_alive} alive, "
                    f"{partial.views_pruned} pruned"
                    + (
                        f"; current top {top.spec.label!r} "
                        f"(utility≈{top.utility:.4f})"
                        if top is not None
                        else ""
                    )
                )
            print()
        else:
            result = seedb.recommend(request)

        print(result.summary())

        if args.charts:
            schema = backend.schema(result.table)
            for view in result.recommendations:
                dimension_spec = (
                    schema[view.spec.dimension]
                    if view.spec.dimension in schema
                    else None
                )
                print()
                print(render_ascii(view_to_chart_spec(view, dimension_spec)))

        if args.show_bad_views:
            print("\nlowest-utility views (not recommended):")
            for view in result.worst_views():
                print(f"  {view.spec.label}: utility={view.utility:.4f}")

        if args.export:
            schema = backend.schema(result.table)
            paths = export_recommendations(result, args.export, schema)
            print(f"\nwrote {len(paths)} chart files to {args.export}")

        if args.html:
            from repro.viz.html_report import write_html_report

            schema = backend.schema(result.table)
            path = write_html_report(result, args.html, schema)
            print(f"wrote HTML report to {path}")
        return 0
    except (ReproError, TypeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        # Success or not, file-backed backends (sqlite/duckdb) hold
        # connections and possibly an owned temp database file.
        if seedb is not None:
            seedb.close()
        if backend is not None:
            backend.close()


def _parse_template_args(pairs: "list[str]") -> dict:
    """Parse repeated KEY=VALUE flags, auto-converting numerics."""
    params = {}
    for pair in pairs:
        key, separator, raw = pair.partition("=")
        if not separator or not key:
            raise ReproError(
                f"--template-arg expects KEY=VALUE, got {pair!r}"
            )
        value: object = raw
        try:
            value = int(raw)
        except ValueError:
            try:
                value = float(raw)
            except ValueError:
                pass
        params[key] = value
    return params


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
