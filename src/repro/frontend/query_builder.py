"""Form-based query builder (§3.2 mechanism (b)).

"A query builder tool that allows analysts unfamiliar with SQL to
formulate queries through a form-based interface." Each ``where_*`` call
adds one condition; conditions combine with AND (the form semantics).
Validation against a schema happens eagerly when one is supplied, so a
frontend can reject a bad form field immediately.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.db.expressions import (
    And,
    Between,
    ColumnRef,
    Comparison,
    Expression,
    In,
    Literal,
)
from repro.db.query import RowSelectQuery
from repro.db.schema import Schema
from repro.util.errors import QueryError


class QueryBuilder:
    """Builds a :class:`RowSelectQuery` condition by condition.

    >>> query = (
    ...     QueryBuilder("sales")
    ...     .where("product", "=", "Laserwave")
    ...     .where_between("amount", 10, 500)
    ...     .build()
    ... )
    """

    def __init__(self, table: str, schema: "Schema | None" = None):
        if not table:
            raise QueryError("table name must be non-empty")
        self._table = table
        self._schema = schema
        self._conditions: list[Expression] = []

    # -- form fields -------------------------------------------------------

    def where(self, column: str, op: str, value: Any) -> "QueryBuilder":
        """Add ``column <op> value`` (op in =, !=, <, <=, >, >=)."""
        self._check_column(column)
        self._conditions.append(Comparison(op, ColumnRef(column), Literal(value)))
        return self

    def where_in(self, column: str, values: Sequence[Any]) -> "QueryBuilder":
        """Add ``column IN (values)``."""
        self._check_column(column)
        self._conditions.append(In(ColumnRef(column), tuple(values)))
        return self

    def where_between(self, column: str, low: Any, high: Any) -> "QueryBuilder":
        """Add ``column BETWEEN low AND high``."""
        self._check_column(column)
        self._conditions.append(Between(ColumnRef(column), low, high))
        return self

    # -- assembly -------------------------------------------------------------

    def build(self) -> RowSelectQuery:
        """The assembled row-selection query (no conditions = all rows)."""
        if not self._conditions:
            return RowSelectQuery(self._table, None)
        if len(self._conditions) == 1:
            return RowSelectQuery(self._table, self._conditions[0])
        return RowSelectQuery(self._table, And(tuple(self._conditions)))

    def clear(self) -> "QueryBuilder":
        """Drop all conditions (the form's reset button)."""
        self._conditions = []
        return self

    @property
    def n_conditions(self) -> int:
        return len(self._conditions)

    def _check_column(self, column: str) -> None:
        if self._schema is not None:
            self._schema[column]  # raises SchemaError with suggestions
