"""Stdlib HTTP/JSON frontend over a :class:`SeeDBService`.

The demo paper shows SeeDB "as a middleware layer that can run on top of
any SQL-compliant DBMS" with a browser frontend (Figure 5); this module is
the transport for that: a threaded ``http.server`` speaking JSON, so any
number of analysts (or the bundled CLI/`AnalystSession`) hit the same
warm service — same engine caches, same coalescing, same stats.

Endpoints
---------

* ``GET /healthz`` — liveness plus registered backend names.
* ``GET /stats`` — the service's :meth:`SeeDBService.snapshot`.
* ``GET /views?backend=NAME&table=TABLE`` — the enumerated candidate view
  space (dimension, measure, function triples) for one table.
* ``POST /recommend`` — body ``{"sql": ..., "backend": ..., "k": ...,
  ...config overrides}``; returns serialized recommendations.

Run one with ``seedb serve --dataset store_orders`` or programmatically
via :func:`make_server` (port 0 picks a free port — the tests do this).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.core.result import RecommendationResult
from repro.core.space import enumerate_views
from repro.model.view import ScoredView
from repro.service import DEFAULT_BACKEND, SeeDBService
from repro.util.errors import ReproError

#: Config fields a request body may override per call. A deliberate
#: whitelist: serving knobs stay server-side, analyst knobs are free.
OVERRIDABLE_CONFIG_FIELDS = frozenset(
    {
        "metric",
        "aggregate_functions",
        "include_count_views",
        "sample_fraction",
        "n_workers",
        "exclude_predicate_dimensions",
        "prune_low_variance",
        "prune_cardinality",
        "prune_correlated",
    }
)


# -- serialization ---------------------------------------------------------


def _plain(value):
    """Numpy scalars / exotic keys → JSON-safe plain values."""
    if hasattr(value, "item"):
        value = value.item()
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, float):
        return value if value == value else None  # NaN → null
    return str(value)


def view_to_json(view: ScoredView) -> dict:
    """One scored view as the frontend's chart-ready payload."""
    return {
        "dimension": view.spec.dimension,
        "measure": view.spec.measure,
        "func": view.spec.func,
        "label": view.spec.label,
        "utility": _plain(view.utility),
        "groups": [_plain(group) for group in view.groups],
        "target_distribution": [_plain(v) for v in view.target_distribution],
        "comparison_distribution": [
            _plain(v) for v in view.comparison_distribution
        ],
        "max_deviation_group": _plain(view.max_deviation_group),
    }


def result_to_json(result: RecommendationResult) -> dict:
    """A full recommendation result as the ``/recommend`` response body."""
    return {
        "table": result.table,
        "predicate": result.predicate_description,
        "k": result.k,
        "metric": result.metric,
        "recommendations": [
            view_to_json(view) for view in result.recommendations
        ],
        "n_candidate_views": result.n_candidate_views,
        "n_executed_views": result.n_executed_views,
        "n_queries": result.n_queries,
        "sample_fraction": result.sample_fraction,
        "phase_seconds": {
            name: round(seconds, 6)
            for name, seconds in result.stopwatch.phases.items()
        },
        "total_seconds": round(result.total_seconds, 6),
    }


# -- request handling ------------------------------------------------------


class SeeDBRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests to the service attached to the server."""

    server_version = "seedb"
    #: Set by :func:`make_server` on the server object; read via self.server.
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> SeeDBService:
        return self.server.service  # type: ignore[attr-defined]

    # Silence per-request stderr logging (tests and demos run servers
    # in-process); failures still surface through JSON error bodies.
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        parsed = urlparse(self.path)
        try:
            if parsed.path == "/healthz":
                self._reply(
                    200,
                    {
                        "status": "ok",
                        "backends": self.service.backend_names(),
                    },
                )
            elif parsed.path == "/stats":
                self._reply(200, self.service.snapshot())
            elif parsed.path == "/views":
                self._reply(200, self._views(parse_qs(parsed.query)))
            else:
                self._reply(404, {"error": f"no route {parsed.path!r}"})
        except ReproError as error:
            self._reply(400, {"error": str(error)})
        except Exception as error:  # noqa: BLE001 - keep-alive clients need
            # a response body, not a dropped connection, on internal bugs.
            self._reply(500, {"error": f"internal error: {error}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        parsed = urlparse(self.path)
        if parsed.path != "/recommend":
            self._reply(404, {"error": f"no route {parsed.path!r}"})
            return
        try:
            payload = self._read_json()
            self._reply(200, self._recommend(payload))
        except (ReproError, TypeError) as error:
            self._reply(400, {"error": str(error)})
        except Exception as error:  # noqa: BLE001 - see do_GET
            self._reply(500, {"error": f"internal error: {error}"})

    # -- endpoint bodies ---------------------------------------------------

    def _views(self, params: dict) -> dict:
        backend_name = params.get("backend", [DEFAULT_BACKEND])[0]
        tables = params.get("table")
        if not tables:
            raise ReproError("/views requires a table=... query parameter")
        table = tables[0]
        engine = self.service.engine(backend_name)
        config = self.service.facade(backend_name).config
        schema = engine.cache.schema(table)
        views = enumerate_views(
            schema,
            functions=config.aggregate_functions,
            include_count=config.include_count_views,
        )
        return {
            "backend": backend_name,
            "table": table,
            "n_views": len(views),
            "views": [
                {
                    "dimension": view.dimension,
                    "measure": view.measure,
                    "func": view.func,
                    "label": view.label,
                }
                for view in views
            ],
        }

    def _recommend(self, payload: dict) -> dict:
        if not isinstance(payload, dict):
            raise ReproError("request body must be a JSON object")
        sql = payload.get("sql")
        table = payload.get("table")
        if sql is None and table is None:
            raise ReproError('/recommend requires "sql" or "table"')
        query = sql if sql is not None else f"SELECT * FROM {table}"
        backend_name = payload.get("backend", DEFAULT_BACKEND)
        k = payload.get("k")
        overrides = {}
        for field, value in payload.items():
            if field in OVERRIDABLE_CONFIG_FIELDS:
                if field == "aggregate_functions" and isinstance(value, list):
                    value = tuple(value)
                overrides[field] = value
        result = self.service.recommend(
            query, backend=backend_name, k=k, **overrides
        )
        return result_to_json(result)

    # -- plumbing ----------------------------------------------------------

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        raw = self.rfile.read(length) if length else b"{}"
        try:
            return json.loads(raw.decode("utf-8"))
        except json.JSONDecodeError as exc:
            raise ReproError(f"invalid JSON body: {exc}") from exc

    def _reply(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


class SeeDBServer(ThreadingHTTPServer):
    """A threaded HTTP server bound to one :class:`SeeDBService`.

    Threaded is the point: overlapping requests reach the service
    concurrently, which is what its coalescing and bounded scheduling are
    for. ``daemon_threads`` keeps per-request threads from pinning the
    process at shutdown.
    """

    daemon_threads = True

    def __init__(self, address: tuple, service: SeeDBService):
        super().__init__(address, SeeDBRequestHandler)
        self.service = service


def make_server(
    service: SeeDBService, host: str = "127.0.0.1", port: int = 0
) -> SeeDBServer:
    """Bind a :class:`SeeDBServer`; ``port=0`` picks a free port."""
    return SeeDBServer((host, port), service)


def serve_in_thread(service: SeeDBService, host: str = "127.0.0.1", port: int = 0):
    """Start a server on a daemon thread; returns ``(server, thread)``.

    The embedding pattern used by tests and the serving demo::

        server, thread = serve_in_thread(service)
        ... http requests against server.server_address ...
        server.shutdown(); thread.join()
    """
    server = make_server(service, host, port)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread
