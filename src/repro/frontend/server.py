"""Stdlib HTTP/JSON frontend over a :class:`SeeDBService`.

The demo paper shows SeeDB "as a middleware layer that can run on top of
any SQL-compliant DBMS" with a browser frontend (Figure 5); this module is
the transport for that: a threaded ``http.server`` speaking JSON, so any
number of analysts (or the bundled CLI/`AnalystSession`) hit the same
warm service — same engine caches, same coalescing, same stats.

Request bodies are validated through the declarative request API
(:mod:`repro.api`): ``POST /recommend`` accepts either the versioned wire
form of a :class:`~repro.api.RecommendationRequest` (a ``target`` field,
``schema_version`` 3; versions 1-2 still accepted) or the legacy flat
form (``sql``/``table`` plus whitelisted config overrides — deprecated:
responses to it carry a ``Deprecation: true`` header and a structured
``deprecation`` object pointing at the migration table in the README),
and every validation failure returns a structured 400 —
``{"error": {"code": ..., "message": ..., "field": ...}}`` — instead of a
free-text message.

Endpoints
---------

* ``GET /healthz`` — liveness plus registered backend names.
* ``GET /stats`` — the service's :meth:`SeeDBService.snapshot`.
* ``GET /views?backend=NAME&table=TABLE`` — the enumerated candidate view
  space (dimension, measure, function triples) for one table.
* ``GET /dashboard?backend=NAME&table=TABLE[&where=...][&k=N]`` — a
  self-contained live-dashboard HTML page (no external assets) that
  consumes ``POST /recommend/stream`` with ``render.format="vega-lite"``
  and animates the top-k converging.
* ``POST /recommend`` — a request body as above; returns serialized
  recommendations, plus a ``visualizations`` list when the request's
  ``options.render`` asks for charts.
* ``POST /recommend/stream`` — same body; responds with NDJSON, one
  :class:`~repro.api.PartialResult` round per line (progressive top-k from
  the incremental engine) — each round carrying refreshed ``visualizations``
  frames when rendering — the last line carrying the final result.

Run one with ``seedb serve --dataset store_orders`` or programmatically
via :func:`make_server` (port 0 picks a free port — the tests do this).
"""

from __future__ import annotations

import json
import math
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.api import ApiError, RecommendationRequest
# Re-exported for backwards compatibility: these wire helpers lived here
# before the api package centralized the schema.
from repro.api.wire import plain as _plain  # noqa: F401
from repro.api.wire import result_to_json, view_to_json
from repro.core.space import enumerate_views
from repro.service import DEFAULT_BACKEND, SeeDBService
from repro.util.errors import ReproError, ServiceError

#: Largest request body accepted before replying 413 (override per server
#: with ``SeeDBServer(..., max_body_bytes=...)``). Recommend bodies are a
#: few KB; anything near this bound is a bug or abuse, and reading it
#: would let one client pin a handler thread on a multi-megabyte parse.
MAX_BODY_BYTES = 1024 * 1024

#: Config fields a legacy flat request body may override per call. A
#: deliberate whitelist: serving knobs stay server-side, analyst knobs are
#: free. (New-style bodies put these under "options", where the request
#: schema validates them.)
OVERRIDABLE_CONFIG_FIELDS = frozenset(
    {
        "metric",
        "aggregate_functions",
        "include_count_views",
        "sample_fraction",
        "n_workers",
        "exclude_predicate_dimensions",
        "prune_low_variance",
        "prune_cardinality",
        "prune_correlated",
    }
)

#: Legacy flat keys lifted into first-class request fields.
_LEGACY_REQUEST_FIELDS = (
    "backend",
    "k",
    "metric",
    "reference",
    "strategy",
    "dimensions",
    "measures",
)

#: The structured deprecation notice attached to responses whose request
#: arrived in the legacy flat body form. The legacy form still works —
#: deprecation here means "announce, point at the migration path, keep
#: serving", not "break".
LEGACY_BODY_DEPRECATION = {
    "code": "legacy_flat_body",
    "message": (
        "flat request bodies (sql/table + top-level config fields) are "
        "deprecated; send the versioned wire form (schema_version 3, "
        "a 'target' object, overrides under 'options')"
    ),
    "docs": "README.md#public-api",
}


def decode_request(payload) -> "tuple[RecommendationRequest, dict | None]":
    """Decode an HTTP body; returns ``(request, deprecation-or-None)``.

    The second element is :data:`LEGACY_BODY_DEPRECATION` when the body
    used the legacy flat form, so endpoint handlers can stamp the
    response (``Deprecation: true`` header + ``deprecation`` body field)
    without re-detecting the body shape.
    """
    is_wire_form = isinstance(payload, dict) and (
        "target" in payload or "schema_version" in payload
    )
    request = request_from_payload(payload)
    return request, (None if is_wire_form else LEGACY_BODY_DEPRECATION)


def request_from_payload(payload) -> RecommendationRequest:
    """Decode an HTTP body into a :class:`RecommendationRequest`.

    A body carrying ``target`` (or an explicit ``schema_version``) is the
    versioned wire form and goes through the strict codec; otherwise the
    legacy flat form is translated — ``sql``/``table`` into the target,
    whitelisted config fields into options — and validated by the same
    schema, so unknown fields and bad values fail with the same structured
    error taxonomy either way.
    """
    if not isinstance(payload, dict):
        raise ApiError(
            f"request body must be a JSON object, got {type(payload).__name__}",
            code="invalid_request",
        )
    if "target" in payload or "schema_version" in payload:
        return RecommendationRequest.from_dict(payload)

    remaining = dict(payload)
    sql = remaining.pop("sql", None)
    table = remaining.pop("table", None)
    if sql is None and table is None:
        raise ApiError(
            '/recommend requires "sql", "table", or a structured "target"',
            code="missing_field",
            field="target",
        )
    wire: dict = {"target": sql if sql is not None else {"table": table}}
    for key in _LEGACY_REQUEST_FIELDS:
        if key in remaining:
            wire[key] = remaining.pop(key)
    options = dict(remaining.pop("options", None) or {})
    for key in list(remaining):
        if key in OVERRIDABLE_CONFIG_FIELDS:
            options[key] = remaining.pop(key)
    if remaining:
        extra = sorted(remaining)
        raise ApiError(
            f"unknown field(s) {extra}; overridable config fields: "
            f"{sorted(OVERRIDABLE_CONFIG_FIELDS)}",
            code="unknown_field",
            field=extra[0],
        )
    if options:
        wire["options"] = options
    return RecommendationRequest.from_dict(wire)


def error_body(error: Exception, code: str = "invalid_request") -> dict:
    """The structured ``error`` object for a failure response."""
    if isinstance(error, ApiError):
        return {"error": error.to_dict()}
    if isinstance(error, ServiceError):
        body: dict = {"code": error.code, "message": str(error)}
        if error.retry_after is not None:
            body["retry_after"] = error.retry_after
        return {"error": body}
    return {"error": {"code": code, "message": str(error)}}


# -- request handling ------------------------------------------------------


class SeeDBRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests to the service attached to the server."""

    server_version = "seedb"
    #: Set by :func:`make_server` on the server object; read via self.server.
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> SeeDBService:
        return self.server.service  # type: ignore[attr-defined]

    # Silence per-request stderr logging (tests and demos run servers
    # in-process); failures still surface through JSON error bodies.
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        parsed = urlparse(self.path)
        try:
            if parsed.path == "/healthz":
                # Delegated to the service so the cluster tier can report
                # per-worker liveness; "degraded" (some workers down) is
                # still a 200 — the service answers, capacity is reduced.
                health = self.service.health()
                self._reply(200 if health["status"] != "down" else 503, health)
            elif parsed.path == "/stats":
                self._reply(200, self.service.snapshot())
            elif parsed.path == "/views":
                self._reply(200, self._views(parse_qs(parsed.query)))
            elif parsed.path == "/dashboard":
                self._reply_html(200, self._dashboard(parse_qs(parsed.query)))
            else:
                self._reply(
                    404,
                    {
                        "error": {
                            "code": "not_found",
                            "message": f"no route {parsed.path!r}",
                        }
                    },
                )
        except ReproError as error:
            self._reply_error(error)
        except Exception as error:  # noqa: BLE001 - keep-alive clients need
            # a response body, not a dropped connection, on internal bugs.
            self._reply(500, error_body(error, code="internal_error"))

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        parsed = urlparse(self.path)
        if parsed.path == "/recommend":
            handler = self._recommend
        elif parsed.path == "/recommend/stream":
            handler = self._recommend_stream
        else:
            self._reply(
                404,
                {
                    "error": {
                        "code": "not_found",
                        "message": f"no route {parsed.path!r}",
                    }
                },
            )
            return
        try:
            handler(self._read_json())
        except (ReproError, TypeError) as error:
            self._reply_error(error)
        except Exception as error:  # noqa: BLE001 - see do_GET
            self._reply(500, error_body(error, code="internal_error"))

    # -- endpoint bodies ---------------------------------------------------

    def _views(self, params: dict) -> dict:
        backend_name = params.get("backend", [DEFAULT_BACKEND])[0]
        tables = params.get("table")
        if not tables:
            raise ApiError(
                "/views requires a table=... query parameter",
                code="missing_field",
                field="table",
            )
        table = tables[0]
        engine = self.service.engine(backend_name)
        config = self.service.facade(backend_name).config
        schema = engine.cache.schema(table)
        views = enumerate_views(
            schema,
            functions=config.aggregate_functions,
            include_count=config.include_count_views,
        )
        calibration = engine.cache.calibration
        return {
            "backend": backend_name,
            "table": table,
            "n_views": len(views),
            # Cost-based planner state for this backend: the calibrated
            # coefficients the next plan choice will use, plus the last
            # chosen plan kind and predicted-vs-observed seconds (None
            # until a cost-planned recommendation has run).
            "planner": {
                "cost_based_planning": config.cost_based_planning,
                "coefficients": calibration.coefficients_for(
                    engine.backend.name
                ).to_dict(),
                "calibration": calibration.snapshot().get(engine.backend.name),
            },
            "views": [
                {
                    "dimension": view.dimension,
                    "measure": view.measure,
                    "func": view.func,
                    "label": view.label,
                }
                for view in views
            ],
        }

    def _dashboard(self, params: dict) -> str:
        """The live-dashboard page (validated before any HTML goes out).

        Bad backend/table names must fail as structured JSON 400s, not as
        a dashboard that errors after load — so the lookups the page will
        depend on run here first.
        """
        backend_name = params.get("backend", [DEFAULT_BACKEND])[0]
        tables = params.get("table")
        if not tables:
            raise ApiError(
                "/dashboard requires a table=... query parameter",
                code="missing_field",
                field="table",
            )
        table = tables[0]
        facade = self.service.facade(backend_name)
        self.service.engine(backend_name).cache.schema(table)
        k = facade.config.k
        if "k" in params:
            try:
                k = int(params["k"][0])
            except ValueError:
                raise ApiError(
                    f"k must be an integer, got {params['k'][0]!r}",
                    code="invalid_value",
                    field="k",
                ) from None
        where = params.get("where", [None])[0]
        from repro.viz.html_report import render_dashboard_page

        return render_dashboard_page(backend_name, table, k, where=where)

    def _recommend(self, payload: dict) -> None:
        request, deprecation = decode_request(payload)
        result = self.service.recommend(request)
        body = result_to_json(result)
        headers = None
        if deprecation is not None:
            body["deprecation"] = deprecation
            headers = {"Deprecation": "true"}
        self._reply(200, body, headers=headers)

    def _recommend_stream(self, payload: dict) -> None:
        """NDJSON progressive delivery: one PartialResult per line.

        The response carries no Content-Length (its length is unknown
        until the last round), so the connection closes at stream end —
        signalled up front with ``Connection: close``. Validation errors
        are ordinary JSON 400s; a failure *mid-stream* is delivered as a
        final ``{"error": ...}`` line, since the 200 header is already on
        the wire.
        """
        request, deprecation = decode_request(payload)
        stream = self.service.recommend_stream(request)
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        if deprecation is not None:
            # NDJSON lines are PartialResult rounds, so the notice rides
            # the header alone here (the blocking endpoint carries both).
            self.send_header("Deprecation", "true")
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True
        # From here the 200 status is on the wire: NOTHING may propagate
        # to do_POST's error handler (it would write a second status line
        # into the streaming body). Any failure — execution error, client
        # disconnect mid-stream — ends as a best-effort error line.
        try:
            for partial in stream:
                line = json.dumps(partial.to_dict()) + "\n"
                self.wfile.write(line.encode("utf-8"))
                self.wfile.flush()
        except Exception as error:  # noqa: BLE001 - headers already sent
            code = "invalid_request" if isinstance(error, ReproError) else "internal_error"
            try:
                self.wfile.write(
                    (json.dumps(error_body(error, code=code)) + "\n").encode("utf-8")
                )
                self.wfile.flush()
            except OSError:
                pass  # client already gone; the broadcast drains regardless
        finally:
            # Deterministic unsubscribe: a client that disconnected
            # mid-stream (BrokenPipeError above) must release its
            # subscription *now*, not at GC — the last subscriber leaving
            # is what cancels the producing execution.
            stream.close()

    # -- plumbing ----------------------------------------------------------

    def _read_json(self) -> dict:
        limit = getattr(self.server, "max_body_bytes", MAX_BODY_BYTES)
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            raise ApiError(
                "Content-Length must be an integer", code="invalid_request"
            ) from None
        if length > limit:
            # Rejected *before* reading: the oversized body never enters
            # memory. The connection must close (the unread bytes would
            # desync the next keep-alive request's framing).
            raise ApiError(
                f"request body of {length} bytes exceeds the "
                f"{limit}-byte limit",
                code="payload_too_large",
            )
        raw = self.rfile.read(length) if length else b"{}"
        try:
            return json.loads(raw.decode("utf-8"))
        except json.JSONDecodeError as exc:
            raise ApiError(
                f"invalid JSON body: {exc}", code="invalid_request"
            ) from exc

    def _reply_error(self, error: Exception) -> None:
        """Map a typed failure onto its HTTP status (plus Retry-After).

        The lifecycle taxonomy carries its own mapping: ``Overloaded`` →
        429, ``Cancelled`` / ``WorkerLost`` → 503, ``DeadlineExceeded`` →
        504. API validation failures stay 400, except the body-size
        rejection, which is the one transport-level 413.
        """
        status, headers = 400, {}
        if isinstance(error, ServiceError):
            status = error.http_status
            if error.retry_after is not None:
                headers["Retry-After"] = str(max(1, math.ceil(error.retry_after)))
        elif isinstance(error, ApiError) and error.code == "payload_too_large":
            status = 413
            self.close_connection = True
        self._reply(status, error_body(error), headers=headers)

    def _reply_html(self, status: int, html: str) -> None:
        body = html.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "text/html; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _reply(self, status: int, payload: dict, headers: "dict | None" = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)


class SeeDBServer(ThreadingHTTPServer):
    """A threaded HTTP server bound to one :class:`SeeDBService`.

    Threaded is the point: overlapping requests reach the service
    concurrently, which is what its coalescing and bounded scheduling are
    for. ``daemon_threads`` keeps per-request threads from pinning the
    process at shutdown.
    """

    daemon_threads = True

    def __init__(
        self,
        address: tuple,
        service: SeeDBService,
        max_body_bytes: int = MAX_BODY_BYTES,
    ):
        super().__init__(address, SeeDBRequestHandler)
        self.service = service
        self.max_body_bytes = max_body_bytes


def make_server(
    service: SeeDBService,
    host: str = "127.0.0.1",
    port: int = 0,
    max_body_bytes: int = MAX_BODY_BYTES,
) -> SeeDBServer:
    """Bind a :class:`SeeDBServer`; ``port=0`` picks a free port."""
    return SeeDBServer((host, port), service, max_body_bytes=max_body_bytes)


def serve_in_thread(service: SeeDBService, host: str = "127.0.0.1", port: int = 0):
    """Start a server on a daemon thread; returns ``(server, thread)``.

    The embedding pattern used by tests and the serving demo::

        server, thread = serve_in_thread(service)
        ... http requests against server.server_address ...
        server.shutdown(); thread.join()
    """
    server = make_server(service, host, port)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread
