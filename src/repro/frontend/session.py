"""Analyst sessions: issue queries, inspect views, drill down.

Models the interactive loop of §3.2: "easily examine these 'most
interesting' views at a glance, explore specific views in detail via
drill-downs, and study metadata for each view (e.g. size of result, sample
data, value with maximum change and other statistics)."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.backends.base import Backend
from repro.core.config import SeeDBConfig
from repro.core.result import RecommendationResult
from repro.db.expressions import col
from repro.db.query import RowSelectQuery
from repro.model.view import ScoredView
from repro.service import DEFAULT_BACKEND, SeeDBService, single_backend_service
from repro.util.errors import QueryError
from repro.viz.render_text import render_ascii
from repro.viz.spec import view_to_chart_spec

if TYPE_CHECKING:
    from repro.api.request import RecommendationRequest


@dataclass
class ViewMetadata:
    """The per-view statistics panel of the frontend (§3.2)."""

    n_groups: int
    sample_groups: list[tuple[Any, float, float]]  # (group, target, comparison)
    max_change_group: Any
    max_change_delta: float
    utility: float
    #: Chi-square p-value of the deviation (None when not applicable,
    #: e.g. negative-valued measures).
    p_value: "float | None" = None


class AnalystSession:
    """An interactive SeeDB session routed through a :class:`SeeDBService`.

    Keeps the query history, exposes the latest recommendations, and
    supports drill-down: restricting the current query to one group of a
    recommended view and re-running the recommendation.

    Every ``issue()`` goes through the service's request scheduler, so an
    interactive session shares caches, request coalescing, and stats with
    the HTTP frontend and with every other session on the same service. A
    session built from a bare ``backend`` wraps it in a private service
    (owned, closed with the session); pass ``service=`` to join a shared
    one instead.
    """

    def __init__(
        self,
        backend: "Backend | None" = None,
        config: "SeeDBConfig | None" = None,
        service: "SeeDBService | None" = None,
        backend_name: str = DEFAULT_BACKEND,
    ):
        if service is None:
            if backend is None:
                raise QueryError(
                    "AnalystSession needs a backend or a service to join"
                )
            service = single_backend_service(backend, config)
            self._owns_service = True
        else:
            if backend is not None and service.backend(backend_name) is not backend:
                raise QueryError(
                    f"backend {backend_name!r} of the provided service is a "
                    "different object than the backend argument"
                )
            if config is not None:
                raise QueryError(
                    "pass either config or service, not both: a joined "
                    "service already carries its per-backend config "
                    "(register the backend with that config instead)"
                )
            self._owns_service = False
        self.service = service
        self.backend_name = backend_name
        self.backend = service.backend(backend_name)
        #: The service's engine-bound facade for this backend: one cache +
        #: shared worker pool + access log shared by every session on it.
        self.seedb = service.facade(backend_name)
        self.engine = self.seedb.engine
        self.history: list[tuple[RowSelectQuery, RecommendationResult]] = []

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """End the session; a session-owned service is torn down with it
        (dropping cached sample tables once no other engine holds them)."""
        if self._owns_service:
            self.service.close()

    def __enter__(self) -> "AnalystSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- issuing queries ------------------------------------------------

    def issue(
        self,
        query: "RecommendationRequest | RowSelectQuery | str",
        k: "int | None" = None,
    ) -> RecommendationResult:
        """Run a recommendation through the service and record it.

        ``query`` is canonically a
        :class:`~repro.api.RecommendationRequest` (reference specs,
        view-space filters, and execution options all honored); a
        :class:`RowSelectQuery` or SQL string is wrapped into one.
        """
        request = self.seedb.as_request(query, k=k, warn=False)
        result = self.service.recommend(request, backend=self.backend_name)
        self.history.append((request.target, result))
        return result

    def issue_stream(
        self,
        query: "RecommendationRequest | RowSelectQuery | str",
        k: "int | None" = None,
    ):
        """Progressive :meth:`issue`: yield
        :class:`~repro.api.PartialResult` rounds through the service's
        coalescing-aware stream fan-out, recording the final result in the
        session history like a blocking call."""
        request = self.seedb.as_request(query, k=k, warn=False)
        for partial in self.service.recommend_stream(
            request, backend=self.backend_name
        ):
            if partial.is_final and partial.result is not None:
                self.history.append((request.target, partial.result))
            yield partial

    @property
    def last_query(self) -> RowSelectQuery:
        self._require_history()
        return self.history[-1][0]

    @property
    def last_result(self) -> RecommendationResult:
        self._require_history()
        return self.history[-1][1]

    # -- exploring views ---------------------------------------------------

    def view_metadata(self, view: ScoredView, sample_size: int = 5) -> ViewMetadata:
        """The §3.2 metadata panel for one recommended view."""
        deltas = [
            abs(t - c)
            for t, c in zip(view.target_distribution, view.comparison_distribution)
        ]
        max_index = max(range(len(deltas)), key=deltas.__getitem__) if deltas else 0
        sample = [
            (group, float(target), float(comparison))
            for group, target, comparison in zip(
                view.groups[:sample_size],
                view.target_values[:sample_size],
                view.comparison_values[:sample_size],
            )
        ]
        from repro.metrics.significance import view_significance
        from repro.util.errors import MetricError

        try:
            p_value = view_significance(view).p_value
        except MetricError:
            p_value = None  # negative/empty values: the test does not apply
        return ViewMetadata(
            n_groups=len(view.groups),
            sample_groups=sample,
            max_change_group=view.groups[max_index] if view.groups else None,
            max_change_delta=float(deltas[max_index]) if deltas else 0.0,
            utility=view.utility,
            p_value=p_value,
        )

    def show(self, view: ScoredView, width: int = 40) -> str:
        """ASCII rendering of one view (terminal stand-in for Figure 5)."""
        schema = self.backend.schema(self.last_query.table)
        dimension_spec = (
            schema[view.spec.dimension] if view.spec.dimension in schema else None
        )
        return render_ascii(view_to_chart_spec(view, dimension_spec), width=width)

    # -- drill-down ----------------------------------------------------------

    def drill_down(
        self, view: ScoredView, group: Any, k: "int | None" = None
    ) -> RecommendationResult:
        """Restrict the last query to one group of ``view`` and re-recommend.

        E.g. from "sales by region deviates" drill into region='west' to
        see what deviates *within* that slice.
        """
        self._require_history()
        if group not in view.groups:
            raise QueryError(
                f"group {group!r} is not in view {view.spec.label!r}; "
                f"groups: {view.groups[:10]}"
            )
        last = self.last_query
        refinement = col(view.spec.dimension) == group
        predicate = (
            refinement if last.predicate is None else (last.predicate & refinement)
        )
        return self.issue(RowSelectQuery(last.table, predicate), k=k)

    def roll_up(self, k: "int | None" = None) -> RecommendationResult:
        """Undo the most recent drill-down and re-recommend (§1 step 4,
        "further interact with the displayed views (e.g., by drilling down
        or rolling up)")."""
        if len(self.history) < 2:
            raise QueryError(
                "nothing to roll up: the session has no earlier query"
            )
        self.history.pop()  # discard the drilled-down step
        previous_query, _previous_result = self.history.pop()
        return self.issue(previous_query, k=k)

    def _require_history(self) -> None:
        if not self.history:
            raise QueryError("no query issued yet in this session")
