"""Pre-defined query templates (§3.2 mechanism (c)).

"Using pre-defined query templates which encode commonly performed
operations, e.g., selecting outliers in a particular column." Templates
turn a small parameter form into a row-selection query, using column
statistics where the operation needs them (outlier thresholds, most-common
values, recency windows).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.db.expressions import col
from repro.db.query import RowSelectQuery
from repro.db.table import Table
from repro.metadata.stats import compute_column_stats
from repro.util.errors import ConfigError, QueryError


def outliers(table: Table, column: str, side: str = "high", z: float = 3.0) -> RowSelectQuery:
    """Rows where ``column`` deviates more than ``z`` standard deviations.

    The paper's example template. ``side``: "high", "low", or "both".
    """
    if side not in ("high", "low", "both"):
        raise QueryError(f"side must be high/low/both, got {side!r}")
    if z <= 0:
        raise QueryError(f"z must be positive, got {z}")
    stats = compute_column_stats(table, column)
    if stats.mean is None:
        raise QueryError(f"outlier template needs a numeric column, got {column!r}")
    spread = float(np.sqrt(stats.variance))
    high_threshold = stats.mean + z * spread
    low_threshold = stats.mean - z * spread
    if side == "high":
        predicate = col(column) > high_threshold
    elif side == "low":
        predicate = col(column) < low_threshold
    else:
        predicate = (col(column) > high_threshold) | (col(column) < low_threshold)
    return RowSelectQuery(table.name, predicate)


def top_category(table: Table, column: str) -> RowSelectQuery:
    """Rows belonging to the most frequent value of ``column``."""
    stats = compute_column_stats(table, column)
    if not stats.top_values:
        raise QueryError(f"column {column!r} has no values")
    most_common, _count = stats.top_values[0]
    return RowSelectQuery(table.name, col(column) == most_common)


def equals(table: Table, column: str, value: Any) -> RowSelectQuery:
    """Rows where ``column = value`` (the simplest slice template)."""
    table.schema[column]  # validate early
    return RowSelectQuery(table.name, col(column) == value)


def recent_window(table: Table, date_column: str, days: int = 30) -> RowSelectQuery:
    """Rows from the trailing ``days``-day window of ``date_column``."""
    if days < 1:
        raise QueryError(f"days must be >= 1, got {days}")
    values = table.column(date_column)
    if values.dtype.kind != "M":
        raise QueryError(f"{date_column!r} is not a date column")
    latest = values.max()
    cutoff = latest - np.timedelta64(days, "D")
    return RowSelectQuery(table.name, col(date_column) >= cutoff)


_TEMPLATES = {
    "outliers": outliers,
    "top_category": top_category,
    "equals": equals,
    "recent_window": recent_window,
}


def available_templates() -> list[str]:
    """Names accepted by :func:`build_template`."""
    return sorted(_TEMPLATES)


def build_template(name: str, table: Table, **params) -> RowSelectQuery:
    """Instantiate template ``name`` for ``table`` with ``params``."""
    try:
        template = _TEMPLATES[name]
    except KeyError:
        raise ConfigError(
            f"unknown template {name!r}; available: {available_templates()}"
        ) from None
    return template(table, **params)
