"""Metadata collection (Figure 4: "Metadata Collector").

Gathers the information the Query Generator prunes with (§3.1): table
sizes, column types, per-column data distributions (distinct counts,
variance, entropy, top values), pairwise dimension associations, and table
access patterns from SeeDB-specific tracking.
"""

from repro.metadata.stats import ColumnStats, TableStats, cramers_v, pearson_correlation
from repro.metadata.collector import MetadataCollector, TableMetadata
from repro.metadata.access_log import AccessLog

__all__ = [
    "ColumnStats",
    "TableStats",
    "cramers_v",
    "pearson_correlation",
    "MetadataCollector",
    "TableMetadata",
    "AccessLog",
]
