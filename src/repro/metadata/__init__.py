"""Metadata collection (Figure 4: "Metadata Collector").

Gathers the information the Query Generator prunes with (§3.1): table
sizes, column types, per-column data distributions (distinct counts,
variance, entropy, top values), pairwise dimension associations, and table
access patterns from SeeDB-specific tracking.
"""

from repro.metadata.stats import (
    AttributeProfile,
    ColumnStats,
    TableProfile,
    TableStats,
    cramers_v,
    pearson_correlation,
    profile_from_table,
)
from repro.metadata.calibration import (
    CalibrationStore,
    CostCoefficients,
    DEFAULT_COEFFICIENTS,
    SEEDED_COEFFICIENTS,
)
from repro.metadata.collector import MetadataCollector, TableMetadata
from repro.metadata.access_log import AccessLog

__all__ = [
    "AttributeProfile",
    "ColumnStats",
    "TableProfile",
    "TableStats",
    "cramers_v",
    "pearson_correlation",
    "profile_from_table",
    "CalibrationStore",
    "CostCoefficients",
    "DEFAULT_COEFFICIENTS",
    "SEEDED_COEFFICIENTS",
    "MetadataCollector",
    "TableMetadata",
    "AccessLog",
]
