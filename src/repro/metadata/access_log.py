"""Access-pattern tracking ("SEEDB tracks access patterns for each table",
§3.3 access-frequency pruning).

Every query SeeDB sees is recorded: which columns its predicate touched,
which were grouped, which were aggregated. Frequencies feed the
access-frequency pruner; an optional exponential decay ages out stale
history so the tracker adapts as analyst interest shifts.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.db.query import AggregateQuery, FlagColumn, GroupingSetsQuery, RowSelectQuery
from repro.util.errors import ConfigError


@dataclass
class AccessLog:
    """Per-table, per-column access counters.

    ``decay`` ∈ (0, 1]: each recorded query first multiplies existing
    counts by ``decay`` (1.0 = no forgetting).
    """

    decay: float = 1.0
    _counts: dict[str, dict[str, float]] = field(default_factory=dict)
    _queries_recorded: int = 0
    #: One log accumulates the history of every concurrent session, so
    #: recording (decay + increment, two passes) must be atomic.
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not (0.0 < self.decay <= 1.0):
            raise ConfigError(f"decay must be in (0, 1], got {self.decay}")

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record_query(self, query) -> None:
        """Record one analyst query (any logical query shape)."""
        columns: set[str] = set()
        if isinstance(query, RowSelectQuery):
            if query.predicate is not None:
                columns |= query.predicate.referenced_columns()
        elif isinstance(query, (AggregateQuery, GroupingSetsQuery)):
            if query.predicate is not None:
                columns |= query.predicate.referenced_columns()
            key_sets = (
                query.sets if isinstance(query, GroupingSetsQuery) else (query.group_by,)
            )
            for key_set in key_sets:
                for key in key_set:
                    if isinstance(key, FlagColumn):
                        columns |= key.predicate.referenced_columns()
                    else:
                        columns.add(key)
            for aggregate in query.aggregates:
                if aggregate.column is not None:
                    columns.add(aggregate.column)
        else:
            raise ConfigError(f"cannot record query type {type(query).__name__}")
        self.record_columns(query.table, columns)

    def record_columns(self, table: str, columns: "set[str] | list[str]") -> None:
        """Record a direct column-access event (e.g. from an external log)."""
        with self._lock:
            table_counts = self._counts.setdefault(table, {})
            if self.decay < 1.0:
                for name in table_counts:
                    table_counts[name] *= self.decay
            for name in columns:
                table_counts[name] = table_counts.get(name, 0.0) + 1.0
            self._queries_recorded += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def queries_recorded(self) -> int:
        """Total number of recorded access events."""
        return self._queries_recorded

    def count(self, table: str, column: str) -> float:
        """(Decayed) access count of one column."""
        return self._counts.get(table, {}).get(column, 0.0)

    def frequency(self, table: str, column: str) -> float:
        """Access count normalized by the most-accessed column of ``table``.

        Returns 1.0 for every column when the table has no history at all,
        so that a cold-start log never causes pruning.
        """
        table_counts = self._counts.get(table)
        if not table_counts:
            return 1.0
        peak = max(table_counts.values())
        if peak <= 0:
            return 1.0
        return self.count(table, column) / peak

    def most_accessed(self, table: str, k: int = 10) -> list[tuple[str, float]]:
        """Top-k (column, count) pairs for ``table``, descending."""
        table_counts = self._counts.get(table, {})
        ranked = sorted(table_counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:k]

    # ------------------------------------------------------------------
    # Persistence — the "SEEDB specific tables" of §3.1: access history
    # survives across sessions so frequency pruning keeps learning.
    # ------------------------------------------------------------------

    def save(self, path) -> None:
        """Write the log as JSON to ``path``."""
        import json
        from pathlib import Path

        payload = {
            "decay": self.decay,
            "queries_recorded": self._queries_recorded,
            "counts": self._counts,
        }
        Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))

    @classmethod
    def load(cls, path) -> "AccessLog":
        """Read a log previously written by :meth:`save`."""
        import json
        from pathlib import Path

        payload = json.loads(Path(path).read_text())
        log = cls(decay=payload.get("decay", 1.0))
        log._counts = {
            table: dict(columns) for table, columns in payload["counts"].items()
        }
        log._queries_recorded = int(payload.get("queries_recorded", 0))
        return log
