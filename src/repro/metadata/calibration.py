"""Per-backend cost-model calibration: seeded coefficients + feedback.

The cost model (:mod:`repro.optimizer.cost`) prices a plan in abstract
work units — rows scanned, groups materialized, logical queries, physical
statements — and converts them to predicted seconds with per-backend
coefficients. Absolute per-unit costs vary wildly across machines and
engines, so the coefficients here are only *seeds*: after every run the
engine reconciles the prediction against the observed execute-phase
wall-clock and folds the ratio into an exponentially-weighted per-backend
scale (the ``StatInfo``-style feedback loop). The store is shared through
:class:`~repro.engine.cache.EngineCache`, so every engine, service worker,
and cluster replica on one backend learns from all of them.

Thread safety: one lock guards all mutation; snapshots are deep copies.
Persistence is optional — a backend that lives in a user-owned database
file may carry a ``<dbfile>.seedb-calibration.json`` sidecar so the
learned scale survives process restarts (temp-file and in-memory backends
never persist).
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from contextlib import suppress
from dataclasses import dataclass

#: Sidecar suffix for persisted calibration state (gitignored; covered by
#: the hygiene CI job's leaked-artifact check).
CALIBRATION_SUFFIX = ".seedb-calibration.json"

#: EWMA weight of each new observation on the per-backend scale.
DEFAULT_ALPHA = 0.3

#: One observation may move the scale by at most this factor — a single
#: stalled query (GC pause, cold cache) must not poison the estimator.
MAX_STEP_RATIO = 16.0


@dataclass(frozen=True)
class CostCoefficients:
    """Seconds per cost-model work unit on one backend."""

    #: Seconds per base-table row scanned.
    row_scan_seconds: float
    #: Seconds per result group materialized.
    group_seconds: float
    #: Fixed seconds per logical query (per grouping-set arm: rendering,
    #: result decode, per-arm evaluation in a UNION ALL emulation).
    query_seconds: float
    #: Fixed seconds per physical statement (round trip, parse, plan).
    statement_seconds: float

    def predict_seconds(self, cost) -> float:
        """Predicted wall-clock of a :class:`~repro.optimizer.cost.PlanCost`."""
        return (
            self.row_scan_seconds * cost.rows_scanned
            + self.group_seconds * cost.result_groups
            + self.query_seconds * cost.n_queries
            + self.statement_seconds * cost.n_statements
        )

    def scaled(self, factor: float) -> "CostCoefficients":
        """All four coefficients multiplied by ``factor``."""
        return CostCoefficients(
            row_scan_seconds=self.row_scan_seconds * factor,
            group_seconds=self.group_seconds * factor,
            query_seconds=self.query_seconds * factor,
            statement_seconds=self.statement_seconds * factor,
        )

    def to_dict(self) -> dict:
        return {
            "row_scan_seconds": self.row_scan_seconds,
            "group_seconds": self.group_seconds,
            "query_seconds": self.query_seconds,
            "statement_seconds": self.statement_seconds,
        }


#: Seeded per-backend coefficients (order-of-magnitude priors; the
#: feedback loop refines them). The relative shape is what matters for
#: plan choice before any observation lands: the memory engine has
#: near-zero statement overhead, sqlite pays per prepared statement,
#: duckdb pays more per statement but scans columnar-fast.
SEEDED_COEFFICIENTS: dict[str, CostCoefficients] = {
    "memory": CostCoefficients(
        row_scan_seconds=6e-9,
        group_seconds=2.5e-7,
        query_seconds=1.5e-4,
        statement_seconds=0.0,
    ),
    "sqlite": CostCoefficients(
        row_scan_seconds=2.2e-7,
        group_seconds=5e-7,
        query_seconds=1.5e-4,
        statement_seconds=8e-4,
    ),
    "duckdb": CostCoefficients(
        row_scan_seconds=6e-8,
        group_seconds=4e-7,
        query_seconds=1.0e-4,
        statement_seconds=1.2e-3,
    ),
}

#: Fallback for backends without a seeded entry.
DEFAULT_COEFFICIENTS = CostCoefficients(
    row_scan_seconds=2e-7,
    group_seconds=5e-7,
    query_seconds=2e-4,
    statement_seconds=6e-4,
)


@dataclass
class _BackendCalibration:
    """Learned state for one backend name."""

    scale: float = 1.0
    observations: int = 0
    last_predicted_seconds: "float | None" = None
    last_observed_seconds: "float | None" = None
    #: Relative error of the prediction *at observation time* (before the
    #: scale update it triggered) — what the convergence test compares.
    last_relative_error: "float | None" = None
    last_plan_kind: "str | None" = None

    def to_dict(self) -> dict:
        return {
            "scale": self.scale,
            "observations": self.observations,
            "last_predicted_seconds": self.last_predicted_seconds,
            "last_observed_seconds": self.last_observed_seconds,
            "last_relative_error": self.last_relative_error,
            "last_plan_kind": self.last_plan_kind,
        }


class CalibrationStore:
    """Thread-safe per-backend calibration state with optional persistence."""

    def __init__(
        self,
        path: "str | None" = None,
        alpha: float = DEFAULT_ALPHA,
        seeds: "dict[str, CostCoefficients] | None" = None,
    ):
        if not (0.0 < alpha <= 1.0):
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.path = path
        self.alpha = alpha
        # Immutable after construction; reads need no lock.
        self._seeds = dict(SEEDED_COEFFICIENTS if seeds is None else seeds)
        self._lock = threading.Lock()
        self._backends: dict[str, _BackendCalibration] = {}  # guarded-by: _lock
        if path is not None and os.path.exists(path):
            self._load(path)

    # -- estimator inputs --------------------------------------------------

    def coefficients_for(self, backend_name: str) -> CostCoefficients:
        """Seeded coefficients for ``backend_name``, scaled by feedback."""
        seed = self._seeds.get(backend_name, DEFAULT_COEFFICIENTS)
        with self._lock:
            state = self._backends.get(backend_name)
            scale = state.scale if state is not None else 1.0
        return seed.scaled(scale) if scale != 1.0 else seed

    def scale_for(self, backend_name: str) -> float:
        with self._lock:
            state = self._backends.get(backend_name)
            return state.scale if state is not None else 1.0

    def observations_for(self, backend_name: str) -> int:
        with self._lock:
            state = self._backends.get(backend_name)
            return state.observations if state is not None else 0

    # -- the feedback loop -------------------------------------------------

    def observe(
        self,
        backend_name: str,
        predicted_seconds: float,
        observed_seconds: float,
        plan_kind: "str | None" = None,
    ) -> None:
        """Fold one (predicted, observed) execute-phase pair into the scale.

        The multiplicative correction ``observed / predicted`` is clamped
        (one outlier must not poison the estimator) and blended into the
        per-backend scale with EWMA weight ``alpha``. No-op on degenerate
        inputs — a zero/negative prediction carries no gradient.
        """
        if predicted_seconds <= 0.0 or observed_seconds < 0.0:
            return
        ratio = observed_seconds / predicted_seconds
        ratio = min(max(ratio, 1.0 / MAX_STEP_RATIO), MAX_STEP_RATIO)
        with self._lock:
            state = self._backends.setdefault(backend_name, _BackendCalibration())
            error = abs(predicted_seconds - observed_seconds) / max(
                observed_seconds, 1e-9
            )
            state.last_predicted_seconds = predicted_seconds
            state.last_observed_seconds = observed_seconds
            state.last_relative_error = error
            state.last_plan_kind = plan_kind
            state.observations += 1
            state.scale = (1.0 - self.alpha) * state.scale + self.alpha * (
                state.scale * ratio
            )
            if self.path is not None:
                self._save_locked(self.path)

    # -- observability -----------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready per-backend state (for ``/stats``)."""
        with self._lock:
            out = {}
            for name, state in sorted(self._backends.items()):
                seed = self._seeds.get(name, DEFAULT_COEFFICIENTS)
                entry = state.to_dict()
                entry["coefficients"] = seed.scaled(state.scale).to_dict()
                out[name] = entry
            return out

    def reset(self) -> None:
        with self._lock:
            self._backends.clear()

    # -- persistence -------------------------------------------------------

    def _save_locked(self, path: str) -> None:
        """Best-effort atomic write; a read-only filesystem is not an
        error. Caller holds the lock."""
        payload = {
            "alpha": self.alpha,
            "backends": {
                name: state.to_dict() for name, state in self._backends.items()
            },
        }
        with suppress(OSError):
            directory = os.path.dirname(os.path.abspath(path))
            handle, temp_path = tempfile.mkstemp(
                prefix=".seedb-calib-", dir=directory
            )
            try:
                with os.fdopen(handle, "w") as stream:
                    json.dump(payload, stream)
                os.replace(temp_path, path)
            except OSError:
                with suppress(OSError):
                    os.unlink(temp_path)

    def _load(self, path: str) -> None:
        with self._lock, suppress(
            OSError, json.JSONDecodeError, TypeError, KeyError
        ):
            with open(path) as stream:
                payload = json.load(stream)
            for name, entry in payload.get("backends", {}).items():
                self._backends[name] = _BackendCalibration(
                    scale=float(entry.get("scale", 1.0)),
                    observations=int(entry.get("observations", 0)),
                    last_predicted_seconds=entry.get("last_predicted_seconds"),
                    last_observed_seconds=entry.get("last_observed_seconds"),
                    last_relative_error=entry.get("last_relative_error"),
                    last_plan_kind=entry.get("last_plan_kind"),
                )


def calibration_sidecar_path(database_path: "str | None") -> "str | None":
    """Sidecar path for a user-owned database file (None = no persistence)."""
    if database_path is None or database_path == ":memory:":
        return None
    return database_path + CALIBRATION_SUFFIX
