"""The Metadata Collector module (Figure 4).

"First, the Metadata Collector module queries metadata tables ... for
information such as table sizes, column types, data distribution, and table
access patterns" (§3.1). This module computes and caches exactly that:
:class:`TableMetadata` bundles table stats, the pairwise dimension
association matrix, and the access log, and is handed to the Query
Generator (candidate enumeration + pruning).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.db.table import Table
from repro.metadata.access_log import AccessLog
from repro.metadata.stats import (
    TableStats,
    compute_table_stats,
    cramers_v,
    pearson_correlation,
)
from repro.util.rng import derive_rng


@dataclass(frozen=True)
class TableMetadata:
    """Everything the pruners need to know about one table."""

    stats: TableStats
    #: Pairwise association between dimension columns, in [0, 1];
    #: keys are frozensets of two column names.
    dimension_associations: dict[frozenset, float]
    access_log: AccessLog

    def association(self, column_a: str, column_b: str) -> float:
        """Association between two dimension columns (0 if not computed)."""
        return self.dimension_associations.get(frozenset((column_a, column_b)), 0.0)


class MetadataCollector:
    """Computes and caches :class:`TableMetadata` per table.

    ``association_sample_rows`` bounds the cost of the pairwise dimension
    association matrix on large tables: associations are estimated on a
    uniform row sample (metadata drives *pruning heuristics*, so sampled
    estimates are exactly fit for purpose).
    """

    def __init__(
        self,
        access_log: AccessLog | None = None,
        association_sample_rows: int = 50_000,
        seed: int = 0,
    ):
        self.access_log = access_log if access_log is not None else AccessLog()
        self.association_sample_rows = association_sample_rows
        self._seed = seed
        self._cache: dict[str, TableMetadata] = {}
        # Collectors are shared across a service's concurrent sessions;
        # the lock keeps the per-name cache consistent and collapses
        # duplicate concurrent computations of the same table's metadata.
        self._lock = threading.RLock()

    def collect(self, table: Table, refresh: bool = False) -> TableMetadata:
        """Return (cached) metadata for ``table``."""
        with self._lock:
            if table.name in self._cache and not refresh:
                return self._cache[table.name]
            stats = compute_table_stats(table)
            associations = self._dimension_associations(table)
            metadata = TableMetadata(
                stats=stats,
                dimension_associations=associations,
                access_log=self.access_log,
            )
            self._cache[table.name] = metadata
            return metadata

    def invalidate(self, table_name: str) -> None:
        """Drop cached metadata (call after data changes)."""
        with self._lock:
            self._cache.pop(table_name, None)

    def _dimension_associations(self, table: Table) -> dict[frozenset, float]:
        """Pairwise association of dimension columns on a row sample."""
        dimensions = table.schema.dimensions
        if len(dimensions) < 2:
            return {}
        sampled = self._sample(table)
        associations: dict[frozenset, float] = {}
        for i, spec_a in enumerate(dimensions):
            for spec_b in dimensions[i + 1 :]:
                values_a = sampled.column(spec_a.name)
                values_b = sampled.column(spec_b.name)
                both_numeric = (
                    spec_a.dtype.is_numeric and spec_b.dtype.is_numeric
                )
                if both_numeric:
                    score = pearson_correlation(values_a, values_b)
                else:
                    score = cramers_v(values_a, values_b)
                associations[frozenset((spec_a.name, spec_b.name))] = score
        return associations

    def _sample(self, table: Table) -> Table:
        if table.num_rows <= self.association_sample_rows:
            return table
        rng = derive_rng(self._seed)
        indices = rng.choice(
            table.num_rows, size=self.association_sample_rows, replace=False
        )
        return table.take(np.sort(indices))
