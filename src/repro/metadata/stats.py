"""Column and table statistics.

These are the "data distribution" inputs to variance-based and
correlation-based pruning (§3.3). Statistics are computed once per table by
the :class:`~repro.metadata.collector.MetadataCollector` and cached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.db.groupby import factorize
from repro.db.table import Table
from repro.db.types import AttributeRole, DataType


@dataclass(frozen=True)
class ColumnStats:
    """Distribution summary of one column."""

    name: str
    dtype: DataType
    role: AttributeRole
    n_rows: int
    n_distinct: int
    null_count: int
    #: Population variance of the *group-size distribution* for dimensions
    #: (how evenly rows spread over values), or of the values themselves for
    #: numeric measures. This is the quantity variance-based pruning uses.
    variance: float
    #: Shannon entropy (bits) of the value distribution; 0 for constants.
    entropy: float
    #: Numeric-only summary; None for non-numeric columns.
    min_value: float | None = None
    max_value: float | None = None
    mean: float | None = None
    #: Most frequent values with counts, descending (capped).
    top_values: tuple[tuple[Any, int], ...] = field(default=())

    @property
    def distinct_fraction(self) -> float:
        """n_distinct / n_rows (0 for empty columns)."""
        return self.n_distinct / self.n_rows if self.n_rows else 0.0

    @property
    def is_constant(self) -> bool:
        """True when the column takes at most one value."""
        return self.n_distinct <= 1


@dataclass(frozen=True)
class TableStats:
    """Statistics for a whole table."""

    table_name: str
    n_rows: int
    n_bytes: int
    columns: dict[str, ColumnStats]

    def __getitem__(self, name: str) -> ColumnStats:
        return self.columns[name]


def compute_column_stats(table: Table, name: str, top_k: int = 10) -> ColumnStats:
    """Compute :class:`ColumnStats` for ``table.column(name)``."""
    spec = table.schema[name]
    values = table.column(name)
    n_rows = len(values)

    if values.dtype.kind == "f":
        null_count = int(np.isnan(values).sum())
        valid = values[~np.isnan(values)]
    else:
        null_count = 0
        valid = values

    if len(valid) == 0:
        return ColumnStats(
            name, spec.dtype, spec.role, n_rows, 0, null_count, 0.0, 0.0
        )

    codes, uniques = factorize(valid)
    counts = np.bincount(codes, minlength=len(uniques)).astype(np.float64)
    probabilities = counts / counts.sum()
    nonzero = probabilities[probabilities > 0]
    entropy = float(-(nonzero * np.log2(nonzero)).sum())

    if spec.dtype.is_numeric:
        as_float = valid.astype(np.float64)
        variance = float(np.var(as_float))
        min_value, max_value = float(as_float.min()), float(as_float.max())
        mean = float(as_float.mean())
    else:
        # For categorical columns, "variance" is the variance of group
        # *shares*: a column where every row has the same value has share
        # vector (1, 0, ..) and high share variance but produces useless
        # views — what pruning really wants is spread across groups, which
        # entropy captures; we store the share variance for completeness.
        variance = float(np.var(probabilities))
        min_value = max_value = mean = None

    order = np.argsort(counts)[::-1][:top_k]
    top_values = tuple(
        (_as_python(uniques[i]), int(counts[i])) for i in order
    )
    return ColumnStats(
        name=name,
        dtype=spec.dtype,
        role=spec.role,
        n_rows=n_rows,
        n_distinct=len(uniques),
        null_count=null_count,
        variance=variance,
        entropy=entropy,
        min_value=min_value,
        max_value=max_value,
        mean=mean,
        top_values=top_values,
    )


def compute_table_stats(table: Table, top_k: int = 10) -> TableStats:
    """Compute stats for every column of ``table``."""
    return TableStats(
        table_name=table.name,
        n_rows=table.num_rows,
        n_bytes=table.nbytes(),
        columns={
            name: compute_column_stats(table, name, top_k=top_k)
            for name in table.schema.names
        },
    )


@dataclass(frozen=True)
class AttributeProfile:
    """Lightweight planner-facing summary of one (dimension) attribute.

    The cheap sibling of :class:`ColumnStats`: only what the cost-based
    planner consumes — distinct count, null fraction, and group-size skew —
    all computable by aggregate SQL pushed to the backend (no base-table
    transfer). NULLs are excluded from distinct counts and group sizes on
    both the pushed and client-side paths.
    """

    name: str
    n_distinct: int
    null_fraction: float
    #: Fraction of non-null rows landing in the largest group (1.0 for a
    #: constant column, ~1/n_distinct for a uniform one).
    max_group_fraction: float

    def skew(self) -> float:
        """Largest-group share relative to uniform (1.0 = perfectly even)."""
        if self.n_distinct <= 0:
            return 1.0
        return self.max_group_fraction * self.n_distinct


@dataclass(frozen=True)
class TableProfile:
    """Backend-pushed table statistics for cost-based planning.

    Collected by :func:`repro.backends.base.collect_statistics` — via
    aggregate SQL where the backend declares ``stats_pushdown``, otherwise
    client-side from one table fetch — and cached per
    ``(table, data_version)`` in the engine cache.
    """

    table_name: str
    n_rows: int
    attributes: dict[str, AttributeProfile]
    #: ``"pushed"`` (aggregate SQL on the backend) or ``"clientside"``.
    source: str = "clientside"

    def __getitem__(self, name: str) -> AttributeProfile:
        return self.attributes[name]

    def cardinalities(self) -> dict[str, int]:
        """{attribute: n_distinct} for every profiled attribute."""
        return {
            name: profile.n_distinct for name, profile in self.attributes.items()
        }

    def to_dict(self) -> dict:
        return {
            "table": self.table_name,
            "n_rows": self.n_rows,
            "source": self.source,
            "attributes": {
                name: {
                    "n_distinct": profile.n_distinct,
                    "null_fraction": profile.null_fraction,
                    "max_group_fraction": profile.max_group_fraction,
                }
                for name, profile in sorted(self.attributes.items())
            },
        }


def _null_mask(values: np.ndarray) -> np.ndarray:
    """Boolean NULL mask under the canonical table representation."""
    if values.dtype.kind == "f":
        return np.isnan(values)
    if values.dtype.kind == "M":
        return np.isnat(values)
    if values.dtype == object:
        return np.array([value is None for value in values], dtype=bool)
    return np.zeros(len(values), dtype=bool)


def profile_column(table: Table, name: str) -> AttributeProfile:
    """Client-side :class:`AttributeProfile` of one column (numpy path)."""
    values = table.column(name)
    n_rows = len(values)
    nulls = _null_mask(values)
    valid = values[~nulls]
    if len(valid) == 0:
        return AttributeProfile(
            name=name,
            n_distinct=0,
            null_fraction=1.0 if n_rows else 0.0,
            max_group_fraction=0.0,
        )
    codes, uniques = factorize(valid)
    counts = np.bincount(codes, minlength=len(uniques))
    return AttributeProfile(
        name=name,
        n_distinct=len(uniques),
        null_fraction=float(nulls.sum()) / n_rows if n_rows else 0.0,
        max_group_fraction=float(counts.max()) / len(valid),
    )


def profile_from_table(
    table: Table, attributes: "tuple[str, ...] | None" = None
) -> TableProfile:
    """Client-side fallback for backend-pushed statistics collection.

    ``attributes`` defaults to the table's dimension columns — the only
    ones whose cardinality and skew drive plan choice.
    """
    if attributes is None:
        attributes = tuple(spec.name for spec in table.schema.dimensions)
    return TableProfile(
        table_name=table.name,
        n_rows=table.num_rows,
        attributes={name: profile_column(table, name) for name in attributes},
        source="clientside",
    )


def cramers_v(values_a: np.ndarray, values_b: np.ndarray) -> float:
    """Cramér's V association between two categorical columns, in [0, 1].

    1 means a bijection-like dependency (e.g. airport full name vs airport
    code — the paper's example of prunable redundancy), 0 independence.
    Bias-corrected per Bergsma (2013) to avoid spurious association from
    high cardinality on small tables.
    """
    if len(values_a) != len(values_b):
        raise ValueError("columns must have equal length")
    n = len(values_a)
    if n == 0:
        return 0.0
    codes_a, uniques_a = factorize(values_a)
    codes_b, uniques_b = factorize(values_b)
    r, k = len(uniques_a), len(uniques_b)
    if r <= 1 or k <= 1:
        return 0.0
    contingency = np.zeros((r, k), dtype=np.float64)
    np.add.at(contingency, (codes_a, codes_b), 1.0)
    row_totals = contingency.sum(axis=1, keepdims=True)
    col_totals = contingency.sum(axis=0, keepdims=True)
    expected = row_totals @ col_totals / n
    with np.errstate(invalid="ignore", divide="ignore"):
        chi2 = np.nansum(
            np.where(expected > 0, (contingency - expected) ** 2 / expected, 0.0)
        )
    phi2 = chi2 / n
    # Bergsma bias correction:
    phi2_corrected = max(0.0, phi2 - (k - 1) * (r - 1) / (n - 1))
    r_corrected = r - (r - 1) ** 2 / (n - 1)
    k_corrected = k - (k - 1) ** 2 / (n - 1)
    denominator = min(r_corrected - 1, k_corrected - 1)
    if denominator <= 0:
        return 0.0
    return float(np.sqrt(phi2_corrected / denominator))


def pearson_correlation(values_a: np.ndarray, values_b: np.ndarray) -> float:
    """|Pearson r| between two numeric columns (NaN rows dropped)."""
    a = np.asarray(values_a, dtype=np.float64)
    b = np.asarray(values_b, dtype=np.float64)
    mask = ~(np.isnan(a) | np.isnan(b))
    a, b = a[mask], b[mask]
    if len(a) < 2 or np.std(a) == 0 or np.std(b) == 0:
        return 0.0
    return float(abs(np.corrcoef(a, b)[0, 1]))


def _as_python(value: Any) -> Any:
    if isinstance(value, np.generic):
        return value.item()
    return value
