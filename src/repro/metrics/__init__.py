"""Distance metrics between view distributions (paper §2).

A view's *utility* is the distance between two probability distributions:
the view evaluated on the query's rows (target) and on the whole table
(comparison). This package provides the normalization/alignment machinery
and the metric set the paper names — Earth Mover's Distance, Euclidean
distance, Kullback-Leibler divergence, Jensen-Shannon distance — plus
extension metrics (chi-square, total variation, max deviation), behind one
registry so SeeDB "is not tied to any particular metric" (§1 challenge a).
"""

from repro.metrics.base import DistanceMetric
from repro.metrics.normalize import (
    NormalizationPolicy,
    align_batch,
    align_series,
    normalize_batch,
    normalize_distribution,
)
from repro.metrics.euclidean import EuclideanDistance
from repro.metrics.emd import EarthMoversDistance
from repro.metrics.kl import KLDivergence
from repro.metrics.jensen_shannon import JensenShannonDistance
from repro.metrics.chisquare import ChiSquareDistance
from repro.metrics.total_variation import TotalVariationDistance
from repro.metrics.maxdev import MaxDeviationDistance
from repro.metrics.hellinger import HellingerDistance
from repro.metrics.significance import SignificanceResult, view_significance
from repro.metrics.registry import available_metrics, get_metric, register_metric

__all__ = [
    "DistanceMetric",
    "NormalizationPolicy",
    "align_batch",
    "align_series",
    "normalize_batch",
    "normalize_distribution",
    "EuclideanDistance",
    "EarthMoversDistance",
    "KLDivergence",
    "JensenShannonDistance",
    "ChiSquareDistance",
    "TotalVariationDistance",
    "MaxDeviationDistance",
    "HellingerDistance",
    "SignificanceResult",
    "view_significance",
    "available_metrics",
    "get_metric",
    "register_metric",
]
