"""Distance-metric interface.

Every metric maps two aligned probability vectors to a non-negative float.
Higher distance = more deviation = more "potentially interesting" (§2).

Metrics expose two entry points sharing one implementation:

* :meth:`DistanceMetric.distance` — one ``(p, q)`` pair, scalar result.
* :meth:`DistanceMetric.distance_batch` — a whole block of aligned views at
  once: ``P`` and ``Q`` are ``(n_views, n_groups)`` matrices whose rows are
  distributions, and the result is the ``(n_views,)`` utility vector. This
  is the View Processor's hot path (§3.1 "shared processing of view
  results"): one vectorized pass over a dense matrix instead of a Python
  loop over views.

Built-in metrics implement the row-wise :meth:`_distance_batch`; the scalar
path delegates to it on a one-row matrix, which guarantees the two paths
agree bit-for-bit. Custom metrics may instead implement only the classic
:meth:`_distance`, in which case the batch path falls back to a per-row
loop — slower, but drop-in compatible.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import MetricError


class DistanceMetric:
    """Base class for distances between probability distributions.

    Subclasses implement :meth:`_distance_batch` (vectorized, preferred) or
    :meth:`_distance` (scalar) on validated inputs; the public
    :meth:`distance` / :meth:`distance_batch` perform shared validation so
    every metric rejects malformed input identically.
    """

    #: Registry key; subclasses must override.
    name: str = ""

    #: Whether larger support (more groups) systematically inflates the
    #: metric (relevant when comparing utilities across views — EMD over
    #: positions does, which is why the default normalizes it).
    scale_sensitive: bool = False

    def distance(self, p: np.ndarray, q: np.ndarray) -> float:
        """Distance between distributions ``p`` and ``q``.

        Both must be 1-D, equal-length, non-negative and ≈sum-to-1; use
        :func:`repro.metrics.normalize.normalize_distribution` first.
        """
        p = np.asarray(p, dtype=np.float64)
        q = np.asarray(q, dtype=np.float64)
        if p.ndim != 1 or q.ndim != 1:
            raise MetricError("distributions must be 1-D arrays")
        if p.shape != q.shape:
            raise MetricError(
                f"distributions differ in length: {p.shape[0]} vs {q.shape[0]}; "
                "align them with align_series() first"
            )
        if p.size == 0:
            raise MetricError("distributions must be non-empty")
        if np.any(p < 0) or np.any(q < 0):
            raise MetricError("distributions must be non-negative")
        for label, vector in (("p", p), ("q", q)):
            total = vector.sum()
            if not np.isclose(total, 1.0, atol=1e-6):
                raise MetricError(
                    f"{label} sums to {total:.6f}, expected 1; "
                    "normalize with normalize_distribution() first"
                )
        return float(self._distance(p, q))

    def distance_batch(self, P: np.ndarray, Q: np.ndarray) -> np.ndarray:
        """Row-wise distances between aligned distribution matrices.

        ``P`` and ``Q`` are ``(n_views, n_groups)``; row ``i`` of each must
        be a valid probability vector (use
        :func:`repro.metrics.normalize.normalize_batch` first). Returns the
        ``(n_views,)`` array of distances — bit-for-bit identical to
        calling :meth:`distance` on each row pair.
        """
        P = np.asarray(P, dtype=np.float64)
        Q = np.asarray(Q, dtype=np.float64)
        if P.ndim != 2 or Q.ndim != 2:
            raise MetricError("distribution batches must be 2-D arrays")
        if P.shape != Q.shape:
            raise MetricError(
                f"distribution batches differ in shape: {P.shape} vs {Q.shape}; "
                "align them with align_batch() first"
            )
        if P.shape[0] == 0:
            return np.empty(0, dtype=np.float64)
        if P.shape[1] == 0:
            raise MetricError("distributions must be non-empty")
        if np.any(P < 0) or np.any(Q < 0):
            raise MetricError("distributions must be non-negative")
        for label, matrix in (("p", P), ("q", Q)):
            totals = matrix.sum(axis=1)
            bad = ~np.isclose(totals, 1.0, atol=1e-6)
            if np.any(bad):
                row = int(np.flatnonzero(bad)[0])
                raise MetricError(
                    f"{label} row {row} sums to {totals[row]:.6f}, expected 1; "
                    "normalize with normalize_batch() first"
                )
        if self._prefers_batch_kernel():
            return np.asarray(self._distance_batch(P, Q), dtype=np.float64)
        # A subclass whose most-derived override is the scalar _distance
        # (e.g. wrapping a built-in metric) must win over any inherited
        # vectorized kernel: fall back to the per-row loop.
        return np.array(
            [self._distance(P[i], Q[i]) for i in range(P.shape[0])],
            dtype=np.float64,
        )

    def _prefers_batch_kernel(self) -> bool:
        """Whether the most-derived override is the vectorized kernel."""
        for klass in type(self).__mro__:
            if klass is DistanceMetric:
                break
            if "_distance_batch" in klass.__dict__:
                return True
            if "_distance" in klass.__dict__:
                return False
        raise NotImplementedError(
            f"{type(self).__name__} implements neither _distance nor "
            "_distance_batch"
        )

    def _distance(self, p: np.ndarray, q: np.ndarray) -> float:
        # Scalar scoring of a vectorized metric runs through the same batch
        # kernel on a one-row matrix — the equivalence that makes per-view
        # and batch scoring agree bit-for-bit.
        if type(self)._distance_batch is not DistanceMetric._distance_batch:
            return float(
                self._distance_batch(p[np.newaxis, :], q[np.newaxis, :])[0]
            )
        raise NotImplementedError(
            f"{type(self).__name__} implements neither _distance nor "
            "_distance_batch"
        )

    def _distance_batch(self, P: np.ndarray, Q: np.ndarray) -> np.ndarray:
        # Loop fallback for custom metrics that only define _distance.
        if type(self)._distance is DistanceMetric._distance:
            raise NotImplementedError(
                f"{type(self).__name__} implements neither _distance nor "
                "_distance_batch"
            )
        return np.array(
            [self._distance(P[i], Q[i]) for i in range(P.shape[0])],
            dtype=np.float64,
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
