"""Distance-metric interface.

Every metric maps two aligned probability vectors to a non-negative float.
Higher distance = more deviation = more "potentially interesting" (§2).
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import MetricError


class DistanceMetric:
    """Base class for distances between probability distributions.

    Subclasses implement :meth:`_distance` on validated inputs; the public
    :meth:`distance` performs shared validation so every metric rejects
    malformed input identically.
    """

    #: Registry key; subclasses must override.
    name: str = ""

    #: Whether larger support (more groups) systematically inflates the
    #: metric (relevant when comparing utilities across views — EMD over
    #: positions does, which is why the default normalizes it).
    scale_sensitive: bool = False

    def distance(self, p: np.ndarray, q: np.ndarray) -> float:
        """Distance between distributions ``p`` and ``q``.

        Both must be 1-D, equal-length, non-negative and ≈sum-to-1; use
        :func:`repro.metrics.normalize.normalize_distribution` first.
        """
        p = np.asarray(p, dtype=np.float64)
        q = np.asarray(q, dtype=np.float64)
        if p.ndim != 1 or q.ndim != 1:
            raise MetricError("distributions must be 1-D arrays")
        if p.shape != q.shape:
            raise MetricError(
                f"distributions differ in length: {p.shape[0]} vs {q.shape[0]}; "
                "align them with align_series() first"
            )
        if p.size == 0:
            raise MetricError("distributions must be non-empty")
        if np.any(p < 0) or np.any(q < 0):
            raise MetricError("distributions must be non-negative")
        for label, vector in (("p", p), ("q", q)):
            total = vector.sum()
            if not np.isclose(total, 1.0, atol=1e-6):
                raise MetricError(
                    f"{label} sums to {total:.6f}, expected 1; "
                    "normalize with normalize_distribution() first"
                )
        return float(self._distance(p, q))

    def _distance(self, p: np.ndarray, q: np.ndarray) -> float:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
