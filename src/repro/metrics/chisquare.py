"""Chi-square distance (extension metric beyond the four the paper names)."""

from __future__ import annotations

import numpy as np

from repro.metrics.base import DistanceMetric


class ChiSquareDistance(DistanceMetric):
    """Symmetric chi-square: ``0.5 * sum (p-q)^2 / (p+q)``; range [0, 1].

    Bins where both distributions are zero contribute nothing.
    """

    name = "chisquare"

    def _distance(self, p: np.ndarray, q: np.ndarray) -> float:
        total = p + q
        mask = total > 0
        diff = p[mask] - q[mask]
        return float(0.5 * np.sum(diff * diff / total[mask]))
