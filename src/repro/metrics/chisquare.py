"""Chi-square distance (extension metric beyond the four the paper names)."""

from __future__ import annotations

import numpy as np

from repro.metrics.base import DistanceMetric


class ChiSquareDistance(DistanceMetric):
    """Symmetric chi-square: ``0.5 * sum (p-q)^2 / (p+q)``; range [0, 1].

    Bins where both distributions are zero contribute nothing.
    """

    name = "chisquare"

    def _distance_batch(self, P: np.ndarray, Q: np.ndarray) -> np.ndarray:
        total = P + Q
        diff = P - Q
        contributions = np.divide(
            diff * diff, total, out=np.zeros_like(total), where=total > 0
        )
        return 0.5 * np.sum(contributions, axis=1)
