"""Earth Mover's Distance (1-D Wasserstein-1) — named in paper §2.

For distributions over ``n`` ordered bins at unit spacing the EMD has the
closed form ``sum_i |CDF_p(i) - CDF_q(i)|``. View group keys are sorted
before normalization (see :func:`repro.metrics.normalize.align_series`), so
bin order is deterministic even for categorical dimensions — the same
convention the SeeDB prototype used, treating the i-th group as position i.

``normalized=True`` (default) divides by ``n - 1`` so the result lies in
[0, 1] regardless of group count; otherwise views with more groups would
dominate the top-k purely by support size.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.base import DistanceMetric


class EarthMoversDistance(DistanceMetric):
    """1-D EMD between distributions over equally spaced ordered bins."""

    name = "emd"

    def __init__(self, normalized: bool = True):
        self.normalized = normalized
        self.scale_sensitive = not normalized

    def _distance_batch(self, P: np.ndarray, Q: np.ndarray) -> np.ndarray:
        work = np.sum(np.abs(np.cumsum(P, axis=1) - np.cumsum(Q, axis=1)), axis=1)
        if self.normalized and P.shape[1] > 1:
            return work / (P.shape[1] - 1)
        return work

    def __repr__(self) -> str:
        return f"EarthMoversDistance(normalized={self.normalized})"
