"""Euclidean (L2) distance — one of the four metrics the paper names."""

from __future__ import annotations

import numpy as np

from repro.metrics.base import DistanceMetric


class EuclideanDistance(DistanceMetric):
    """``sqrt(sum_i (p_i - q_i)^2)``; range [0, sqrt(2)] on distributions."""

    name = "euclidean"

    def _distance_batch(self, P: np.ndarray, Q: np.ndarray) -> np.ndarray:
        difference = P - Q
        return np.sqrt(np.sum(difference * difference, axis=1))
