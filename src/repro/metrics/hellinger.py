"""Hellinger distance (extension metric).

A true metric, bounded in [0, 1], closely related to the Bhattacharyya
coefficient: ``H(p, q) = sqrt(1 - sum_i sqrt(p_i q_i))``. Less sensitive
than KL to near-zero bins, more sensitive than total variation to
redistribution among small-mass groups — a useful middle ground for view
deviation.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.base import DistanceMetric


class HellingerDistance(DistanceMetric):
    """``sqrt(1 - BC(p, q))`` with the Bhattacharyya coefficient BC.

    Computed via the equivalent ``sqrt(0.5 * sum (sqrt(p_i) - sqrt(q_i))^2)``,
    which is exactly zero for identical inputs (the ``1 - BC`` form loses
    that to floating-point cancellation).
    """

    name = "hellinger"

    def _distance_batch(self, P: np.ndarray, Q: np.ndarray) -> np.ndarray:
        difference = np.sqrt(P) - np.sqrt(Q)
        return np.sqrt(0.5 * np.sum(difference * difference, axis=1))
