"""Jensen-Shannon distance — named in paper §2 ("Jenson-Shannon").

The square root of the JS divergence with base-2 logarithms: a true metric,
symmetric, bounded in [0, 1], and finite without smoothing — which is why
it is SeeDB's default in this reproduction.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.base import DistanceMetric


def _kl_bits_rows(P: np.ndarray, M: np.ndarray) -> np.ndarray:
    """Row-wise KL(P‖M) in bits over the support of P (0·log0 := 0).

    Wherever ``P`` is zero the ratio is forced to 1 so the term contributes
    an exact 0; ``M`` is a mixture containing ``P`` so it is strictly
    positive on P's support.
    """
    ratio = np.divide(P, M, out=np.ones_like(P), where=P > 0)
    return np.sum(P * np.log2(ratio), axis=1)


class JensenShannonDistance(DistanceMetric):
    """``sqrt(JSD(p, q))`` with JSD in bits; range [0, 1]."""

    name = "js"

    def _distance_batch(self, P: np.ndarray, Q: np.ndarray) -> np.ndarray:
        mixture = 0.5 * (P + Q)
        divergence = 0.5 * _kl_bits_rows(P, mixture) + 0.5 * _kl_bits_rows(
            Q, mixture
        )
        # Floating-point noise can push the divergence a hair negative.
        return np.sqrt(np.maximum(divergence, 0.0))
