"""Jensen-Shannon distance — named in paper §2 ("Jenson-Shannon").

The square root of the JS divergence with base-2 logarithms: a true metric,
symmetric, bounded in [0, 1], and finite without smoothing — which is why
it is SeeDB's default in this reproduction.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.base import DistanceMetric


def _kl_bits(p: np.ndarray, q: np.ndarray) -> float:
    """KL(p‖q) in bits over the support of p (0·log0 := 0)."""
    mask = p > 0
    return float(np.sum(p[mask] * np.log2(p[mask] / q[mask])))


class JensenShannonDistance(DistanceMetric):
    """``sqrt(JSD(p, q))`` with JSD in bits; range [0, 1]."""

    name = "js"

    def _distance(self, p: np.ndarray, q: np.ndarray) -> float:
        mixture = 0.5 * (p + q)
        divergence = 0.5 * _kl_bits(p, mixture) + 0.5 * _kl_bits(q, mixture)
        # Floating-point noise can push the divergence a hair negative.
        return float(np.sqrt(max(divergence, 0.0)))
