"""Kullback-Leibler divergence — named in paper §2.

KL(p‖q) is infinite wherever ``q`` has zero mass but ``p`` does not, which
happens constantly with view distributions (the target view often has
groups the comparison lacks, and vice versa after alignment fills zeros).
Additive smoothing with renormalization keeps every score finite while
preserving the ordering between clearly-different and clearly-similar views;
the smoothing constant is configurable and its effect is exercised in the
test suite (an ablation DESIGN.md calls out).
"""

from __future__ import annotations

import numpy as np

from repro.metrics.base import DistanceMetric
from repro.util.errors import MetricError


def smooth(p: np.ndarray, epsilon: float) -> np.ndarray:
    """Additive (Laplace) smoothing: add ``epsilon`` mass per bin, renormalize."""
    smoothed = p + epsilon
    return smoothed / smoothed.sum()


class KLDivergence(DistanceMetric):
    """Smoothed KL divergence KL(target ‖ comparison), in nats.

    Not symmetric and not a true metric; SeeDB only needs a deviation
    *score*, and the paper lists K-L explicitly.
    """

    name = "kl"

    def __init__(self, epsilon: float = 1e-9):
        if epsilon <= 0:
            raise MetricError(f"smoothing epsilon must be positive, got {epsilon}")
        self.epsilon = epsilon

    def _distance_batch(self, P: np.ndarray, Q: np.ndarray) -> np.ndarray:
        Ps = P + self.epsilon
        Ps = Ps / Ps.sum(axis=1, keepdims=True)
        Qs = Q + self.epsilon
        Qs = Qs / Qs.sum(axis=1, keepdims=True)
        # Floating-point noise on near-identical inputs can sum a hair
        # negative; KL is non-negative by Gibbs' inequality.
        return np.maximum(np.sum(Ps * np.log(Ps / Qs), axis=1), 0.0)

    def __repr__(self) -> str:
        return f"KLDivergence(epsilon={self.epsilon})"
