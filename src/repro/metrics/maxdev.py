"""Maximum per-group deviation (L∞; extension metric).

Directly surfaces the single most deviating group, which the SeeDB frontend
reports as view metadata ("value with maximum change", §3.2).
"""

from __future__ import annotations

import numpy as np

from repro.metrics.base import DistanceMetric


class MaxDeviationDistance(DistanceMetric):
    """``max_i |p_i - q_i|``; range [0, 1]."""

    name = "maxdev"

    def _distance_batch(self, P: np.ndarray, Q: np.ndarray) -> np.ndarray:
        return np.max(np.abs(P - Q), axis=1)

    @staticmethod
    def argmax_group(p: np.ndarray, q: np.ndarray) -> int:
        """Index of the group with the largest deviation (for metadata)."""
        return int(np.argmax(np.abs(np.asarray(p) - np.asarray(q))))
