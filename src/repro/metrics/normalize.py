"""Normalization of view results into aligned probability distributions.

Paper §2: "We normalize each result table into a probability distribution,
such that the values of f(m) sum to 1." Two practical issues the paper
glosses over are handled explicitly here:

* **Alignment** — the target view (filtered rows) may be missing groups that
  exist in the comparison view (all rows). Distances are only meaningful
  over a common support, so :func:`align_series` takes the union of group
  keys (sorted for determinism) and fills absent groups with 0.
* **Negative or NaN aggregates** — ``SUM(profit)`` can be negative and
  ``AVG`` over an empty group is NaN. :class:`NormalizationPolicy` chooses
  how to coerce values into valid mass: reject, shift by the minimum, or
  take absolute values.

Both concerns come in scalar and *batch* form. The batch functions
(:func:`align_batch`, :func:`normalize_batch`) operate on dense
``(n_views, n_groups)`` matrices — the columnar Score-path representation —
and the scalar functions delegate to them on one-row matrices, so the two
paths agree bit-for-bit.
"""

from __future__ import annotations

import enum
from typing import Any, Sequence

import numpy as np

from repro.util.errors import MetricError


class NormalizationPolicy(enum.Enum):
    """How to handle values that are not valid probability mass."""

    STRICT = "strict"  # negative values raise MetricError
    SHIFT = "shift"  # subtract the minimum (if negative) before normalizing
    ABSOLUTE = "absolute"  # use |value|


def normalize_distribution(
    values: "np.ndarray | Sequence[float]",
    policy: NormalizationPolicy = NormalizationPolicy.STRICT,
) -> np.ndarray:
    """Scale ``values`` into a probability vector summing to 1.

    NaN entries (e.g. AVG of an empty group) contribute zero mass. An
    all-zero vector normalizes to the uniform distribution — the natural
    limit that keeps distances finite and makes "no data on either side"
    compare as identical.
    """
    array = np.asarray(values, dtype=np.float64)
    if array.ndim != 1:
        raise MetricError(f"expected a 1-D value array, got shape {array.shape}")
    return normalize_batch(array[np.newaxis, :], policy)[0]


def normalize_batch(
    matrix: "np.ndarray | Sequence[Sequence[float]]",
    policy: NormalizationPolicy = NormalizationPolicy.STRICT,
) -> np.ndarray:
    """Row-wise :func:`normalize_distribution` on a ``(n_views, n_groups)``
    matrix; returns a matrix of the same shape whose rows each sum to 1.

    Each row is treated exactly like the scalar function treats its vector:
    NaN entries become zero mass, a row containing negatives is shifted or
    folded per ``policy`` (STRICT raises), and a row with no positive mass
    normalizes to uniform. The input is never mutated, and — absent
    NaN/negative rewrites — never copied either: the only allocation on
    clean input is the divided result.
    """
    M = np.asarray(matrix, dtype=np.float64)
    if M.ndim != 2:
        raise MetricError(f"expected a 2-D value matrix, got shape {M.shape}")
    if M.shape[1] == 0:
        raise MetricError("cannot normalize an empty distribution")
    owned = False
    nan_mask = np.isnan(M)
    if np.any(nan_mask):
        M = M.copy()
        M[nan_mask] = 0.0
        owned = True
    negative = M < 0
    if np.any(negative):
        if policy is NormalizationPolicy.STRICT:
            raise MetricError(
                "negative values cannot be normalized under the STRICT policy; "
                "use SHIFT or ABSOLUTE for measures like profit"
            )
        if not owned:
            M = M.copy()
        negative_rows = np.any(negative, axis=1)
        if policy is NormalizationPolicy.SHIFT:
            M[negative_rows] -= M[negative_rows].min(axis=1, keepdims=True)
        else:
            M[negative_rows] = np.abs(M[negative_rows])
    totals = M.sum(axis=1)
    bad = (totals <= 0) | ~np.isfinite(totals)
    with np.errstate(invalid="ignore", divide="ignore"):
        result = M / totals[:, np.newaxis]
    if np.any(bad):
        result[bad] = 1.0 / M.shape[1]
    return result


def align_series(
    keys_a: Sequence[Any],
    values_a: "np.ndarray | Sequence[float]",
    keys_b: Sequence[Any],
    values_b: "np.ndarray | Sequence[float]",
    fill: float = 0.0,
) -> tuple[list[Any], np.ndarray, np.ndarray]:
    """Align two keyed series onto the sorted union of their keys.

    Returns ``(union_keys, aligned_a, aligned_b)``. Missing groups are
    filled with ``fill`` (0 = no mass). Duplicate keys within one series are
    rejected: a view result must have one row per group.
    """
    matrix_a = np.asarray(values_a, dtype=np.float64)
    matrix_b = np.asarray(values_b, dtype=np.float64)
    if matrix_a.ndim != 1 or matrix_b.ndim != 1:
        raise MetricError("series values must be 1-D arrays")
    union, aligned_a, aligned_b = align_batch(
        keys_a,
        matrix_a[np.newaxis, :],
        keys_b,
        matrix_b[np.newaxis, :],
        fill=fill,
    )
    return union, aligned_a[0], aligned_b[0]


def align_batch(
    keys_a: Sequence[Any],
    matrix_a: np.ndarray,
    keys_b: Sequence[Any],
    matrix_b: np.ndarray,
    fill: float = 0.0,
) -> tuple[list[Any], np.ndarray, np.ndarray]:
    """Align two batches of keyed series onto the sorted key union.

    ``matrix_a`` is ``(n_views, len(keys_a))`` — one row per view, every
    row keyed by the shared ``keys_a`` — and likewise for ``matrix_b``.
    This is the columnar form of :func:`align_series`: the union key
    universe is computed **once** for the whole batch, and all rows are
    scattered into the dense ``(n_views, n_union)`` result with two fancy
    -index assignments instead of per-view dict merges. Returns
    ``(union_keys, aligned_a, aligned_b)``.
    """
    index_a = _key_index(keys_a, matrix_a, "first")
    index_b = _key_index(keys_b, matrix_b, "second")
    union = sorted(set(index_a) | set(index_b), key=_sort_key)
    aligned_a = _scatter(matrix_a, index_a, union, fill)
    aligned_b = _scatter(matrix_b, index_b, union, fill)
    return union, aligned_a, aligned_b


def _key_index(keys: Sequence[Any], matrix: np.ndarray, label: str) -> dict[Any, int]:
    """{canonical key: source column} for one batch, validating shape/dups."""
    if matrix.ndim != 2:
        raise MetricError(f"{label} series batch must be a 2-D matrix")
    if len(keys) != matrix.shape[1]:
        raise MetricError(
            f"{label} series: {len(keys)} keys but {matrix.shape[1]} values"
        )
    index: dict[Any, int] = {}
    for position, key in enumerate(keys):
        key = canonical_key(key)
        if key in index:
            raise MetricError(f"{label} series has duplicate group key {key!r}")
        index[key] = position
    return index


def _scatter(
    matrix: np.ndarray, index: dict[Any, int], union: list[Any], fill: float
) -> np.ndarray:
    """Spread batch columns onto the union universe, filling absent keys."""
    matrix = np.asarray(matrix, dtype=np.float64)
    aligned = np.full((matrix.shape[0], len(union)), fill, dtype=np.float64)
    destinations: list[int] = []
    sources: list[int] = []
    for position, key in enumerate(union):
        source = index.get(key)
        if source is not None:
            destinations.append(position)
            sources.append(source)
    if destinations:
        aligned[:, destinations] = matrix[:, sources]
    return aligned


def canonical_key(key: Any) -> Any:
    """Make numpy scalar keys hashable/comparable across array dtypes.

    Group keys cross several representations (numpy scalars from the memory
    engine, Python scalars from sqlite rows); canonicalizing to Python
    scalars makes dict-based alignment work across backends.
    """
    if isinstance(key, np.generic):
        return key.item()
    return key


def _sort_key(key: Any) -> tuple[str, Any]:
    """Sort mixed-type key unions deterministically by (type name, value)."""
    return (type(key).__name__, key)
