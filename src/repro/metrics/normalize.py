"""Normalization of view results into aligned probability distributions.

Paper §2: "We normalize each result table into a probability distribution,
such that the values of f(m) sum to 1." Two practical issues the paper
glosses over are handled explicitly here:

* **Alignment** — the target view (filtered rows) may be missing groups that
  exist in the comparison view (all rows). Distances are only meaningful
  over a common support, so :func:`align_series` takes the union of group
  keys (sorted for determinism) and fills absent groups with 0.
* **Negative or NaN aggregates** — ``SUM(profit)`` can be negative and
  ``AVG`` over an empty group is NaN. :class:`NormalizationPolicy` chooses
  how to coerce values into valid mass: reject, shift by the minimum, or
  take absolute values.
"""

from __future__ import annotations

import enum
from typing import Any, Sequence

import numpy as np

from repro.util.errors import MetricError


class NormalizationPolicy(enum.Enum):
    """How to handle values that are not valid probability mass."""

    STRICT = "strict"  # negative values raise MetricError
    SHIFT = "shift"  # subtract the minimum (if negative) before normalizing
    ABSOLUTE = "absolute"  # use |value|


def normalize_distribution(
    values: "np.ndarray | Sequence[float]",
    policy: NormalizationPolicy = NormalizationPolicy.STRICT,
) -> np.ndarray:
    """Scale ``values`` into a probability vector summing to 1.

    NaN entries (e.g. AVG of an empty group) contribute zero mass. An
    all-zero vector normalizes to the uniform distribution — the natural
    limit that keeps distances finite and makes "no data on either side"
    compare as identical.
    """
    array = np.asarray(values, dtype=np.float64).copy()
    if array.ndim != 1:
        raise MetricError(f"expected a 1-D value array, got shape {array.shape}")
    if array.size == 0:
        raise MetricError("cannot normalize an empty distribution")
    nan_mask = np.isnan(array)
    array[nan_mask] = 0.0
    if np.any(array < 0):
        if policy is NormalizationPolicy.STRICT:
            raise MetricError(
                "negative values cannot be normalized under the STRICT policy; "
                "use SHIFT or ABSOLUTE for measures like profit"
            )
        if policy is NormalizationPolicy.SHIFT:
            array = array - array.min()
        else:
            array = np.abs(array)
    total = array.sum()
    if total <= 0 or not np.isfinite(total):
        return np.full(array.size, 1.0 / array.size)
    return array / total


def align_series(
    keys_a: Sequence[Any],
    values_a: "np.ndarray | Sequence[float]",
    keys_b: Sequence[Any],
    values_b: "np.ndarray | Sequence[float]",
    fill: float = 0.0,
) -> tuple[list[Any], np.ndarray, np.ndarray]:
    """Align two keyed series onto the sorted union of their keys.

    Returns ``(union_keys, aligned_a, aligned_b)``. Missing groups are
    filled with ``fill`` (0 = no mass). Duplicate keys within one series are
    rejected: a view result must have one row per group.
    """
    map_a = _as_map(keys_a, values_a, "first")
    map_b = _as_map(keys_b, values_b, "second")
    union = sorted(set(map_a) | set(map_b), key=_sort_key)
    aligned_a = np.array([map_a.get(key, fill) for key in union], dtype=np.float64)
    aligned_b = np.array([map_b.get(key, fill) for key in union], dtype=np.float64)
    return union, aligned_a, aligned_b


def _as_map(keys: Sequence[Any], values, label: str) -> dict[Any, float]:
    values = np.asarray(values, dtype=np.float64)
    if len(keys) != len(values):
        raise MetricError(
            f"{label} series: {len(keys)} keys but {len(values)} values"
        )
    mapping: dict[Any, float] = {}
    for key, value in zip(keys, values):
        key = canonical_key(key)
        if key in mapping:
            raise MetricError(f"{label} series has duplicate group key {key!r}")
        mapping[key] = float(value)
    return mapping


def canonical_key(key: Any) -> Any:
    """Make numpy scalar keys hashable/comparable across array dtypes.

    Group keys cross several representations (numpy scalars from the memory
    engine, Python scalars from sqlite rows); canonicalizing to Python
    scalars makes dict-based alignment work across backends.
    """
    if isinstance(key, np.generic):
        return key.item()
    return key


def _sort_key(key: Any) -> tuple[str, Any]:
    """Sort mixed-type key unions deterministically by (type name, value)."""
    return (type(key).__name__, key)
