"""Metric registry: look distance metrics up by name.

The demo lets attendees "experiment with different distance metrics" (§4);
the registry is what the frontend/config layer resolves those choices
through, and it is open for extension via :func:`register_metric`.
"""

from __future__ import annotations

from repro.metrics.base import DistanceMetric
from repro.metrics.chisquare import ChiSquareDistance
from repro.metrics.emd import EarthMoversDistance
from repro.metrics.euclidean import EuclideanDistance
from repro.metrics.hellinger import HellingerDistance
from repro.metrics.jensen_shannon import JensenShannonDistance
from repro.metrics.kl import KLDivergence
from repro.metrics.maxdev import MaxDeviationDistance
from repro.metrics.total_variation import TotalVariationDistance
from repro.util.errors import MetricError

_REGISTRY: dict[str, DistanceMetric] = {}


def register_metric(metric: DistanceMetric, replace: bool = False) -> DistanceMetric:
    """Add ``metric`` under ``metric.name``; returns it for chaining."""
    if not metric.name:
        raise MetricError(f"{type(metric).__name__} has no name; set .name")
    if metric.name in _REGISTRY and not replace:
        raise MetricError(
            f"metric {metric.name!r} already registered (pass replace=True)"
        )
    _REGISTRY[metric.name] = metric
    return metric


def get_metric(name: "str | DistanceMetric") -> DistanceMetric:
    """Resolve a metric by name (or pass an instance through)."""
    if isinstance(name, DistanceMetric):
        return name
    try:
        return _REGISTRY[name]
    except KeyError:
        raise MetricError(
            f"unknown metric {name!r}; available: {available_metrics()}"
        ) from None


def available_metrics() -> list[str]:
    """Sorted names of all registered metrics."""
    return sorted(_REGISTRY)


# The built-in metric set (paper §2 plus extensions).
for _metric in (
    EarthMoversDistance(),
    EuclideanDistance(),
    KLDivergence(),
    JensenShannonDistance(),
    ChiSquareDistance(),
    TotalVariationDistance(),
    MaxDeviationDistance(),
    HellingerDistance(),
):
    register_metric(_metric)
