"""Statistical significance of a view's deviation.

The frontend shows per-view metadata "and other statistics" (§3.2); the
most useful statistic for an analyst deciding whether a deviation "is
truly an insight" (§1) is whether it could be sampling noise. For count
views (and any view whose values are non-negative totals), a chi-square
goodness-of-fit test against the comparison distribution answers exactly
that: *if the target rows were drawn from the comparison distribution, how
surprising are these group counts?*
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as scipy_stats

from repro.model.view import ScoredView
from repro.util.errors import MetricError


@dataclass(frozen=True)
class SignificanceResult:
    """Chi-square test outcome for one view."""

    chi2: float
    p_value: float
    dof: int
    #: Number of expected-count cells below 5 (test reliability caveat).
    sparse_cells: int

    def significant(self, alpha: float = 0.05) -> bool:
        """Whether the deviation is significant at level ``alpha``."""
        return self.p_value < alpha


def view_significance(
    view: ScoredView, n_target_rows: "int | None" = None
) -> SignificanceResult:
    """Chi-square test of the view's target against its comparison.

    The target's raw values are treated as observed totals; expected
    totals are the comparison distribution scaled to the same mass.
    ``n_target_rows`` overrides the total when the view's values are not
    counts (e.g. SUMs): the test is then performed on the distributions
    scaled to that row count — a standard approximation, flagged through
    ``sparse_cells`` when unreliable.
    """
    observed = np.asarray(view.target_values, dtype=np.float64)
    if observed.size == 0:
        raise MetricError("cannot test an empty view")
    observed = np.where(np.isnan(observed), 0.0, observed)
    if np.any(observed < 0):
        raise MetricError(
            "significance testing needs non-negative view values "
            "(counts or sums of non-negative measures)"
        )
    total = float(observed.sum()) if n_target_rows is None else float(n_target_rows)
    if total <= 0:
        raise MetricError("view has zero total mass; nothing to test")
    if n_target_rows is not None:
        distribution = (
            observed / observed.sum() if observed.sum() > 0 else observed
        )
        observed = distribution * total

    expected = np.asarray(view.comparison_distribution, dtype=np.float64) * total
    # Zero-expectation cells break the statistic; give them a minuscule
    # expectation (their observed counts then dominate chi2, as they should).
    expected = np.maximum(expected, 1e-9)
    chi2 = float(np.sum((observed - expected) ** 2 / expected))
    dof = max(observed.size - 1, 1)
    p_value = float(scipy_stats.chi2.sf(chi2, dof))
    sparse_cells = int(np.sum(expected < 5.0))
    return SignificanceResult(
        chi2=chi2, p_value=p_value, dof=dof, sparse_cells=sparse_cells
    )
