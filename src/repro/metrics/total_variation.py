"""Total variation distance (extension metric)."""

from __future__ import annotations

import numpy as np

from repro.metrics.base import DistanceMetric


class TotalVariationDistance(DistanceMetric):
    """``0.5 * sum |p_i - q_i|``; range [0, 1].

    Equals the largest possible difference in probability either
    distribution assigns to any event — an easily explained score for the
    frontend's "value with maximum change" metadata (§3.2).
    """

    name = "total_variation"

    def _distance_batch(self, P: np.ndarray, Q: np.ndarray) -> np.ndarray:
        return 0.5 * np.sum(np.abs(P - Q), axis=1)
