"""Shared data model: view triples and their materialized data.

Lives in its own leaf package (rather than under :mod:`repro.core`) so the
optimizer, pruning and sampling subsystems can import the vocabulary types
without pulling in the full recommender stack.
"""

from repro.model.view import RawViewData, ScoredView, ViewSpec

__all__ = ["RawViewData", "ScoredView", "ViewSpec"]
