"""Resolved reference specs: which rows the comparison view ranges over.

The paper fixes the comparison view to the whole table ``D`` (§2), but the
deviation contract is really parameterized by a *reference*: target
distribution from the analyst's selection, comparison distribution from
some other row set. This leaf module holds the engine-facing resolved form
— the user-facing declarative :class:`repro.api.Reference` resolves to one
of these against a concrete target query, and the planner / incremental
executor read it to decide how comparison-side queries are built:

* ``table`` — comparison over all of ``D`` (the paper's §2 definition and
  the historical behavior). Flag-combinable; the comparison series is the
  merge of both flag partitions.
* ``complement`` — comparison over ``D ∖ D_Q`` (the demo paper's "compare
  against everything else"). Flag-combinable; the comparison series is the
  flag=0 partition alone.
* ``query`` — comparison over the rows of an arbitrary second selection on
  the same table (query-vs-query, temporal slices). Not flag-combinable:
  the two row sets may overlap, so one 0/1 flag cannot partition them —
  the planner falls back to separate target/comparison queries.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.expressions import Expression

#: Legal ``ResolvedReference.kind`` values.
REFERENCE_KINDS = ("table", "complement", "query")


@dataclass(frozen=True)
class ResolvedReference:
    """Engine-facing reference: a kind plus the comparison-side predicate.

    ``predicate`` is what a *separate* comparison query filters on:
    ``None`` for ``table`` (whole table), ``Not(target predicate)`` for
    ``complement``, the second query's predicate for ``query``.
    """

    kind: str = "table"
    predicate: "Expression | None" = None

    def __post_init__(self) -> None:
        if self.kind not in REFERENCE_KINDS:
            raise ValueError(
                f"reference kind must be one of {REFERENCE_KINDS}, "
                f"got {self.kind!r}"
            )

    @property
    def flag_combinable(self) -> bool:
        """Whether one 0/1 flag column can serve both sides of this
        comparison (target and comparison row sets must be disjoint or
        nested, which holds for ``table`` and ``complement`` but not for
        an arbitrary second query)."""
        return self.kind != "query"

    @property
    def merge_partitions(self) -> bool:
        """Whether the comparison series of a flag-combined result is the
        merge of both partitions (``table``: comparison = D) or the flag=0
        partition alone (``complement``: comparison = D ∖ D_Q)."""
        return self.kind == "table"

    def describe(self) -> str:
        """Deterministic rendering for cache keys and plan descriptions."""
        if self.kind == "table":
            return "table"
        if self.predicate is None:
            return self.kind
        from repro.backends.sqlgen import render_expression
        from repro.util.errors import QueryError

        try:
            rendered = render_expression(self.predicate)
        except QueryError:
            rendered = repr(self.predicate)
        return f"{self.kind}[{rendered}]"


#: The default reference: comparison over the entire table (paper §2).
TABLE_REFERENCE = ResolvedReference("table")
