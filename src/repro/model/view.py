"""View triples and their materialized data.

Paper §2: "We represent V_i as a triple (a, m, f) — the view performs a
group-by on ``a`` and applies the aggregation function ``f`` on a measure
attribute ``m``." A :class:`ViewSpec` is that triple; it knows how to
express its *target view* (over the query's rows D_Q) and *comparison view*
(over the full table D) as logical queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.db.aggregates import Aggregate
from repro.db.expressions import Expression
from repro.db.query import AggregateQuery
from repro.db.schema import Schema
from repro.db.types import AttributeRole
from repro.util.errors import QueryError


@dataclass(frozen=True)
class ViewSpec:
    """A candidate view: group-by ``dimension``, aggregate ``func(measure)``.

    ``measure`` is None only for ``count`` (COUNT(*)), a natural member of
    the view space even though the paper's notation always pairs f with m.
    Specs order lexicographically by ``(dimension, measure, func)`` with a
    missing measure sorting first, so rankings stay deterministic.
    """

    dimension: str
    measure: str | None
    func: str

    def __post_init__(self) -> None:
        if self.measure is None and self.func != "count":
            raise QueryError(
                f"view ({self.dimension}, None, {self.func}): only 'count' "
                "may omit the measure"
            )

    @property
    def sort_key(self) -> tuple[str, str, str]:
        """None-safe lexicographic ordering key."""
        return (self.dimension, self.measure or "", self.func)

    def __lt__(self, other: "ViewSpec") -> bool:
        return self.sort_key < other.sort_key

    def __le__(self, other: "ViewSpec") -> bool:
        return self.sort_key <= other.sort_key

    def __gt__(self, other: "ViewSpec") -> bool:
        return self.sort_key > other.sort_key

    def __ge__(self, other: "ViewSpec") -> bool:
        return self.sort_key >= other.sort_key

    @property
    def aggregate(self) -> Aggregate:
        """The SELECT-list aggregate ``f(m)`` of this view."""
        return Aggregate(self.func, self.measure)

    @property
    def label(self) -> str:
        """Human-readable ``f(m) by a`` label used in reports and charts."""
        measure = self.measure if self.measure is not None else "*"
        return f"{self.func}({measure}) by {self.dimension}"

    def validate_against(self, schema: Schema) -> None:
        """Check the triple is well-formed for ``schema`` (raises SchemaError)."""
        schema.require(self.dimension, AttributeRole.DIMENSION)
        if self.measure is not None:
            schema.require(self.measure, AttributeRole.MEASURE)

    def target_query(self, table: str, predicate: Expression | None) -> AggregateQuery:
        """``SELECT a, f(m) FROM D_Q GROUP BY a`` — the target view (§2)."""
        return AggregateQuery(
            table=table,
            group_by=(self.dimension,),
            aggregates=(self.aggregate,),
            predicate=predicate,
        )

    def comparison_query(
        self, table: str, predicate: Expression | None = None
    ) -> AggregateQuery:
        """``SELECT a, f(m) FROM D GROUP BY a`` — the comparison view (§2).

        ``predicate`` restricts the comparison row set for non-table
        references (complement / query-vs-query); ``None`` keeps the
        paper's whole-table comparison.
        """
        return AggregateQuery(
            table=table,
            group_by=(self.dimension,),
            aggregates=(self.aggregate,),
            predicate=predicate,
        )

    def __str__(self) -> str:
        return self.label


@dataclass
class RawViewData:
    """Un-normalized series for one view, straight from query results.

    Keys are group values of the view's dimension; values are the finalized
    aggregate per group. Target and comparison may have different key sets —
    alignment happens during scoring.
    """

    spec: ViewSpec
    target_keys: list[Any]
    target_values: np.ndarray
    comparison_keys: list[Any]
    comparison_values: np.ndarray


@dataclass
class ViewBlock:
    """Columnar batch of views sharing one dimension and key universe.

    The Score-path representation the View Processor operates on: instead
    of one ``RawViewData`` per view, all views grouping by the same
    ``dimension`` (and extracted from the same query results, hence sharing
    group-key lists) are materialized as two dense ``(n_views, n_groups)``
    matrices over the aligned union key universe. Row ``i`` of ``target`` /
    ``comparison`` holds the raw aggregate series of ``specs[i]``; absent
    groups are already filled with 0 (no mass).
    """

    dimension: "str | tuple[str, ...]"
    specs: tuple
    #: Union group keys, sorted — the shared support of every row.
    groups: list[Any]
    target: np.ndarray
    comparison: np.ndarray

    @property
    def n_views(self) -> int:
        return len(self.specs)

    @property
    def n_groups(self) -> int:
        return len(self.groups)

    def __repr__(self) -> str:
        return (
            f"ViewBlock(dimension={self.dimension!r}, "
            f"views={self.n_views}, groups={self.n_groups})"
        )


@dataclass
class ScoredView:
    """A view with aligned distributions and its utility score.

    ``groups`` / ``target_distribution`` / ``comparison_distribution`` are
    aligned: entry i of each array refers to ``groups[i]``.
    """

    spec: ViewSpec
    utility: float
    groups: list[Any]
    target_distribution: np.ndarray
    comparison_distribution: np.ndarray
    #: Raw (un-normalized) aggregate values, aligned with ``groups``.
    target_values: np.ndarray = field(default_factory=lambda: np.empty(0))
    comparison_values: np.ndarray = field(default_factory=lambda: np.empty(0))

    @property
    def max_deviation_group(self) -> Any:
        """The group whose probability deviates most — frontend metadata
        ("value with maximum change", §3.2)."""
        if not self.groups:
            return None
        deltas = np.abs(self.target_distribution - self.comparison_distribution)
        return self.groups[int(np.argmax(deltas))]

    def __repr__(self) -> str:
        return f"ScoredView({self.spec.label!r}, utility={self.utility:.4f})"
