"""View-query optimizer (§3.3 "View Query Optimizations" + Figure 4).

Turns a set of candidate views into an :class:`ExecutionPlan` that
minimizes DBMS work by sharing it:

* **Combine target and comparison** — one query grouped by ``(flag, a)``
  instead of two; the comparison view is recovered by merging partitions.
* **Combine multiple aggregates** — views sharing a group-by attribute
  execute as one multi-aggregate query.
* **Combine multiple group-bys** — several dimensions per query, either via
  shared-scan GROUPING SETS or a multi-attribute rollup that is then
  marginalized; which dimensions may share a rollup is a bin-packing
  problem over the working-memory budget, solved exactly (branch-and-bound,
  the ILP of the paper) or by first-fit-decreasing.
* **Parallel execution** — independent plan steps run on a thread pool.
"""

from repro.optimizer.combine import MergeSpec, merge_spec, merge_aux_arrays
from repro.optimizer.binpack import (
    PackedBins,
    branch_and_bound_pack,
    first_fit_decreasing,
    pack_dimensions,
)
from repro.optimizer.plan import (
    ExecutionPlan,
    ExecutionStep,
    FlagStep,
    GroupByCombining,
    MultiDimStep,
    Planner,
    PlannerConfig,
    RollupStep,
    SeparateStep,
    ViewGroup,
    resolve_auto_mode,
)
from repro.optimizer.parallel import ParallelExecutor
from repro.optimizer.cost import (
    CostModel,
    PlanCost,
    PlanDecision,
    choose_parallelism,
    choose_sample_fraction,
    estimate_plan_cost,
    hoeffding_epsilon,
    sample_fraction_from_table,
)

__all__ = [
    "MergeSpec",
    "merge_spec",
    "merge_aux_arrays",
    "PackedBins",
    "branch_and_bound_pack",
    "first_fit_decreasing",
    "pack_dimensions",
    "ExecutionPlan",
    "ExecutionStep",
    "FlagStep",
    "GroupByCombining",
    "MultiDimStep",
    "Planner",
    "PlannerConfig",
    "RollupStep",
    "SeparateStep",
    "ViewGroup",
    "resolve_auto_mode",
    "ParallelExecutor",
    "CostModel",
    "PlanCost",
    "PlanDecision",
    "choose_parallelism",
    "choose_sample_fraction",
    "estimate_plan_cost",
    "hoeffding_epsilon",
    "sample_fraction_from_table",
]
