"""Bin-packing of group-by attributes under a working-memory budget.

Paper §3.3: "the number of views that can be combined depends on the
correlation between values of grouping attributes and system parameters
like the working memory. Given a set of candidate views, we model the
problem of finding the optimal combinations of views as a variant of
bin-packing and apply ILP techniques to obtain the best solution."

A rollup query grouping by dimensions ``d1..dk`` produces up to
``∏ card(d_i)`` result groups, which must fit the memory budget. Taking
logs turns the multiplicative capacity into classic additive bin packing:
item weight ``log card(d)``, bin capacity ``log budget``. We provide the
first-fit-decreasing heuristic and an exact branch-and-bound solver
(equivalent to the paper's ILP formulation — it provably minimizes the
number of bins, i.e. queries); benchmark E9 compares them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.errors import ConfigError


@dataclass(frozen=True)
class PackedBins:
    """Result of a packing: bins of dimension names + solver metadata."""

    bins: tuple[tuple[str, ...], ...]
    solver: str
    optimal: bool

    @property
    def n_bins(self) -> int:
        return len(self.bins)


def _validate(weights: dict[str, float], capacity: float) -> None:
    if capacity <= 0:
        raise ConfigError(f"capacity must be positive, got {capacity}")
    for name, weight in weights.items():
        if weight < 0:
            raise ConfigError(f"item {name!r} has negative weight {weight}")


def first_fit_decreasing(
    weights: dict[str, float],
    capacity: float,
    max_items_per_bin: "int | None" = None,
) -> PackedBins:
    """FFD heuristic: sort by weight descending, place in the first bin
    that fits. Items heavier than the capacity get singleton bins (they
    cannot share a rollup with anything and execute as plain queries)."""
    _validate(weights, capacity)
    order = sorted(weights, key=lambda name: (-weights[name], name))
    bin_loads: list[float] = []
    bin_members: list[list[str]] = []
    for name in order:
        weight = weights[name]
        placed = False
        if weight <= capacity:
            for index, load in enumerate(bin_loads):
                if load + weight <= capacity and (
                    max_items_per_bin is None
                    or len(bin_members[index]) < max_items_per_bin
                ):
                    bin_loads[index] += weight
                    bin_members[index].append(name)
                    placed = True
                    break
        if not placed:
            bin_loads.append(weight)
            bin_members.append([name])
    return PackedBins(
        bins=tuple(tuple(members) for members in bin_members),
        solver="ffd",
        optimal=False,
    )


def branch_and_bound_pack(
    weights: dict[str, float],
    capacity: float,
    max_items_per_bin: "int | None" = None,
    node_limit: int = 200_000,
) -> PackedBins:
    """Exact minimum-bin packing via branch-and-bound.

    Explores placements in decreasing-weight order with two classic
    prunings: identical-load bin symmetry breaking, and the fractional
    lower bound ``ceil(remaining_weight / capacity)``. Falls back to the
    FFD answer if the node limit trips (and reports ``optimal=False``).
    """
    _validate(weights, capacity)
    oversized = sorted(name for name, weight in weights.items() if weight > capacity)
    packable = {
        name: weight for name, weight in weights.items() if weight <= capacity
    }
    order = sorted(packable, key=lambda name: (-packable[name], name))
    suffix_weight = [0.0] * (len(order) + 1)
    for i in range(len(order) - 1, -1, -1):
        suffix_weight[i] = suffix_weight[i + 1] + packable[order[i]]

    ffd = first_fit_decreasing(packable, capacity, max_items_per_bin)
    best = {"bins": [list(members) for members in ffd.bins], "count": ffd.n_bins}
    state = {"nodes": 0, "exhausted": False}
    bins_loads: list[float] = []
    bins_members: list[list[str]] = []

    def recurse(index: int) -> None:
        if state["nodes"] >= node_limit:
            state["exhausted"] = True
            return
        state["nodes"] += 1
        if index == len(order):
            if len(bins_loads) < best["count"]:
                best["count"] = len(bins_loads)
                best["bins"] = [list(members) for members in bins_members]
            return
        # Fractional lower bound on additional bins needed.
        remaining = suffix_weight[index]
        free_space = sum(capacity - load for load in bins_loads)
        extra_needed = max(0, math.ceil((remaining - free_space) / capacity))
        if len(bins_loads) + extra_needed >= best["count"]:
            return
        name = order[index]
        weight = packable[name]
        tried_loads: set[float] = set()
        for bin_index in range(len(bins_loads)):
            load = bins_loads[bin_index]
            if load + weight > capacity:
                continue
            if max_items_per_bin is not None and (
                len(bins_members[bin_index]) >= max_items_per_bin
            ):
                continue
            if load in tried_loads:  # symmetric bin, same subtree
                continue
            tried_loads.add(load)
            bins_loads[bin_index] += weight
            bins_members[bin_index].append(name)
            recurse(index + 1)
            bins_members[bin_index].pop()
            bins_loads[bin_index] -= weight
        if len(bins_loads) + 1 < best["count"]:
            bins_loads.append(weight)
            bins_members.append([name])
            recurse(index + 1)
            bins_members.pop()
            bins_loads.pop()

    recurse(0)
    all_bins = [tuple(members) for members in best["bins"]]
    all_bins.extend((name,) for name in oversized)
    return PackedBins(
        bins=tuple(all_bins),
        solver="branch_and_bound",
        optimal=not state["exhausted"],
    )


def pack_dimensions(
    cardinalities: dict[str, int],
    budget_cells: int,
    max_dims_per_bin: "int | None" = None,
    exact_threshold: int = 12,
) -> PackedBins:
    """Pack dimensions so each bin's cardinality product fits the budget.

    ``budget_cells`` is the working-memory limit expressed as the maximum
    number of result groups a rollup query may produce. The exact solver
    runs up to ``exact_threshold`` dimensions; beyond that FFD is used
    (bin packing is NP-hard; FFD is within 11/9·OPT + 1).
    """
    if budget_cells < 2:
        raise ConfigError(f"budget_cells must be >= 2, got {budget_cells}")
    weights = {
        name: math.log(max(cardinality, 1)) for name, cardinality in cardinalities.items()
    }
    # Tiny epsilon headroom absorbs float rounding in the log transform.
    capacity = math.log(budget_cells) * (1 + 1e-12) + 1e-12
    if len(weights) <= exact_threshold:
        return branch_and_bound_pack(weights, capacity, max_dims_per_bin)
    return first_fit_decreasing(weights, capacity, max_dims_per_bin)
