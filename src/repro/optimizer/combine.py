"""Aggregate decomposition for shared execution.

When the optimizer folds a view's target and comparison queries into one
``GROUP BY (flag, a)`` query, the comparison view (over *all* rows) must be
recovered by merging the flag=0 and flag=1 partitions. Distributive
aggregates (SUM, COUNT, MIN, MAX) merge directly; algebraic ones (AVG,
VAR, STD) must be decomposed into distributive *auxiliary* aggregates and
reconstructed afterwards — ``avg = sum / countv``,
``var = sumsq/countv - (sum/countv)²``. The same decomposition powers the
rollup strategy for combining group-bys, where per-dimension views are
marginalized out of a multi-attribute result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from repro.db.aggregates import Aggregate
from repro.util.errors import QueryError

#: How two partitions' values of an auxiliary aggregate combine, and the
#: neutral fill used when a group is absent from one partition.
_MERGE_OPS: dict[str, tuple[Callable, float]] = {
    "sum": (np.add, 0.0),
    "count": (np.add, 0.0),
    "countv": (np.add, 0.0),
    "sumsq": (np.add, 0.0),
    "min": (np.fmin, np.nan),  # fmin/fmax ignore NaN -> absent group is neutral
    "max": (np.fmax, np.nan),
}


@dataclass(frozen=True)
class MergeSpec:
    """How one user-facing aggregate executes under shared plans.

    ``aux`` are the distributive aggregates actually placed in the query;
    ``reconstruct`` maps their per-group arrays back to the user-facing
    value.
    """

    aux: tuple[Aggregate, ...]
    reconstruct: Callable[[Mapping[str, np.ndarray]], np.ndarray]


def merge_spec(aggregate: Aggregate) -> MergeSpec:
    """The :class:`MergeSpec` for any supported aggregate."""
    func = aggregate.func
    column = aggregate.column
    if func in ("sum", "count", "countv", "sumsq", "min", "max"):
        passthrough = Aggregate(func, column)
        return MergeSpec(
            aux=(passthrough,),
            reconstruct=lambda values, alias=passthrough.alias: values[alias],
        )
    if func == "avg":
        total = Aggregate("sum", column)
        valid = Aggregate("countv", column)
        return MergeSpec(
            aux=(total, valid),
            reconstruct=lambda values, s=total.alias, c=valid.alias: _safe_divide(
                values[s], values[c]
            ),
        )
    if func in ("var", "std"):
        total = Aggregate("sum", column)
        squares = Aggregate("sumsq", column)
        valid = Aggregate("countv", column)

        def reconstruct(values, s=total.alias, q=squares.alias, c=valid.alias):
            counts = values[c]
            mean = _safe_divide(values[s], counts)
            variance = np.maximum(_safe_divide(values[q], counts) - mean**2, 0.0)
            if func == "std":
                return np.sqrt(variance)
            return variance

        return MergeSpec(aux=(total, squares, valid), reconstruct=reconstruct)
    raise QueryError(f"no merge decomposition for aggregate {func!r}")


def merge_fill_value(aux: Aggregate) -> float:
    """Neutral value for a group absent from one partition."""
    try:
        return _MERGE_OPS[aux.func][1]
    except KeyError:
        raise QueryError(f"aggregate {aux.func!r} is not mergeable") from None


def merge_aux_arrays(
    aux: Aggregate, values_a: np.ndarray, values_b: np.ndarray
) -> np.ndarray:
    """Combine two aligned partitions' values of one auxiliary aggregate."""
    try:
        operation, _fill = _MERGE_OPS[aux.func]
    except KeyError:
        raise QueryError(f"aggregate {aux.func!r} is not mergeable") from None
    return operation(values_a, values_b)


def dedup_aggregates(aggregates: "list[Aggregate] | tuple[Aggregate, ...]") -> tuple[Aggregate, ...]:
    """Drop duplicate aggregates (same alias), preserving first-seen order.

    Views like ``avg(price)`` and ``var(price)`` share the auxiliary
    ``sum(price)``/``countv(price)``; a combined query computes each once.
    """
    seen: set[str] = set()
    unique: list[Aggregate] = []
    for aggregate in aggregates:
        if aggregate.alias not in seen:
            seen.add(aggregate.alias)
            unique.append(aggregate)
    return tuple(unique)


def _safe_divide(numerator: np.ndarray, denominator: np.ndarray) -> np.ndarray:
    with np.errstate(invalid="ignore", divide="ignore"):
        result = numerator / denominator
    return np.where(denominator > 0, result, np.nan)
