"""Plan cost model.

Deterministic work estimates used by tests and benchmarks to check that
combining really shares work (fewer scans) before any wall-clock timing is
involved. The unit costs mirror the engine's accounting: a query = one
scan of its base table; a grouping-sets query = one scan on backends with
native support, one per set otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.backends.base import BackendCapabilities
from repro.db.query import AggregateQuery, GroupingSetsQuery
from repro.optimizer.plan import ExecutionPlan, RollupStep


@dataclass(frozen=True)
class PlanCost:
    """Estimated work of one plan."""

    n_queries: int
    n_scans: int
    rows_scanned: int
    #: Upper bound on result groups materialized across all queries.
    result_groups: int


def estimate_plan_cost(
    plan: ExecutionPlan,
    n_rows: int,
    cardinalities: dict[str, int],
    capabilities: BackendCapabilities,
) -> PlanCost:
    """Estimate queries/scans/rows/groups for ``plan`` on an ``n_rows`` table."""
    n_queries = 0
    n_scans = 0
    result_groups = 0
    for step in plan.steps:
        for query in step.queries():
            n_queries += 1
            if isinstance(query, GroupingSetsQuery):
                sets = len(query.sets)
                n_scans += 1 if capabilities.grouping_sets else sets
                for key_set in query.sets:
                    result_groups += _set_groups(key_set, cardinalities)
            else:
                assert isinstance(query, AggregateQuery)
                n_scans += 1
                result_groups += _set_groups(query.group_by, cardinalities)
        if isinstance(step, RollupStep):
            # Marginalization re-reads the rollup result, not the base
            # table: negligible, not counted as scans.
            pass
    return PlanCost(
        n_queries=n_queries,
        n_scans=n_scans,
        rows_scanned=n_scans * n_rows,
        result_groups=result_groups,
    )


def _set_groups(key_set, cardinalities: dict[str, int]) -> int:
    """Upper bound on groups for one group-by key set."""
    groups = 1
    for key in key_set:
        if isinstance(key, str):
            groups *= max(cardinalities.get(key, 1), 1)
        else:  # a flag column doubles the group count
            groups *= 2
    return groups
