"""Plan cost model: deterministic work units + calibrated seconds.

Two layers, mirroring the ``StatInfo`` / ``blocks_accessed`` ×
``reduction_factor`` idiom of classic cost-based planners:

* :func:`estimate_plan_cost` prices a plan in machine-independent work
  units — rows scanned, result groups materialized, logical queries,
  physical statements. The unit costs mirror the engine's accounting: a
  query = one scan of its base table; a grouping-sets query = one scan
  and one logical query on backends with native support, one scan and one
  logical query *per set* otherwise (still a single UNION ALL statement).
  Plans executing against a materialized ``__seedb_sample`` table are
  priced at the sampled row count, not the base table's.
* :class:`CostModel` converts work units into predicted seconds with
  per-backend coefficients seeded in
  :mod:`repro.metadata.calibration` and refined by the engine's
  predicted-vs-observed feedback loop.

The module also hosts the two data-dependent knob selectors the
cost-based planner consults: candidate sampling fractions (bounding the
Hoeffding ε at the sampled size) and the parallelism degree (worker
overhead vs per-step work).
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field

from repro.backends.base import BackendCapabilities
from repro.db.query import AggregateQuery, GroupingSetsQuery
from repro.metadata.calibration import (
    CalibrationStore,
    CostCoefficients,
    DEFAULT_COEFFICIENTS,
    SEEDED_COEFFICIENTS,
)
from repro.optimizer.plan import ExecutionPlan, RollupStep

#: Parses the knobs out of a cache-materialized sample-table name
#: (``<source>__seedb_sample_<fraction*1e6>_<seed>`` — see
#: :func:`repro.engine.cache.sample_table_name`), which is what lets the
#: estimator recover the effective row count from the plan alone.
_SAMPLE_NAME = re.compile(r"__seedb_sample_(\d+)_\d+$")

#: Candidate sampling fractions the planner may pick from, descending.
SAMPLE_FRACTION_CANDIDATES = (0.5, 0.2, 0.1, 0.05, 0.02, 0.01)

#: Two-sided confidence for the Hoeffding bound (δ = 5%).
HOEFFDING_DELTA = 0.05


@dataclass(frozen=True)
class PlanCost:
    """Estimated work of one plan, in machine-independent units."""

    #: Logical queries, matching ``Backend.queries_executed`` accounting:
    #: a native shared scan counts once, a UNION ALL emulation counts one
    #: per grouping set.
    n_queries: int
    n_scans: int
    rows_scanned: int
    #: Upper bound on result groups materialized across all queries.
    result_groups: int
    #: Physical DBMS statements (round trips), matching
    #: ``Backend.statements_executed``: a UNION ALL batch is one.
    n_statements: int = 0

    def as_dict(self) -> dict:
        return {
            "n_queries": self.n_queries,
            "n_scans": self.n_scans,
            "rows_scanned": self.rows_scanned,
            "result_groups": self.result_groups,
            "n_statements": self.n_statements,
        }


@dataclass
class PlanDecision:
    """What the cost-based planner chose and why, kept for observability.

    Travels on the :class:`~repro.engine.context.ExecutionContext`, into
    the :class:`~repro.core.result.RecommendationResult`, and out through
    ``/stats`` — and closes the feedback loop: the engine fills in
    ``observed_seconds`` after execution and feeds the predicted/observed
    pair to the :class:`~repro.metadata.calibration.CalibrationStore`.
    """

    #: Resolved :class:`~repro.optimizer.plan.GroupByCombining` value.
    kind: str
    #: True when the kind was picked by cost comparison (AUTO mode);
    #: False when the configuration pinned it.
    cost_based: bool
    predicted: PlanCost
    predicted_seconds: float
    #: Predicted seconds per candidate mode (one entry when pinned).
    candidate_seconds: "dict[str, float]" = field(default_factory=dict)
    coefficients: "CostCoefficients | None" = None
    sample_fraction: "float | None" = None
    #: Worker count the cost model recommends (applied only under the
    #: opt-in ``auto_parallelism``; recorded regardless).
    recommended_workers: int = 1
    #: Wall-clock of the execute phase, filled in by the engine.
    observed_seconds: "float | None" = None

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "cost_based": self.cost_based,
            "predicted": self.predicted.as_dict(),
            "predicted_seconds": self.predicted_seconds,
            "candidate_seconds": dict(self.candidate_seconds),
            "coefficients": (
                self.coefficients.to_dict()
                if self.coefficients is not None
                else None
            ),
            "sample_fraction": self.sample_fraction,
            "recommended_workers": self.recommended_workers,
            "observed_seconds": self.observed_seconds,
        }


def sample_fraction_from_table(table: str) -> "float | None":
    """The sampling fraction encoded in a sample-table name, else None."""
    match = _SAMPLE_NAME.search(table)
    if match is None:
        return None
    return int(match.group(1)) / 1_000_000


def _effective_rows(
    table: str, n_rows: int, sample_fraction: "float | None"
) -> int:
    """Rows one scan of ``table`` touches: the sampled count for samples."""
    fraction = sample_fraction_from_table(table)
    if fraction is None:
        return n_rows
    if sample_fraction is not None:
        fraction = sample_fraction
    return max(1, int(round(n_rows * fraction)))


def estimate_plan_cost(
    plan: ExecutionPlan,
    n_rows: int,
    cardinalities: dict[str, int],
    capabilities: BackendCapabilities,
    sample_fraction: "float | None" = None,
) -> PlanCost:
    """Estimate queries/scans/rows/groups/statements for ``plan``.

    ``n_rows`` is the *base table's* row count; steps whose table is a
    materialized ``__seedb_sample`` are priced at the effective sampled
    count (``sample_fraction`` overrides the fraction encoded in the
    sample's name when given).
    """
    n_queries = 0
    n_scans = 0
    n_statements = 0
    rows_scanned = 0
    result_groups = 0
    for step in plan.steps:
        step_rows = _effective_rows(step.table, n_rows, sample_fraction)
        for query in step.queries():
            n_statements += 1
            if isinstance(query, GroupingSetsQuery):
                sets = len(query.sets)
                arms = 1 if capabilities.grouping_sets else sets
                n_queries += arms
                n_scans += arms
                rows_scanned += arms * step_rows
                for key_set in query.sets:
                    result_groups += _set_groups(key_set, cardinalities)
            else:
                assert isinstance(query, AggregateQuery)
                n_queries += 1
                n_scans += 1
                rows_scanned += step_rows
                result_groups += _set_groups(query.group_by, cardinalities)
        if isinstance(step, RollupStep):
            # Marginalization re-reads the rollup result, not the base
            # table: negligible, not counted as scans.
            pass
    return PlanCost(
        n_queries=n_queries,
        n_scans=n_scans,
        rows_scanned=rows_scanned,
        result_groups=result_groups,
        n_statements=n_statements,
    )


def _set_groups(key_set, cardinalities: dict[str, int]) -> int:
    """Upper bound on groups for one group-by key set."""
    groups = 1
    for key in key_set:
        if isinstance(key, str):
            groups *= max(cardinalities.get(key, 1), 1)
        else:  # a flag column doubles the group count
            groups *= 2
    return groups


@dataclass(frozen=True)
class CostModel:
    """Work units → predicted seconds, with per-backend coefficients."""

    coefficients: CostCoefficients = field(default=DEFAULT_COEFFICIENTS)

    @classmethod
    def for_backend(
        cls, backend_name: str, calibration: "CalibrationStore | None" = None
    ) -> "CostModel":
        """Seeded (and, when a store is given, calibrated) model."""
        if calibration is not None:
            return cls(coefficients=calibration.coefficients_for(backend_name))
        return cls(
            coefficients=SEEDED_COEFFICIENTS.get(
                backend_name, DEFAULT_COEFFICIENTS
            )
        )

    def predict_seconds(self, cost: PlanCost) -> float:
        return self.coefficients.predict_seconds(cost)


def hoeffding_epsilon(n: int, delta: float = HOEFFDING_DELTA) -> float:
    """Two-sided Hoeffding half-width for a mean of ``n`` [0, 1] samples."""
    if n <= 0:
        return float("inf")
    return math.sqrt(math.log(2.0 / delta) / (2.0 * n))


def choose_sample_fraction(
    n_rows: int,
    epsilon: float,
    candidates: "tuple[float, ...]" = SAMPLE_FRACTION_CANDIDATES,
) -> "float | None":
    """Smallest candidate fraction keeping the Hoeffding ε within budget.

    Returns None when no candidate's sampled size bounds the error at
    ``epsilon`` — the caller should then execute exactly.
    """
    best: "float | None" = None
    for fraction in sorted(candidates, reverse=True):
        if hoeffding_epsilon(int(n_rows * fraction)) <= epsilon:
            best = fraction
        else:
            break
    return best


def choose_parallelism(
    n_steps: int,
    per_step_seconds: float,
    max_workers: int,
    worker_overhead_seconds: float = 2e-3,
) -> int:
    """Worker count where per-step work amortizes the per-worker overhead.

    Parallelism only pays when each claimed worker saves more wall-clock
    than its dispatch overhead costs ("as the number of queries executed
    in parallel increases, performance degrades", §4): steps too cheap to
    amortize the overhead run sequentially.
    """
    if max_workers <= 1 or n_steps <= 1:
        return 1
    if per_step_seconds <= worker_overhead_seconds:
        return 1
    return max(1, min(max_workers, n_steps))
