"""Extraction of per-view series from shared query results.

Plan steps produce result tables whose shape depends on the combining
strategy (flag-partitioned, grouping-set, multi-dimensional rollup). This
module turns any of them back into per-view :class:`RawViewData` — the
"post-process results at the backend" the paper mentions — including the
partition merge that recovers the comparison view and the marginalization
that recovers single-dimension views from a rollup.

It also hosts the columnar side of the Execute→Score data plane:
:func:`blocks_from_raw` regroups extracted views by dimension attribute and
materializes one dense ``(views, groups)`` :class:`ViewBlock` per
attribute, computing each attribute's union key universe **once** instead
of re-deriving it per view — the representation
:meth:`repro.core.view_processor.ViewProcessor.score_batch` consumes.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.model.view import RawViewData, ViewBlock, ViewSpec
from repro.db.aggregates import Aggregate
from repro.db.table import Table
from repro.metrics.normalize import align_batch, canonical_key
from repro.optimizer.combine import (
    merge_aux_arrays,
    merge_fill_value,
    merge_spec,
)
from repro.util.errors import MetricError, QueryError

#: Name of the virtual target/comparison flag column in combined queries.
FLAG_NAME = "__seedb_flag"


def table_series(table: Table, key_column: str, value_column: str):
    """(keys, values) of a two-column view result, keys canonicalized."""
    keys = [canonical_key(k) for k in table.column(key_column)]
    return keys, np.asarray(table.column(value_column), dtype=np.float64)


def aux_arrays(table: Table, aggregates: tuple[Aggregate, ...]):
    """{alias: values} for the auxiliary aggregate columns of a result."""
    return {
        aggregate.alias: np.asarray(table.column(aggregate.alias), dtype=np.float64)
        for aggregate in aggregates
    }


def align_aux(
    keys_a: list,
    arrays_a: dict[str, np.ndarray],
    keys_b: list,
    arrays_b: dict[str, np.ndarray],
    aggregates: tuple[Aggregate, ...],
):
    """Align two partitions' aux arrays on the union of their group keys.

    Missing groups get each aggregate's neutral fill (0 for sums/counts,
    NaN for extrema). Returns ``(union_keys, aligned_a, aligned_b)``.
    """
    index_a = {key: i for i, key in enumerate(keys_a)}
    index_b = {key: i for i, key in enumerate(keys_b)}
    union = sorted(
        set(index_a) | set(index_b), key=lambda k: (type(k).__name__, k)
    )
    aligned_a: dict[str, np.ndarray] = {}
    aligned_b: dict[str, np.ndarray] = {}
    for aggregate in aggregates:
        fill = merge_fill_value(aggregate)
        values_a = arrays_a[aggregate.alias]
        values_b = arrays_b[aggregate.alias]
        aligned_a[aggregate.alias] = np.array(
            [values_a[index_a[k]] if k in index_a else fill for k in union]
        )
        aligned_b[aggregate.alias] = np.array(
            [values_b[index_b[k]] if k in index_b else fill for k in union]
        )
    return union, aligned_a, aligned_b


def dimension_keys(part: Table, dimension: "str | tuple[str, ...]") -> list:
    """Canonicalized group keys of a result partition.

    A single dimension yields scalar keys; a tuple of dimensions yields
    tuple keys over the attribute-value combinations (the multi-attribute
    generalization of §2).
    """
    if isinstance(dimension, tuple):
        columns = [part.column(name) for name in dimension]
        return [
            tuple(canonical_key(column[i]) for column in columns)
            for i in range(part.num_rows)
        ]
    return [canonical_key(k) for k in part.column(dimension)]


def raw_from_flag_table(
    result: Table,
    dimension: "str | tuple[str, ...]",
    views: tuple[ViewSpec, ...],
    flag_name: str = FLAG_NAME,
    merge: bool = True,
) -> dict[ViewSpec, RawViewData]:
    """Recover target and comparison series from a flag-combined result.

    ``result`` is grouped by ``(flag, dimension)`` with auxiliary
    aggregates. Target = flag=1 partition; comparison = merge of both
    partitions when ``merge`` (the comparison view covers the entire
    table, §2 — the ``table`` reference), or the flag=0 partition alone
    when ``merge=False`` (the ``complement`` reference: comparison over
    D ∖ D_Q). ``dimension`` may be a tuple of attribute names, in which
    case group keys are attribute-value tuples (multi-attribute views).
    """
    flags = np.asarray(result.column(flag_name))
    target_part = result.mask(flags == 1)
    rest_part = result.mask(flags == 0)

    all_aux = _all_aux(views)
    target_keys = dimension_keys(target_part, dimension)
    target_aux = aux_arrays(target_part, all_aux)
    rest_keys = dimension_keys(rest_part, dimension)
    rest_aux = aux_arrays(rest_part, all_aux)

    if merge:
        union, aligned_target, aligned_rest = align_aux(
            target_keys, target_aux, rest_keys, rest_aux, all_aux
        )
        comparison_aux = {
            aggregate.alias: merge_aux_arrays(
                aggregate,
                aligned_target[aggregate.alias],
                aligned_rest[aggregate.alias],
            )
            for aggregate in all_aux
        }
        comparison_keys = union
    else:
        comparison_aux = rest_aux
        comparison_keys = rest_keys

    extracted: dict[ViewSpec, RawViewData] = {}
    # One shared key-list object per side: views of one step alias the same
    # lists, which lets blocks_from_raw recognize the shared universe by
    # identity instead of re-canonicalizing keys per view.
    shared_target_keys = list(target_keys)
    shared_comparison_keys = list(comparison_keys)
    for view in views:
        spec = merge_spec(view.aggregate)
        extracted[view] = RawViewData(
            spec=view,
            target_keys=shared_target_keys,
            target_values=spec.reconstruct(target_aux),
            comparison_keys=shared_comparison_keys,
            comparison_values=spec.reconstruct(comparison_aux),
        )
    return extracted


def raw_from_separate_tables(
    target_result: Table,
    comparison_result: Table,
    dimension: str,
    views: tuple[ViewSpec, ...],
    use_aux: bool = False,
) -> dict[ViewSpec, RawViewData]:
    """Per-view series from separate target and comparison results.

    ``use_aux=True`` when the queries carried decomposed auxiliary
    aggregates (rollup plans); otherwise each view's own aggregate column
    is read directly.
    """
    extracted: dict[ViewSpec, RawViewData] = {}
    if use_aux:
        all_aux = _all_aux(views)
        target_keys = [canonical_key(k) for k in target_result.column(dimension)]
        comparison_keys = [
            canonical_key(k) for k in comparison_result.column(dimension)
        ]
        target_aux = aux_arrays(target_result, all_aux)
        comparison_aux = aux_arrays(comparison_result, all_aux)
        for view in views:
            spec = merge_spec(view.aggregate)
            extracted[view] = RawViewData(
                spec=view,
                target_keys=target_keys,
                target_values=spec.reconstruct(target_aux),
                comparison_keys=comparison_keys,
                comparison_values=spec.reconstruct(comparison_aux),
            )
        return extracted
    target_keys = [canonical_key(k) for k in target_result.column(dimension)]
    comparison_keys = [canonical_key(k) for k in comparison_result.column(dimension)]
    for view in views:
        extracted[view] = RawViewData(
            spec=view,
            target_keys=target_keys,
            target_values=np.asarray(
                target_result.column(view.aggregate.alias), dtype=np.float64
            ),
            comparison_keys=comparison_keys,
            comparison_values=np.asarray(
                comparison_result.column(view.aggregate.alias), dtype=np.float64
            ),
        )
    return extracted


def marginalize(
    result: Table,
    dimension: str,
    aggregates: tuple[Aggregate, ...],
    flag_name: "str | None" = None,
) -> Table:
    """Project a multi-dimensional rollup result onto one dimension.

    Groups the (small) result rows by ``dimension`` (and the flag, when
    present) and merges each auxiliary aggregate across the collapsed
    dimensions — additive aggregates sum, extrema take fmin/fmax. This is
    the backend post-processing step of the "Combine Multiple Group-bys"
    optimization.
    """
    from repro.db.groupby import factorize  # local import to avoid cycles
    from repro.db.schema import Schema

    group_columns = [dimension] if flag_name is None else [flag_name, dimension]
    code_parts = []
    cards = []
    for name in group_columns:
        codes, uniques = factorize(result.column(name))
        code_parts.append((codes, uniques))
        cards.append(len(uniques))
    combined = code_parts[0][0].astype(np.int64)
    for codes, uniques in code_parts[1:]:
        combined = combined * len(uniques) + codes
    unique_codes, first_index, compact = np.unique(
        combined, return_index=True, return_inverse=True
    )
    n_groups = len(unique_codes)

    arrays: dict[str, np.ndarray] = {
        name: result.column(name)[first_index] for name in group_columns
    }
    for aggregate in aggregates:
        values = np.asarray(result.column(aggregate.alias), dtype=np.float64)
        if aggregate.func in ("sum", "count", "countv", "sumsq"):
            mask = ~np.isnan(values)
            # bincount returns int64 for empty input; results are FLOAT.
            merged = np.bincount(
                compact[mask], weights=values[mask], minlength=n_groups
            ).astype(np.float64)
        elif aggregate.func in ("min", "max"):
            merged = np.full(n_groups, np.nan)
            ufunc = np.fmin if aggregate.func == "min" else np.fmax
            ufunc.at(merged, compact, values)
        else:
            raise QueryError(
                f"cannot marginalize non-distributive aggregate {aggregate.func!r}"
            )
        arrays[aggregate.alias] = merged

    specs = tuple(
        result.schema[name] for name in group_columns
    ) + tuple(result.schema[aggregate.alias] for aggregate in aggregates)
    return Table(f"{result.name}_marg_{dimension}", Schema(specs), arrays)


def blocks_from_raw(
    raw_views: "Mapping[ViewSpec, RawViewData] | Iterable[RawViewData]",
) -> list[ViewBlock]:
    """Regroup per-view series into dense per-attribute :class:`ViewBlock`\\ s.

    Views are bucketed by ``(dimension, target keys, comparison keys)`` —
    views extracted from the same shared query alias the same key-list
    objects, so the bucket key is usually resolved by identity without
    touching the keys at all. Each bucket's union key universe and
    key→column mapping are then computed once (:func:`align_batch`) and
    every member view's values are scattered into the block matrices in
    bulk, replacing the per-view dict merge + sorted-union work the scalar
    path performs ``n_views`` times.

    Scoring a block row-by-row yields bit-for-bit the same distributions
    and utilities as scoring each member's :class:`RawViewData` alone,
    because a bucket's key universe *is* each member's own key union.
    """
    if isinstance(raw_views, Mapping):
        raw_views = raw_views.values()
    key_memo: dict[int, tuple] = {}
    referents: list = []  # keep memoized key-list objects alive (id reuse)

    def canonical_tuple(keys) -> tuple:
        cached = key_memo.get(id(keys))
        if cached is None:
            cached = tuple(canonical_key(key) for key in keys)
            key_memo[id(keys)] = cached
            referents.append(keys)
        return cached

    buckets: dict[tuple, list[RawViewData]] = {}
    for raw in raw_views:
        dimension = getattr(raw.spec, "dimension", None)
        if dimension is None:
            dimension = tuple(raw.spec.dimensions)
        bucket_key = (
            dimension,
            canonical_tuple(raw.target_keys),
            canonical_tuple(raw.comparison_keys),
        )
        buckets.setdefault(bucket_key, []).append(raw)

    blocks: list[ViewBlock] = []
    for (dimension, target_keys, comparison_keys), members in buckets.items():
        target_matrix = _stack_values(members, "target", len(target_keys))
        comparison_matrix = _stack_values(
            members, "comparison", len(comparison_keys)
        )
        union, aligned_target, aligned_comparison = align_batch(
            target_keys, target_matrix, comparison_keys, comparison_matrix
        )
        blocks.append(
            ViewBlock(
                dimension=dimension,
                specs=tuple(raw.spec for raw in members),
                groups=union,
                target=aligned_target,
                comparison=aligned_comparison,
            )
        )
    return blocks


def _stack_values(
    members: list[RawViewData], side: str, n_keys: int
) -> np.ndarray:
    """Stack one side's value arrays into a ``(n_views, n_keys)`` matrix."""
    label = "first" if side == "target" else "second"
    matrix = np.empty((len(members), n_keys), dtype=np.float64)
    for row, raw in enumerate(members):
        values = np.asarray(getattr(raw, f"{side}_values"), dtype=np.float64)
        if values.ndim != 1:
            raise MetricError(
                f"{label} series values must be 1-D, got shape {values.shape}"
            )
        if values.shape[0] != n_keys:
            raise MetricError(
                f"{label} series: {n_keys} keys but {values.shape[0]} values"
            )
        matrix[row] = values
    return matrix


def _all_aux(views: tuple[ViewSpec, ...]) -> tuple[Aggregate, ...]:
    """Deduped auxiliary aggregates needed by ``views``."""
    from repro.optimizer.combine import dedup_aggregates

    collected: list[Aggregate] = []
    for view in views:
        collected.extend(merge_spec(view.aggregate).aux)
    return dedup_aggregates(collected)
