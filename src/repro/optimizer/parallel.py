"""Parallel plan execution (§3.3 "Parallel Query Execution").

"We observe that as the number of queries executed in parallel increases,
the total latency decreases at the cost of increased per query execution
time." Plan steps are independent by construction, so they map naturally
onto a thread pool. Per-step wall-clock latencies are recorded so
benchmark E11 can report exactly that total-vs-per-query trade-off.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.backends.base import Backend
from repro.model.view import RawViewData, ViewSpec
from repro.optimizer.plan import ExecutionPlan, ExecutionStep
from repro.util.errors import ConfigError


@dataclass
class ParallelRunReport:
    """Timing evidence from one parallel plan run."""

    n_workers: int
    total_seconds: float
    step_seconds: list[float] = field(default_factory=list)

    @property
    def mean_step_seconds(self) -> float:
        if not self.step_seconds:
            return 0.0
        return sum(self.step_seconds) / len(self.step_seconds)

    @property
    def max_step_seconds(self) -> float:
        return max(self.step_seconds, default=0.0)


class ParallelExecutor:
    """Runs plan steps concurrently on a thread pool.

    ``n_workers=1`` degenerates to sequential execution (the baseline the
    parallelism benchmark compares against).

    ``persistent=True`` keeps one thread pool alive across :meth:`run`
    calls instead of constructing and tearing one down per plan — the mode
    the :class:`~repro.engine.ExecutionEngine` uses so repeated
    recommendations in a session never pay pool startup cost. Call
    :meth:`close` (or use the executor as a context manager) to release
    the workers.
    """

    def __init__(self, n_workers: int = 4, persistent: bool = False):
        if n_workers < 1:
            raise ConfigError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = n_workers
        self.persistent = persistent
        self._pool: "ThreadPoolExecutor | None" = None
        #: run() invocations served by an already-warm persistent pool.
        self.pool_reuses = 0

    def run(
        self, plan: ExecutionPlan, backend: Backend
    ) -> tuple[dict[ViewSpec, RawViewData], ParallelRunReport]:
        """Execute ``plan``; returns extracted data and a timing report."""
        start = time.perf_counter()
        extracted: dict[ViewSpec, RawViewData] = {}
        step_seconds: list[float] = []

        if self.n_workers == 1 or len(plan.steps) <= 1:
            for step in plan.steps:
                result, elapsed = _timed_run(step, backend)
                extracted.update(result)
                step_seconds.append(elapsed)
        elif self.persistent:
            pool = self._ensure_pool()
            futures = [pool.submit(_timed_run, step, backend) for step in plan.steps]
            try:
                for future in futures:
                    result, elapsed = future.result()
                    extracted.update(result)
                    step_seconds.append(elapsed)
            except BaseException:
                # Match the per-run pool's guarantee (its `with` block joins
                # every worker before the exception escapes): no step may
                # still be touching the backend when the caller regains
                # control and possibly mutates tables.
                _drain(futures)
                raise
        else:
            with ThreadPoolExecutor(max_workers=self.n_workers) as pool:
                futures = [
                    pool.submit(_timed_run, step, backend) for step in plan.steps
                ]
                for future in futures:
                    result, elapsed = future.result()
                    extracted.update(result)
                    step_seconds.append(elapsed)

        report = ParallelRunReport(
            n_workers=self.n_workers,
            total_seconds=time.perf_counter() - start,
            step_seconds=step_seconds,
        )
        return extracted, report

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.n_workers)
        else:
            self.pool_reuses += 1
        return self._pool

    def close(self) -> None:
        """Shut down the persistent pool (no-op for per-run pools)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _timed_run(
    step: ExecutionStep, backend: Backend
) -> tuple[dict[ViewSpec, RawViewData], float]:
    start = time.perf_counter()
    result = step.run(backend)
    return result, time.perf_counter() - start


def _drain(futures) -> None:
    """Cancel what hasn't started and wait out what has, ignoring errors."""
    for future in futures:
        future.cancel()
    for future in futures:
        if not future.cancelled():
            try:
                future.exception()
            except Exception:
                pass
