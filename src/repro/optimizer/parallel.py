"""Parallel plan execution (§3.3 "Parallel Query Execution").

"We observe that as the number of queries executed in parallel increases,
the total latency decreases at the cost of increased per query execution
time." Plan steps are independent by construction, so they map naturally
onto a thread pool. Per-step wall-clock latencies are recorded so
benchmark E11 can report exactly that total-vs-per-query trade-off.

Two pooling modes exist:

* an executor-owned pool (``persistent=True`` or per-run) — the original
  single-session mode, still used by benchmarks that sweep pool sizes;
* the process-wide :class:`WorkerPool` (``pool=get_shared_pool()``) — one
  bounded thread pool shared by *every* engine in the process. Each run
  claims at most ``n_workers`` of its threads via a work-queue, so total
  DBMS concurrency stays bounded no matter how many sessions the service
  layer schedules at once.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.backends.base import Backend
from repro.model.view import RawViewData, ViewSpec
from repro.optimizer.plan import ExecutionPlan, ExecutionStep
from repro.util.deadline import cancel_scope, check_current, current_token
from repro.util.errors import ConfigError


@dataclass
class ParallelRunReport:
    """Timing evidence from one parallel plan run."""

    n_workers: int
    total_seconds: float
    step_seconds: list[float] = field(default_factory=list)

    @property
    def mean_step_seconds(self) -> float:
        if not self.step_seconds:
            return 0.0
        return sum(self.step_seconds) / len(self.step_seconds)

    @property
    def max_step_seconds(self) -> float:
        return max(self.step_seconds, default=0.0)


class WorkerPool:
    """A process-wide bounded thread pool shared by every engine.

    Engines do not own threads anymore — they borrow capacity from this
    pool, so total in-flight DBMS work is bounded by ``max_workers``
    regardless of how many sessions run concurrently. The underlying
    :class:`ThreadPoolExecutor` is created lazily and rebuilt transparently
    after :meth:`close` (a closed *shared* pool would otherwise poison
    every engine in the process).
    """

    def __init__(self, max_workers: int):
        if max_workers < 1:
            raise ConfigError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        self._lock = threading.Lock()
        self._pool: "ThreadPoolExecutor | None" = None  # guarded-by: _lock
        #: Tasks ever submitted (observability; exact under the lock).
        self.tasks_submitted = 0  # guarded-by: _lock

    @property
    def warm(self) -> bool:
        """Whether worker threads already exist."""
        with self._lock:
            return self._pool is not None

    def submit(self, fn, /, *args, **kwargs):
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="seedb-worker",
                )
            self.tasks_submitted += 1
            return self._pool.submit(fn, *args, **kwargs)

    def close(self) -> None:
        """Join and release all worker threads (pool revives on next use)."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def resize(self, max_workers: int) -> None:
        """Change the bound *in place*: drain current threads, adopt the
        new cap on next submit. In-place matters — every executor holds a
        reference to this pool, so replacing the object would leave them
        on the old bound."""
        if max_workers < 1:
            raise ConfigError(f"max_workers must be >= 1, got {max_workers}")
        with self._lock:
            pool, self._pool = self._pool, None
            self.max_workers = max_workers
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


#: Default process-wide concurrency bound: enough threads to overlap I/O
#: and GIL-releasing C work on every core, small enough not to thrash.
DEFAULT_MAX_TOTAL_WORKERS = max(4, min(32, (os.cpu_count() or 4) * 2))

_shared_pool: "WorkerPool | None" = None
_shared_pool_lock = threading.Lock()


def get_shared_pool() -> WorkerPool:
    """The process-wide :class:`WorkerPool`, created on first use."""
    global _shared_pool
    with _shared_pool_lock:
        if _shared_pool is None:
            _shared_pool = WorkerPool(DEFAULT_MAX_TOTAL_WORKERS)
        return _shared_pool


def configure_shared_pool(max_workers: int) -> WorkerPool:
    """Rebound the shared pool at ``max_workers``.

    Resizes the existing singleton in place (draining current threads
    first), so every engine and executor already holding it sees the new
    bound — nothing keeps running on a retired pool.
    """
    pool = get_shared_pool()
    pool.resize(max_workers)
    return pool


class ParallelExecutor:
    """Runs plan steps concurrently on a thread pool.

    ``n_workers=1`` degenerates to sequential execution (the baseline the
    parallelism benchmark compares against).

    ``persistent=True`` keeps one executor-owned thread pool alive across
    :meth:`run` calls instead of constructing and tearing one down per
    plan. Call :meth:`close` (or use the executor as a context manager) to
    release the workers.

    ``pool=`` borrows threads from a shared :class:`WorkerPool` instead of
    owning any: each run feeds its steps through a work-queue claiming at
    most ``n_workers`` pool threads, which is what lets one bounded pool
    serve many concurrent engines. Pool-backed executors are reentrant —
    concurrent :meth:`run` calls are safe — and ``close`` never touches
    the shared threads.
    """

    def __init__(
        self,
        n_workers: int = 4,
        persistent: bool = False,
        pool: "WorkerPool | None" = None,
    ):
        if n_workers < 1:
            raise ConfigError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = n_workers
        self.persistent = persistent
        self.shared_pool = pool
        self._pool: "ThreadPoolExecutor | None" = None
        self._pool_lock = threading.Lock()
        #: run() invocations served by an already-warm pool (own or shared).
        self.pool_reuses = 0

    def run(
        self, plan: ExecutionPlan, backend: Backend
    ) -> tuple[dict[ViewSpec, RawViewData], ParallelRunReport]:
        """Execute ``plan``; returns extracted data and a timing report."""
        start = time.perf_counter()
        extracted: dict[ViewSpec, RawViewData] = {}
        step_seconds: list[float] = []
        token = current_token()

        if self.n_workers == 1 or len(plan.steps) <= 1:
            for step in plan.steps:
                result, elapsed = _timed_run(step, backend)
                extracted.update(result)
                step_seconds.append(elapsed)
        elif self.shared_pool is not None:
            extracted, step_seconds = self._run_on_shared(plan, backend)
        elif self.persistent:
            pool = self._ensure_pool()
            futures = [
                pool.submit(_scoped_run, token, step, backend)
                for step in plan.steps
            ]
            try:
                for future in futures:
                    check_current()
                    result, elapsed = future.result()
                    extracted.update(result)
                    step_seconds.append(elapsed)
            except BaseException:
                # Match the per-run pool's guarantee (its `with` block joins
                # every worker before the exception escapes): no step may
                # still be touching the backend when the caller regains
                # control and possibly mutates tables.
                _drain(futures)
                raise
        else:
            with ThreadPoolExecutor(max_workers=self.n_workers) as pool:
                futures = [
                    pool.submit(_scoped_run, token, step, backend)
                    for step in plan.steps
                ]
                # On cancellation the with-block still joins every worker;
                # each aborts at its next backend checkpoint (same token).
                for future in futures:
                    check_current()
                    result, elapsed = future.result()
                    extracted.update(result)
                    step_seconds.append(elapsed)

        report = ParallelRunReport(
            n_workers=self.n_workers,
            total_seconds=time.perf_counter() - start,
            step_seconds=step_seconds,
        )
        return extracted, report

    def _run_on_shared(
        self, plan: ExecutionPlan, backend: Backend
    ) -> tuple[dict[ViewSpec, RawViewData], list[float]]:
        """Work-queue execution on the shared pool.

        ``min(n_workers, len(steps))`` claimer tasks pull step indices from
        a shared counter, bounding this run's concurrency without blocking
        pool threads on a semaphore. A step failure stops claimers from
        pulling further work; every claimed step finishes before the first
        exception propagates (same join-before-raise guarantee as the
        owned-pool modes).
        """
        steps = plan.steps
        if self.shared_pool.warm:
            with self._pool_lock:
                self.pool_reuses += 1
        token = current_token()
        next_index = 0
        index_lock = threading.Lock()
        results: list = [None] * len(steps)
        failures: list[BaseException] = []

        def claim() -> None:
            nonlocal next_index
            while True:
                if token is not None and token.should_stop():
                    return  # cancelled run: stop claiming, keep nothing held
                with index_lock:
                    if failures or next_index >= len(steps):
                        return
                    index = next_index
                    next_index += 1
                try:
                    results[index] = _scoped_run(token, steps[index], backend)
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    with index_lock:
                        failures.append(exc)
                    return

        claimers = [
            self.shared_pool.submit(claim)
            for _ in range(min(self.n_workers, len(steps)))
        ]
        # Join-before-raise: every claimer must finish before a failure (or
        # cancellation, which claim() observes per step) propagates — so
        # this drain stays unconditional rather than checkpointed.
        # seedb-lint: disable=cancellation -- claim() checks the token per step; this join is bounded by it
        for future in claimers:
            future.result()
        # A cancel observed by claim() *between* steps leaves no failure
        # behind; re-raise it here rather than returning partial results.
        check_current()
        if failures:
            raise failures[0]

        extracted: dict[ViewSpec, RawViewData] = {}
        step_seconds: list[float] = []
        for outcome in results:
            if outcome is None:  # unclaimed trailing steps after a failure
                continue
            result, elapsed = outcome
            extracted.update(result)
            step_seconds.append(elapsed)
        return extracted, step_seconds

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(max_workers=self.n_workers)
            else:
                self.pool_reuses += 1
            return self._pool

    def close(self) -> None:
        """Shut down an owned persistent pool (shared pools are not ours)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _timed_run(
    step: ExecutionStep, backend: Backend
) -> tuple[dict[ViewSpec, RawViewData], float]:
    start = time.perf_counter()
    result = step.run(backend)
    return result, time.perf_counter() - start


def _scoped_run(
    token, step: ExecutionStep, backend: Backend
) -> tuple[dict[ViewSpec, RawViewData], float]:
    """Run one step on a pool thread under the submitter's cancel token.

    Thread-local cancel scopes do not cross thread boundaries on their
    own; without this re-install the backend's per-statement checkpoints
    would never see a cancelled request from a parallel plan.
    """
    with cancel_scope(token):
        return _timed_run(step, backend)


def _drain(futures) -> None:
    """Cancel what hasn't started and wait out what has, ignoring errors."""
    for future in futures:
        future.cancel()
    for future in futures:
        if not future.cancelled():
            try:
                future.exception()
            except Exception:
                pass
