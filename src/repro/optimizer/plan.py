"""Execution plans: how view queries are combined and executed.

The Planner maps candidate views + optimizer toggles onto a list of
:class:`ExecutionStep` objects. Each step knows its logical queries and how
to extract per-view raw series from their results. Step types, from no
sharing to maximal sharing:

* :class:`SeparateStep` — target and comparison as two queries (basic
  framework; with aggregate-combining the group still shares one pair).
* :class:`FlagStep` — one query ``GROUP BY (flag, a)`` serving both sides.
* :class:`MultiDimStep` — several dimensions in one GROUPING SETS query
  (shared scan where the backend supports it).
* :class:`RollupStep` — several dimensions in one multi-attribute group-by,
  marginalized in post-processing; dimension sets chosen by bin-packing
  under the working-memory budget.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.backends.base import Backend, BackendCapabilities
from repro.model.reference import TABLE_REFERENCE, ResolvedReference
from repro.model.view import RawViewData, ViewSpec
from repro.db.aggregates import Aggregate
from repro.db.expressions import Expression, TruePredicate
from repro.db.query import AggregateQuery, FlagColumn, GroupingSetsQuery
from repro.optimizer.binpack import pack_dimensions
from repro.util.deadline import check_current
from repro.optimizer.combine import dedup_aggregates, merge_spec
from repro.optimizer.extract import (
    FLAG_NAME,
    marginalize,
    raw_from_flag_table,
    raw_from_separate_tables,
)
from repro.util.errors import ConfigError


@dataclass(frozen=True)
class ViewGroup:
    """Views sharing one group-by dimension (the unit of aggregate combining)."""

    dimension: str
    views: tuple[ViewSpec, ...]

    def __post_init__(self) -> None:
        if not self.views:
            raise ConfigError("a view group needs at least one view")
        for view in self.views:
            if view.dimension != self.dimension:
                raise ConfigError(
                    f"view {view.label!r} does not group by {self.dimension!r}"
                )

    @property
    def direct_aggregates(self) -> tuple[Aggregate, ...]:
        """The views' own aggregates, deduped (for separate-query plans)."""
        return dedup_aggregates([view.aggregate for view in self.views])

    @property
    def aux_aggregates(self) -> tuple[Aggregate, ...]:
        """Decomposed mergeable aggregates, deduped (for shared plans)."""
        collected: list[Aggregate] = []
        for view in self.views:
            collected.extend(merge_spec(view.aggregate).aux)
        return dedup_aggregates(collected)


class ExecutionStep:
    """One unit of plan execution (independent of any other step)."""

    table: str

    @property
    def views(self) -> tuple[ViewSpec, ...]:
        raise NotImplementedError

    def queries(self) -> list:
        """The logical queries this step will issue (for costing/tests)."""
        raise NotImplementedError

    def run(self, backend: Backend) -> dict[ViewSpec, RawViewData]:
        """Execute against ``backend`` and extract per-view raw series."""
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


@dataclass
class SeparateStep(ExecutionStep):
    """Target and comparison view queries executed independently.

    The comparison query's row set is the step's reference: the whole
    table (predicate None, §2), the target's complement, or an arbitrary
    second selection (query-vs-query).
    """

    table: str
    predicate: "Expression | None"
    group: ViewGroup
    reference: ResolvedReference = TABLE_REFERENCE

    @property
    def views(self) -> tuple[ViewSpec, ...]:
        return self.group.views

    def queries(self) -> list:
        aggregates = self.group.direct_aggregates
        return [
            AggregateQuery(
                self.table, (self.group.dimension,), aggregates, self.predicate
            ),
            AggregateQuery(
                self.table,
                (self.group.dimension,),
                aggregates,
                self.reference.predicate,
            ),
        ]

    def run(self, backend: Backend) -> dict[ViewSpec, RawViewData]:
        target_query, comparison_query = self.queries()
        target_result = backend.execute(target_query)
        comparison_result = backend.execute(comparison_query)
        return raw_from_separate_tables(
            target_result, comparison_result, self.group.dimension, self.group.views
        )

    def describe(self) -> str:
        return (
            f"separate[{self.group.dimension}: "
            f"{len(self.group.views)} view(s), 2 queries]"
        )


@dataclass
class FlagStep(ExecutionStep):
    """One combined query ``GROUP BY (flag, a)`` for target + comparison.

    Only flag-combinable references run through this step: ``table``
    merges both partitions into the comparison, ``complement`` takes the
    flag=0 partition alone.
    """

    table: str
    predicate: "Expression | None"
    group: ViewGroup
    reference: ResolvedReference = TABLE_REFERENCE

    @property
    def views(self) -> tuple[ViewSpec, ...]:
        return self.group.views

    def _flag(self) -> FlagColumn:
        predicate = self.predicate if self.predicate is not None else TruePredicate()
        return FlagColumn(FLAG_NAME, predicate)

    def queries(self) -> list:
        return [
            AggregateQuery(
                self.table,
                (self._flag(), self.group.dimension),
                self.group.aux_aggregates,
                None,
            )
        ]

    def run(self, backend: Backend) -> dict[ViewSpec, RawViewData]:
        (query,) = self.queries()
        result = backend.execute(query)
        return raw_from_flag_table(
            result,
            self.group.dimension,
            self.group.views,
            merge=self.reference.merge_partitions,
        )

    def describe(self) -> str:
        return (
            f"flag[{self.group.dimension}: "
            f"{len(self.group.views)} view(s), 1 query]"
        )


@dataclass
class MultiFlagStep(ExecutionStep):
    """One flag-combined query grouped by a *tuple* of dimensions.

    The execution unit of the multi-attribute generalization (§2): all
    views sharing one dimension combination run as a single
    ``GROUP BY (flag, a1, ..., ak)`` query whose result is post-processed
    into per-view tuple-keyed series. Views are duck-typed — any spec with
    ``aggregate`` and a matching ``dimensions`` tuple works.
    """

    table: str
    predicate: "Expression | None"
    dimensions: tuple[str, ...]
    view_specs: tuple
    reference: ResolvedReference = TABLE_REFERENCE

    def __post_init__(self) -> None:
        if not self.view_specs:
            raise ConfigError("a multi-dimension step needs at least one view")
        for view in self.view_specs:
            if tuple(view.dimensions) != self.dimensions:
                raise ConfigError(
                    f"view {view.label!r} does not group by {self.dimensions!r}"
                )

    @property
    def views(self) -> tuple:
        return self.view_specs

    def _aggregates(self) -> tuple[Aggregate, ...]:
        collected: list[Aggregate] = []
        for view in self.view_specs:
            collected.extend(merge_spec(view.aggregate).aux)
        return dedup_aggregates(collected)

    def queries(self) -> list:
        predicate = self.predicate if self.predicate is not None else TruePredicate()
        flag = FlagColumn(FLAG_NAME, predicate)
        return [
            AggregateQuery(
                self.table, (flag,) + self.dimensions, self._aggregates(), None
            )
        ]

    def run(self, backend: Backend) -> dict[ViewSpec, RawViewData]:
        (query,) = self.queries()
        result = backend.execute(query)
        return raw_from_flag_table(
            result,
            self.dimensions,
            self.view_specs,
            merge=self.reference.merge_partitions,
        )

    def describe(self) -> str:
        return (
            f"multi_flag[{list(self.dimensions)}: "
            f"{len(self.view_specs)} view(s), 1 query]"
        )


@dataclass
class MultiDimStep(ExecutionStep):
    """Several dimensions per query via GROUPING SETS."""

    table: str
    predicate: "Expression | None"
    groups: tuple[ViewGroup, ...]
    combine_flag: bool
    reference: ResolvedReference = TABLE_REFERENCE

    @property
    def views(self) -> tuple[ViewSpec, ...]:
        return tuple(view for group in self.groups for view in group.views)

    def _flag(self) -> FlagColumn:
        predicate = self.predicate if self.predicate is not None else TruePredicate()
        return FlagColumn(FLAG_NAME, predicate)

    def _aggregates(self) -> tuple[Aggregate, ...]:
        collected: list[Aggregate] = []
        for group in self.groups:
            collected.extend(
                group.aux_aggregates if self.combine_flag else group.direct_aggregates
            )
        return dedup_aggregates(collected)

    def queries(self) -> list:
        aggregates = self._aggregates()
        if self.combine_flag:
            flag = self._flag()
            sets = tuple((flag, group.dimension) for group in self.groups)
            return [GroupingSetsQuery(self.table, sets, aggregates, None)]
        sets = tuple((group.dimension,) for group in self.groups)
        return [
            GroupingSetsQuery(self.table, sets, aggregates, self.predicate),
            GroupingSetsQuery(
                self.table, sets, aggregates, self.reference.predicate
            ),
        ]

    def run(self, backend: Backend) -> dict[ViewSpec, RawViewData]:
        extracted: dict[ViewSpec, RawViewData] = {}
        if self.combine_flag:
            (query,) = self.queries()
            results = backend.execute_grouping_sets(query)
            for group, result in zip(self.groups, results):
                extracted.update(
                    raw_from_flag_table(
                        result,
                        group.dimension,
                        group.views,
                        merge=self.reference.merge_partitions,
                    )
                )
            return extracted
        target_query, comparison_query = self.queries()
        target_results = backend.execute_grouping_sets(target_query)
        comparison_results = backend.execute_grouping_sets(comparison_query)
        for group, target_result, comparison_result in zip(
            self.groups, target_results, comparison_results
        ):
            extracted.update(
                raw_from_separate_tables(
                    target_result, comparison_result, group.dimension, group.views
                )
            )
        return extracted

    def describe(self) -> str:
        dimensions = [group.dimension for group in self.groups]
        n_queries = 1 if self.combine_flag else 2
        return f"grouping_sets[{dimensions}, {n_queries} query(ies)]"


@dataclass
class RollupStep(ExecutionStep):
    """One multi-attribute group-by, marginalized per dimension afterwards."""

    table: str
    predicate: "Expression | None"
    groups: tuple[ViewGroup, ...]
    combine_flag: bool
    reference: ResolvedReference = TABLE_REFERENCE

    @property
    def views(self) -> tuple[ViewSpec, ...]:
        return tuple(view for group in self.groups for view in group.views)

    def _flag(self) -> FlagColumn:
        predicate = self.predicate if self.predicate is not None else TruePredicate()
        return FlagColumn(FLAG_NAME, predicate)

    def _aggregates(self) -> tuple[Aggregate, ...]:
        collected: list[Aggregate] = []
        for group in self.groups:
            collected.extend(group.aux_aggregates)
        return dedup_aggregates(collected)

    def _dimensions(self) -> tuple[str, ...]:
        return tuple(group.dimension for group in self.groups)

    def queries(self) -> list:
        aggregates = self._aggregates()
        if self.combine_flag:
            group_by = (self._flag(),) + self._dimensions()
            return [AggregateQuery(self.table, group_by, aggregates, None)]
        return [
            AggregateQuery(self.table, self._dimensions(), aggregates, self.predicate),
            AggregateQuery(
                self.table,
                self._dimensions(),
                aggregates,
                self.reference.predicate,
            ),
        ]

    def run(self, backend: Backend) -> dict[ViewSpec, RawViewData]:
        aggregates = self._aggregates()
        extracted: dict[ViewSpec, RawViewData] = {}
        if self.combine_flag:
            (query,) = self.queries()
            rollup = backend.execute(query)
            for group in self.groups:
                marginal = marginalize(
                    rollup, group.dimension, aggregates, flag_name=FLAG_NAME
                )
                extracted.update(
                    raw_from_flag_table(
                        marginal,
                        group.dimension,
                        group.views,
                        merge=self.reference.merge_partitions,
                    )
                )
            return extracted
        target_query, comparison_query = self.queries()
        target_rollup = backend.execute(target_query)
        comparison_rollup = backend.execute(comparison_query)
        for group in self.groups:
            target_marginal = marginalize(target_rollup, group.dimension, aggregates)
            comparison_marginal = marginalize(
                comparison_rollup, group.dimension, aggregates
            )
            extracted.update(
                raw_from_separate_tables(
                    target_marginal,
                    comparison_marginal,
                    group.dimension,
                    group.views,
                    use_aux=True,
                )
            )
        return extracted

    def describe(self) -> str:
        n_queries = 1 if self.combine_flag else 2
        return f"rollup[{list(self._dimensions())}, {n_queries} query(ies)]"


@dataclass
class ExecutionPlan:
    """An ordered list of independent steps covering every candidate view."""

    steps: list[ExecutionStep]

    @property
    def views(self) -> tuple[ViewSpec, ...]:
        return tuple(view for step in self.steps for view in step.views)

    def total_queries(self) -> int:
        """DBMS round trips the plan will issue (grouping-sets fallback on
        backends without native support may add more — see cost model)."""
        return sum(len(step.queries()) for step in self.steps)

    def run(self, backend: Backend) -> dict[ViewSpec, RawViewData]:
        """Execute all steps sequentially."""
        extracted: dict[ViewSpec, RawViewData] = {}
        for step in self.steps:
            # Per-step checkpoint: abort a cancelled multi-step plan at a
            # step boundary even when the backend has no finer-grained one.
            check_current()
            extracted.update(step.run(backend))
        return extracted

    def describe(self) -> str:
        lines = [f"plan: {len(self.steps)} step(s), {self.total_queries()} query(ies)"]
        lines.extend(f"  {step.describe()}" for step in self.steps)
        return "\n".join(lines)


class GroupByCombining(enum.Enum):
    """Strategy for the "Combine Multiple Group-bys" optimization."""

    NONE = "none"
    GROUPING_SETS = "grouping_sets"
    ROLLUP = "rollup"
    AUTO = "auto"  # grouping sets if the backend supports them, else rollup


def resolve_auto_mode(
    mode: GroupByCombining, capabilities: BackendCapabilities
) -> GroupByCombining:
    """The static capability-declared resolution of ``AUTO``.

    This is the PR-5 planner's whole decision procedure: shared-scan
    GROUPING SETS iff the backend declares them, rollup otherwise. The
    cost-based planner (:class:`repro.engine.phases.CostBasedPlanner`)
    supersedes it for ``AUTO`` configs, but keeps it as the deterministic
    tie-break (equal predicted cost → today's choice) and as the fallback
    when ``config.cost_based_planning`` is off.
    """
    if mode is not GroupByCombining.AUTO:
        return mode
    return (
        GroupByCombining.GROUPING_SETS
        if capabilities.grouping_sets
        else GroupByCombining.ROLLUP
    )


@dataclass
class PlannerConfig:
    """Optimizer toggles — the demo Scenario 2 "knobs" (§4)."""

    combine_target_comparison: bool = True
    combine_aggregates: bool = True
    groupby_combining: GroupByCombining = GroupByCombining.NONE
    #: Rollup working-memory budget: max result groups per rollup query.
    memory_budget_cells: int = 100_000
    #: Upper bound on dimensions per combined query (keeps post-processing
    #: and GROUPING SETS statements manageable).
    max_dims_per_query: int = 8
    #: Use the exact bin-packing solver up to this many dimensions.
    binpack_exact_threshold: int = 12

    def __post_init__(self) -> None:
        if self.memory_budget_cells < 2:
            raise ConfigError("memory_budget_cells must be >= 2")
        if self.max_dims_per_query < 1:
            raise ConfigError("max_dims_per_query must be >= 1")


class Planner:
    """Builds an :class:`ExecutionPlan` from views and optimizer toggles."""

    def __init__(self, config: "PlannerConfig | None" = None):
        self.config = config if config is not None else PlannerConfig()

    def plan(
        self,
        views: list[ViewSpec],
        table: str,
        predicate: "Expression | None",
        cardinalities: dict[str, int],
        capabilities: BackendCapabilities,
        reference: "ResolvedReference | None" = None,
    ) -> ExecutionPlan:
        """Plan execution of ``views`` against ``table``.

        ``cardinalities`` (dimension -> distinct count) comes from the
        metadata collector and drives bin-packing; a dimension missing from
        it is conservatively treated as too large to share a rollup.
        ``reference`` selects the comparison row set (defaults to the whole
        table); a non-flag-combinable reference (query-vs-query) forces
        separate target/comparison queries even when target/comparison
        combining is enabled — one 0/1 flag cannot partition two possibly
        overlapping selections.
        """
        if not views:
            return ExecutionPlan(steps=[])
        if reference is None:
            reference = TABLE_REFERENCE
        config = self.config
        combine_flag = config.combine_target_comparison and reference.flag_combinable
        mode = resolve_auto_mode(config.groupby_combining, capabilities)

        # Group-by combining subsumes aggregate combining within its merged
        # queries (a shared query necessarily carries all the aggregates).
        by_dimension = config.combine_aggregates or mode is not GroupByCombining.NONE
        groups = self._group_views(views, by_dimension)

        if mode is GroupByCombining.NONE:
            return ExecutionPlan(
                steps=[
                    self._single_group_step(
                        g, table, predicate, reference, combine_flag
                    )
                    for g in groups
                ]
            )

        if mode is GroupByCombining.GROUPING_SETS:
            steps: list[ExecutionStep] = []
            for chunk in _chunks(groups, config.max_dims_per_query):
                if len(chunk) == 1:
                    steps.append(
                        self._single_group_step(
                            chunk[0], table, predicate, reference, combine_flag
                        )
                    )
                else:
                    steps.append(
                        MultiDimStep(
                            table=table,
                            predicate=predicate,
                            groups=tuple(chunk),
                            combine_flag=combine_flag,
                            reference=reference,
                        )
                    )
            return ExecutionPlan(steps=steps)

        # ROLLUP: bin-pack dimensions under the memory budget. The flag
        # column doubles the group count, so halve the budget when combined.
        budget = config.memory_budget_cells
        if combine_flag:
            budget = max(budget // 2, 2)
        group_by_dimension = {group.dimension: group for group in groups}
        packing_cards = {
            dimension: cardinalities.get(dimension, budget + 1)
            for dimension in group_by_dimension
        }
        packed = pack_dimensions(
            packing_cards,
            budget_cells=budget,
            max_dims_per_bin=config.max_dims_per_query,
            exact_threshold=config.binpack_exact_threshold,
        )
        steps = []
        for bin_members in packed.bins:
            bin_groups = tuple(group_by_dimension[name] for name in bin_members)
            if len(bin_groups) == 1:
                steps.append(
                    self._single_group_step(
                        bin_groups[0], table, predicate, reference, combine_flag
                    )
                )
            else:
                steps.append(
                    RollupStep(
                        table=table,
                        predicate=predicate,
                        groups=bin_groups,
                        combine_flag=combine_flag,
                        reference=reference,
                    )
                )
        return ExecutionPlan(steps=steps)

    def _single_group_step(
        self,
        group: ViewGroup,
        table: str,
        predicate: "Expression | None",
        reference: ResolvedReference = TABLE_REFERENCE,
        combine_flag: "bool | None" = None,
    ) -> ExecutionStep:
        if combine_flag is None:
            combine_flag = (
                self.config.combine_target_comparison and reference.flag_combinable
            )
        if combine_flag:
            return FlagStep(
                table=table, predicate=predicate, group=group, reference=reference
            )
        return SeparateStep(
            table=table, predicate=predicate, group=group, reference=reference
        )

    @staticmethod
    def _group_views(views: list[ViewSpec], by_dimension: bool) -> list[ViewGroup]:
        if not by_dimension:
            return [ViewGroup(view.dimension, (view,)) for view in views]
        grouped: dict[str, list[ViewSpec]] = {}
        for view in views:
            grouped.setdefault(view.dimension, []).append(view)
        return [
            ViewGroup(dimension, tuple(members))
            for dimension, members in grouped.items()
        ]


def _chunks(items: list, size: int) -> list[list]:
    return [items[i : i + size] for i in range(0, len(items), size)]
