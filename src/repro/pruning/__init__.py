"""View-space pruning (§3.3 "View Space Pruning").

"In practice, most views for any query Q have low utility ... SEEDB uses
this property to aggressively prune view queries that are unlikely to have
high utility," based purely on table metadata — no view query is executed.
Rules are composable via :class:`PruningPipeline` and each emits a
:class:`PruneReport` recording what it removed and why (surfaced to the
demo frontend as the "bad views" explanation).
"""

from repro.pruning.base import PruneReport, PruningRule
from repro.pruning.variance import VariancePruner, CardinalityPruner
from repro.pruning.correlation import CorrelationPruner, cluster_dimensions
from repro.pruning.access_frequency import AccessFrequencyPruner
from repro.pruning.pipeline import PruningPipeline

__all__ = [
    "PruneReport",
    "PruningRule",
    "VariancePruner",
    "CardinalityPruner",
    "CorrelationPruner",
    "cluster_dimensions",
    "AccessFrequencyPruner",
    "PruningPipeline",
]
