"""Access-frequency-based pruning (§3.3).

"SEEDB tracks access patterns for each table to identify the most
frequently accessed columns ... and uses this information to prune
attributes that are rarely accessed and are thus likely to be unimportant."

Frequencies come from the :class:`~repro.metadata.access_log.AccessLog`.
A cold-start guard keeps the rule inert until enough history exists —
otherwise the first query of a session would see every attribute pruned.
"""

from __future__ import annotations

from repro.model.view import ViewSpec
from repro.metadata.collector import TableMetadata
from repro.pruning.base import PruningRule
from repro.util.errors import PruningError


class AccessFrequencyPruner(PruningRule):
    """Prunes views over rarely-accessed dimensions/measures.

    ``min_frequency`` is relative to the most-accessed column of the table
    (1.0 = as popular as the hottest column). ``min_history`` is the number
    of recorded queries below which the rule keeps everything.
    """

    name = "access_frequency"

    def __init__(self, min_frequency: float = 0.1, min_history: int = 10):
        if not (0.0 <= min_frequency <= 1.0):
            raise PruningError(f"min_frequency must be in [0, 1], got {min_frequency}")
        if min_history < 0:
            raise PruningError("min_history must be >= 0")
        self.min_frequency = min_frequency
        self.min_history = min_history

    def reason_to_prune(self, view: ViewSpec, metadata: TableMetadata) -> str | None:
        log = metadata.access_log
        if log.queries_recorded < self.min_history:
            return None
        table = metadata.stats.table_name
        for attribute in filter(None, (view.dimension, view.measure)):
            frequency = log.frequency(table, attribute)
            if frequency < self.min_frequency:
                return (
                    f"attribute {attribute!r} access frequency "
                    f"{frequency:.3f} < {self.min_frequency}"
                )
        return None
