"""Pruning-rule interface and report structure."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.model.view import ViewSpec
from repro.metadata.collector import TableMetadata


@dataclass
class PruneReport:
    """What one rule removed, with a human-readable reason per view."""

    rule: str
    examined: int = 0
    pruned: list[tuple[ViewSpec, str]] = field(default_factory=list)

    @property
    def n_pruned(self) -> int:
        return len(self.pruned)

    @property
    def n_kept(self) -> int:
        return self.examined - self.n_pruned

    def summary(self) -> str:
        return f"{self.rule}: pruned {self.n_pruned}/{self.examined} views"


class PruningRule:
    """Base class: decide per view whether to keep it.

    Subclasses implement :meth:`reason_to_prune`, returning ``None`` to keep
    a view or a string explaining the prune. Rules may override
    :meth:`prepare` to compute per-table state once (e.g. dimension
    clusters) before individual views are tested.
    """

    #: Registry/report name; subclasses must override.
    name: str = ""

    def prepare(self, views: list[ViewSpec], metadata: TableMetadata) -> None:
        """Hook called once per apply() with the full candidate list."""

    def reason_to_prune(self, view: ViewSpec, metadata: TableMetadata) -> str | None:
        raise NotImplementedError

    def apply(
        self, views: list[ViewSpec], metadata: TableMetadata
    ) -> tuple[list[ViewSpec], PruneReport]:
        """Split ``views`` into kept and pruned-with-reason."""
        self.prepare(views, metadata)
        report = PruneReport(rule=self.name, examined=len(views))
        kept: list[ViewSpec] = []
        for view in views:
            reason = self.reason_to_prune(view, metadata)
            if reason is None:
                kept.append(view)
            else:
                report.pruned.append((view, reason))
        return kept, report
