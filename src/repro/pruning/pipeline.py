"""Composable pruning pipeline."""

from __future__ import annotations

from typing import Sequence

from repro.model.view import ViewSpec
from repro.metadata.collector import TableMetadata
from repro.pruning.base import PruneReport, PruningRule


class PruningPipeline:
    """Applies pruning rules in sequence, accumulating reports.

    Order matters and mirrors cost: cheap statistic checks (variance,
    cardinality) run before clustering; access-frequency runs last so its
    frequency cutoff sees only still-viable views.
    """

    def __init__(self, rules: Sequence[PruningRule]):
        self.rules = list(rules)

    def apply(
        self, views: list[ViewSpec], metadata: TableMetadata
    ) -> tuple[list[ViewSpec], list[PruneReport]]:
        """Run every rule; return surviving views and one report per rule."""
        reports: list[PruneReport] = []
        surviving = list(views)
        for rule in self.rules:
            surviving, report = rule.apply(surviving, metadata)
            reports.append(report)
        return surviving, reports

    @staticmethod
    def total_pruned(reports: Sequence[PruneReport]) -> int:
        """Total views removed across all reports."""
        return sum(report.n_pruned for report in reports)

    def __repr__(self) -> str:
        return f"PruningPipeline({[rule.name for rule in self.rules]})"
