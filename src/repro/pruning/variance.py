"""Variance-based pruning (§3.3).

"Dimension attributes with low variance are likely to produce views having
low utility (e.g. consider the extreme case where an attribute only takes a
single value)." For categorical dimensions the meaningful notion of spread
is the *entropy* of the value distribution (share variance is misleading:
a constant column has high share variance); for numeric dimensions plain
variance applies as well. Both are available from column stats, so pruning
costs no data scan.
"""

from __future__ import annotations

from repro.model.view import ViewSpec
from repro.metadata.collector import TableMetadata
from repro.pruning.base import PruningRule
from repro.util.errors import PruningError


class VariancePruner(PruningRule):
    """Prunes views whose grouping attribute has (near-)zero spread."""

    name = "variance"

    def __init__(
        self,
        min_entropy_bits: float = 0.05,
        min_numeric_variance: float = 0.0,
    ):
        if min_entropy_bits < 0:
            raise PruningError("min_entropy_bits must be >= 0")
        if min_numeric_variance < 0:
            raise PruningError("min_numeric_variance must be >= 0")
        self.min_entropy_bits = min_entropy_bits
        self.min_numeric_variance = min_numeric_variance

    def reason_to_prune(self, view: ViewSpec, metadata: TableMetadata) -> str | None:
        stats = metadata.stats[view.dimension]
        if stats.is_constant:
            return f"dimension {view.dimension!r} is constant"
        if stats.entropy < self.min_entropy_bits:
            return (
                f"dimension {view.dimension!r} entropy "
                f"{stats.entropy:.4f} < {self.min_entropy_bits}"
            )
        if (
            stats.dtype.is_numeric
            and self.min_numeric_variance > 0
            and stats.variance < self.min_numeric_variance
        ):
            return (
                f"dimension {view.dimension!r} variance "
                f"{stats.variance:.4g} < {self.min_numeric_variance}"
            )
        return None


class CardinalityPruner(PruningRule):
    """Prunes views whose dimension has too few or too many groups.

    An extension the SeeDB prototype applied in practice: a one-group view
    carries no trend, and a view with thousands of bars is not a usable
    visualization (and its query is the most expensive of all). Bounds are
    configurable; ``max_groups=None`` disables the upper bound.
    """

    name = "cardinality"

    def __init__(self, min_groups: int = 2, max_groups: "int | None" = 250):
        if min_groups < 1:
            raise PruningError("min_groups must be >= 1")
        if max_groups is not None and max_groups < min_groups:
            raise PruningError("max_groups must be >= min_groups")
        self.min_groups = min_groups
        self.max_groups = max_groups

    def reason_to_prune(self, view: ViewSpec, metadata: TableMetadata) -> str | None:
        n_distinct = metadata.stats[view.dimension].n_distinct
        if n_distinct < self.min_groups:
            return (
                f"dimension {view.dimension!r} has {n_distinct} group(s) "
                f"< {self.min_groups}"
            )
        if self.max_groups is not None and n_distinct > self.max_groups:
            return (
                f"dimension {view.dimension!r} has {n_distinct} groups "
                f"> {self.max_groups} (unvisualizable)"
            )
        return None
