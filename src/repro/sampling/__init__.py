"""Sampling (§3.3 "Sampling").

"For datasets of large size ... we construct a sample of the dataset that
can fit in memory and run all view queries against the sample. However, the
sampling technique and size of the sample both affect view accuracy."

Three samplers (Bernoulli, reservoir, stratified) and the accuracy toolkit
that quantifies exactly that trade-off (top-k precision, Kendall's tau,
per-view utility error) — used by benchmark E10.
"""

from repro.sampling.base import Sampler
from repro.sampling.bernoulli import BernoulliSampler
from repro.sampling.reservoir import ReservoirSampler, reservoir_indices
from repro.sampling.stratified import StratifiedSampler
from repro.sampling.accuracy import (
    kendall_tau,
    ranking_from_utilities,
    topk_precision,
    utility_errors,
)

__all__ = [
    "Sampler",
    "BernoulliSampler",
    "ReservoirSampler",
    "reservoir_indices",
    "StratifiedSampler",
    "kendall_tau",
    "ranking_from_utilities",
    "topk_precision",
    "utility_errors",
]
