"""Accuracy of sample-based recommendations vs. ground truth.

The demo's Scenario 2 lets attendees "observe the effect on response times
and accuracy" of the sampling optimization. These are the accuracy
measures: per-view utility error, precision of the top-k set, and rank
correlation (Kendall's tau) over the whole view space.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np
from scipy import stats as scipy_stats

from repro.model.view import ViewSpec
from repro.util.errors import SamplingError


def ranking_from_utilities(utilities: Mapping[ViewSpec, float]) -> list[ViewSpec]:
    """Views sorted by descending utility (ties broken by the spec's
    natural order so rankings are deterministic)."""
    return [
        spec
        for spec, _utility in sorted(
            utilities.items(), key=lambda item: (-item[1], item[0])
        )
    ]


def topk_precision(
    true_utilities: Mapping[ViewSpec, float],
    estimated_utilities: Mapping[ViewSpec, float],
    k: int,
) -> float:
    """|top-k(true) ∩ top-k(estimated)| / k.

    The metric SeeDB cares most about: does the sampled run surface the
    same recommended views as the exact run?
    """
    if k <= 0:
        raise SamplingError(f"k must be positive, got {k}")
    true_top = set(ranking_from_utilities(true_utilities)[:k])
    estimated_top = set(ranking_from_utilities(estimated_utilities)[:k])
    if not true_top:
        return 1.0
    return len(true_top & estimated_top) / min(k, len(true_top))


def kendall_tau(
    true_utilities: Mapping[ViewSpec, float],
    estimated_utilities: Mapping[ViewSpec, float],
) -> float:
    """Kendall's tau-b between the two utility orderings over common views."""
    common = sorted(set(true_utilities) & set(estimated_utilities))
    if len(common) < 2:
        return 1.0
    true_values = [true_utilities[spec] for spec in common]
    estimated_values = [estimated_utilities[spec] for spec in common]
    tau, _p_value = scipy_stats.kendalltau(true_values, estimated_values)
    if np.isnan(tau):  # constant rankings
        return 1.0
    return float(tau)


def utility_errors(
    true_utilities: Mapping[ViewSpec, float],
    estimated_utilities: Mapping[ViewSpec, float],
) -> dict[str, float]:
    """Mean / max absolute utility error over common views."""
    common = sorted(set(true_utilities) & set(estimated_utilities))
    if not common:
        return {"mean_abs_error": 0.0, "max_abs_error": 0.0}
    errors = np.array(
        [abs(true_utilities[spec] - estimated_utilities[spec]) for spec in common]
    )
    return {
        "mean_abs_error": float(errors.mean()),
        "max_abs_error": float(errors.max()),
    }


def views_ranked_overlap(
    ranking_a: Sequence[ViewSpec], ranking_b: Sequence[ViewSpec], k: int
) -> float:
    """Overlap fraction of two precomputed rankings' top-k prefixes."""
    if k <= 0:
        raise SamplingError(f"k must be positive, got {k}")
    top_a, top_b = set(ranking_a[:k]), set(ranking_b[:k])
    if not top_a:
        return 1.0
    return len(top_a & top_b) / len(top_a)
