"""Sampler interface."""

from __future__ import annotations

from repro.db.table import Table
from repro.util.rng import derive_rng


class Sampler:
    """Base class: produce a row sample of a table.

    Samplers are deterministic given a seed, so experiments are repeatable
    and the memory/sqlite backends produce comparable samples.
    """

    name: str = ""

    def sample(self, table: Table, seed: "int | None" = None) -> Table:
        """Return a sampled copy of ``table`` (named ``<table>_sample``)."""
        rng = derive_rng(seed)
        indices = self.sample_indices(table, rng)
        return table.take(indices, name=f"{table.name}_sample")

    def sample_indices(self, table: Table, rng):
        """Sorted row indices to keep (subclasses implement)."""
        raise NotImplementedError

    def expected_rows(self, n_rows: int) -> float:
        """Expected sample size for an ``n_rows`` table."""
        raise NotImplementedError
