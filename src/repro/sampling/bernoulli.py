"""Bernoulli (uniform row) sampling."""

from __future__ import annotations

import numpy as np

from repro.db.table import Table
from repro.sampling.base import Sampler
from repro.util.errors import SamplingError


class BernoulliSampler(Sampler):
    """Keep each row independently with probability ``fraction``.

    The simplest sampler and the one whose group-level counts are unbiased
    estimators of the full-data counts scaled by 1/fraction — utilities on
    normalized distributions need no rescaling at all.
    """

    name = "bernoulli"

    def __init__(self, fraction: float):
        if not (0.0 < fraction <= 1.0):
            raise SamplingError(f"fraction must be in (0, 1], got {fraction}")
        self.fraction = fraction

    def sample_indices(self, table: Table, rng) -> np.ndarray:
        if self.fraction >= 1.0:
            return np.arange(table.num_rows)
        keep = rng.random(table.num_rows) < self.fraction
        return np.flatnonzero(keep)

    def expected_rows(self, n_rows: int) -> float:
        return n_rows * self.fraction

    def __repr__(self) -> str:
        return f"BernoulliSampler(fraction={self.fraction})"
