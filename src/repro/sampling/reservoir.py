"""Reservoir sampling: fixed-size uniform samples.

Matches the paper's "construct a sample of the dataset that can fit in
memory": the sample size is an absolute budget, not a fraction. Two
implementations:

* :func:`reservoir_indices` — the classic streaming Algorithm R over an
  iterator of unknown length (exercised by property tests; this is what a
  wrapper would run against a DBMS cursor).
* :class:`ReservoirSampler` — vectorized equivalent when the row count is
  known (draw-without-replacement), used on in-memory tables.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.db.table import Table
from repro.sampling.base import Sampler
from repro.util.errors import SamplingError
from repro.util.rng import derive_rng


def reservoir_indices(
    stream: Iterable, capacity: int, seed: "int | None" = None
) -> list[int]:
    """Indices of a uniform ``capacity``-subset of ``stream`` (Algorithm R).

    Single pass, O(capacity) memory, works when the stream length is
    unknown upfront — the property every streaming sampler needs.
    """
    if capacity <= 0:
        raise SamplingError(f"capacity must be positive, got {capacity}")
    rng = derive_rng(seed)
    reservoir: list[int] = []
    for index, _item in enumerate(stream):
        if index < capacity:
            reservoir.append(index)
        else:
            slot = int(rng.integers(0, index + 1))
            if slot < capacity:
                reservoir[slot] = index
    return sorted(reservoir)


class ReservoirSampler(Sampler):
    """Uniform sample of exactly ``min(capacity, n_rows)`` rows."""

    name = "reservoir"

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise SamplingError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity

    def sample_indices(self, table: Table, rng) -> np.ndarray:
        n_rows = table.num_rows
        if n_rows <= self.capacity:
            return np.arange(n_rows)
        chosen = rng.choice(n_rows, size=self.capacity, replace=False)
        return np.sort(chosen)

    def expected_rows(self, n_rows: int) -> float:
        return float(min(self.capacity, n_rows))

    def __repr__(self) -> str:
        return f"ReservoirSampler(capacity={self.capacity})"
