"""Stratified sampling by a dimension column.

Uniform sampling under-represents rare groups, which distorts exactly the
distribution tails deviation metrics react to. Stratifying by a dimension
guarantees every group at least ``min_per_stratum`` rows while keeping the
overall rate close to ``fraction`` — the sampler-choice ablation of
benchmark E10/E15 compares this against Bernoulli on skewed data.
"""

from __future__ import annotations

import numpy as np

from repro.db.groupby import factorize
from repro.db.table import Table
from repro.sampling.base import Sampler
from repro.util.errors import SamplingError


class StratifiedSampler(Sampler):
    """Proportional allocation per group of ``column`` with a floor."""

    name = "stratified"

    def __init__(self, column: str, fraction: float, min_per_stratum: int = 1):
        if not (0.0 < fraction <= 1.0):
            raise SamplingError(f"fraction must be in (0, 1], got {fraction}")
        if min_per_stratum < 0:
            raise SamplingError("min_per_stratum must be >= 0")
        self.column = column
        self.fraction = fraction
        self.min_per_stratum = min_per_stratum

    def sample_indices(self, table: Table, rng) -> np.ndarray:
        codes, uniques = factorize(table.column(self.column))
        chosen: list[np.ndarray] = []
        for group in range(len(uniques)):
            members = np.flatnonzero(codes == group)
            target = max(
                int(round(len(members) * self.fraction)),
                min(self.min_per_stratum, len(members)),
            )
            if target >= len(members):
                chosen.append(members)
            elif target > 0:
                chosen.append(rng.choice(members, size=target, replace=False))
        if not chosen:
            return np.arange(0)
        return np.sort(np.concatenate(chosen))

    def expected_rows(self, n_rows: int) -> float:
        return n_rows * self.fraction  # floor effects make this a lower bound

    def __repr__(self) -> str:
        return (
            f"StratifiedSampler(column={self.column!r}, fraction={self.fraction}, "
            f"min_per_stratum={self.min_per_stratum})"
        )
