"""The serving subsystem: SeeDB as a concurrent multi-session service.

:class:`SeeDBService` owns backends and engines, schedules concurrent
``recommend()`` requests on a bounded pool, coalesces identical in-flight
requests, and caches finished results keyed on the backend's data version.
The HTTP frontend (:mod:`repro.frontend.server`) and interactive analyst
sessions both route through it, sharing one set of warm caches.
"""

from repro.service.service import (
    DEFAULT_BACKEND,
    SeeDBService,
    ServiceStats,
    single_backend_service,
)

__all__ = [
    "SeeDBService",
    "ServiceStats",
    "DEFAULT_BACKEND",
    "single_backend_service",
]
