"""The serving subsystem: SeeDB as a concurrent multi-session service.

:class:`SeeDBService` owns backends and engines, schedules concurrent
``recommend()`` requests on a bounded pool, coalesces identical in-flight
requests, and caches finished results keyed on the backend's data version.
:class:`ClusterService` scales the same dispatch interface across a pool
of worker *processes* — consistent-hash sharding, worker-owned backend
replicas, and a shared-memory result cache — for workloads the GIL caps
in a single process. The HTTP frontend (:mod:`repro.frontend.server`) and
interactive analyst sessions both route through either tier, sharing one
set of warm caches.
"""

from repro.service.cluster import (
    ClusterService,
    ClusterTimeouts,
    cluster_service_from_uri,
    single_backend_cluster,
)
from repro.service.hashring import HashRing, stable_hash
from repro.service.service import (
    DEFAULT_BACKEND,
    SeeDBService,
    ServiceStats,
    single_backend_service,
)
from repro.service.shm import SharedResultCache, decode_result, encode_result

__all__ = [
    "SeeDBService",
    "ServiceStats",
    "ClusterService",
    "ClusterTimeouts",
    "HashRing",
    "SharedResultCache",
    "DEFAULT_BACKEND",
    "cluster_service_from_uri",
    "decode_result",
    "encode_result",
    "single_backend_cluster",
    "single_backend_service",
    "stable_hash",
]
