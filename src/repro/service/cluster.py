"""ClusterService: the multi-process sharded serving tier.

:class:`~repro.service.service.SeeDBService` serves many sessions from
one process of threads — which the GIL caps at roughly one core for the
in-process memory backend. This module scales the *same* dispatch
interface past that: a pool of long-lived worker processes, each owning
private backend replicas and engine caches, behind the router process
everyone already talks to.

The contract (and how each piece preserves it):

* **Coalescing and bit-identity survive sharding.** Requests are
  canonicalized and keyed exactly as in the thread tier (the inherited
  ``submit``), so identical concurrent requests still collapse onto one
  in-flight future *before* dispatch. The one execution is routed by
  consistent hash on the key digest (:mod:`repro.service.hashring`), so
  repeat traffic for a key always lands on the worker whose
  :class:`~repro.engine.cache.EngineCache` is warm for it. The worker
  re-resolves the wire-form request against the same base config the
  router resolved it against — same inputs, same pipeline, bit-identical
  results.
* **Results cross processes without pickle.** Workers publish finished
  results into named shared-memory segments (:mod:`repro.service.shm`);
  only the segment name rides the response queue. The segments double as
  the cross-process result cache: entries carry the ``data_version`` they
  were computed at, and both readers and writers retire stale versions on
  contact — the cross-process analogue of the in-process LRU's
  version-bearing keys.
* **Crashes are contained.** A monitor thread watches process sentinels;
  a dead worker is respawned from the current authoritative bootstrap,
  and its in-flight requests are retried once on the next ring node.
  Requests that outlive two workers fail with a clear error.

The degenerate case stays degenerate: ``ClusterService(workers=1)`` is a
single shard behind the same interface, and plain ``SeeDBService`` remains
the no-process tier — ``seedb serve`` picks between them with
``--workers``.

Streams (``recommend_stream``) deliberately execute on the router process
via the inherited incremental path: progressive rounds are latency-bound,
not throughput-bound, and fanning partial rounds through shared memory
would buy nothing.
"""

from __future__ import annotations

import hashlib
import itertools
import multiprocessing
import os
import random
import threading
import time
import uuid
from collections import OrderedDict
from dataclasses import dataclass, fields
from dataclasses import replace as dataclass_replace
from multiprocessing import connection as mp_connection

from repro.api.request import RecommendationRequest, ResolvedRequest
from repro.backends.base import Backend
from repro.core.config import SeeDBConfig
from repro.core.result import RecommendationResult
from repro.db.table import Table
from repro.service.hashring import HashRing
from repro.service.service import DEFAULT_BACKEND, SeeDBService, _BackendSlot
from repro.service.shm import SharedResultCache, decode_result, read_segment, unlink_segment
from repro.service.worker import BackendBootstrap, decode_error, worker_main
from repro.util.deadline import CancelToken
from repro.util.errors import ConfigError, DeadlineExceeded, QueryError, WorkerLost

#: How many times one request may be assigned to a worker before failing
#: (1 initial dispatch + 1 retry on a different shard).
MAX_ATTEMPTS = 2

#: Respawns allowed per worker slot before it is declared failed and
#: removed from the ring (a crash-looping replica must not flap forever).
MAX_RESPAWNS = 5


@dataclass
class ClusterTimeouts:
    """Every cluster-tier timeout, named and overridable in one place.

    Each field can be overridden per-process with an environment variable
    ``SEEDB_CLUSTER_<FIELD>`` (upper-cased field name, seconds as a float)
    or per-service by passing ``timeouts=ClusterTimeouts(...)``.
    """

    #: close(): how long to wait for the router / monitor threads.
    router_join_s: float = 10.0
    monitor_join_s: float = 10.0
    #: Shutdown escalation: graceful join, then terminate, then kill.
    worker_join_s: float = 10.0
    worker_terminate_s: float = 5.0
    worker_kill_s: float = 5.0
    #: Reaping a worker the monitor already declared dead.
    dead_worker_join_s: float = 1.0
    #: update_table() replica broadcast (ships whole tables; generous).
    table_broadcast_s: float = 120.0
    #: snapshot() per-worker stats gather.
    stats_broadcast_s: float = 2.0
    #: Extra wall-clock past a request deadline before the router stops
    #: waiting on a worker reply (covers reply-pipe transit + decode).
    dispatch_grace_s: float = 2.0
    #: Base delay before re-dispatching an orphaned request to the next
    #: ring node (jittered; bounds the retry stampede after a crash).
    retry_backoff_s: float = 0.05
    #: Worker inbox poll: how often an idle worker wakes to check whether
    #: it has been reparented (parent died without draining it).
    worker_idle_poll_s: float = 5.0

    @classmethod
    def from_env(cls, env=None) -> "ClusterTimeouts":
        env = os.environ if env is None else env
        overrides = {}
        for field in fields(cls):
            raw = env.get(f"SEEDB_CLUSTER_{field.name.upper()}")
            if raw is None:
                continue
            try:
                value = float(raw)
            except ValueError:
                raise ConfigError(
                    f"SEEDB_CLUSTER_{field.name.upper()} must be a number "
                    f"of seconds, got {raw!r}"
                ) from None
            if value <= 0:
                raise ConfigError(
                    f"SEEDB_CLUSTER_{field.name.upper()} must be positive, "
                    f"got {raw!r}"
                )
            overrides[field.name] = value
        return cls(**overrides)


def key_digest(key: tuple) -> str:
    """Stable digest of a request key: the routing and segment identity."""
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()


def default_start_method() -> str:
    """``fork`` where available (fast, inherits nothing mutable the worker
    uses); ``spawn`` elsewhere — the worker entry point is importable and
    its arguments picklable, so both work."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


class _Dispatch:
    """One in-flight message awaiting a worker reply."""

    __slots__ = (
        "id", "message", "digest", "worker", "attempts", "event", "reply",
        "expires_at",
    )

    def __init__(self, message: dict, digest: "str | None"):
        self.id = -1
        self.message = message
        self.digest = digest
        self.worker = ""
        self.attempts = 0
        self.event = threading.Event()
        self.reply: "dict | None" = None
        #: Monotonic instant the request's deadline lands (None = no
        #: deadline): the retry budget the monitor consults on reassign.
        self.expires_at: "float | None" = None

    def resolve(self, reply: dict) -> None:
        self.reply = reply
        self.event.set()


class _WorkerHandle:
    """Router-side state of one worker slot (stable id, live process).

    ``outbox`` is the read end of this worker's private reply pipe. Replies
    deliberately do NOT share one queue across workers: a SIGKILL landing
    mid-``send`` leaves a torn message in the stream, and on a shared
    channel that skews the framing for every worker's replies forever. On
    a private pipe the tear is contained — the parent holds no write end,
    so the dead writer is the only writer, the router's blocked ``recv``
    sees EOF, and only dispatches the monitor reassigns anyway are lost.
    """

    __slots__ = (
        "id", "process", "inbox", "outbox", "generation", "booted", "respawns"
    )

    def __init__(self, worker_id, process, inbox, outbox, generation):
        self.id = worker_id
        self.process = process
        self.inbox = inbox
        self.outbox = outbox
        self.generation = generation
        self.booted = False
        self.respawns = 0


class ClusterService(SeeDBService):
    """A sharded, multi-process :class:`SeeDBService`.

    ``workers`` is the number of worker processes (the unit of CPU
    scale-out); ``max_workers`` still bounds concurrent *dispatches* and
    should be >= ``workers`` to keep every shard busy. Backends must be
    registered before :meth:`start` — replicas are built from each
    backend's URI scheme with its tables shipped over, so every worker
    owns private storage (no cross-process file locking).

    ``start()`` must run before other threads are active if the platform
    forks (``seedb serve`` starts the cluster before the HTTP server);
    as a convenience the first request auto-starts the pool.
    """

    def __init__(
        self,
        workers: int = 2,
        ring_replicas: int = 64,
        shm_prefix: "str | None" = None,
        start_method: "str | None" = None,
        timeouts: "ClusterTimeouts | None" = None,
        **service_kwargs,
    ):
        super().__init__(**service_kwargs)
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        self.n_workers = workers
        self.timeouts = timeouts or ClusterTimeouts.from_env()
        self._ctx = multiprocessing.get_context(
            start_method or default_start_method()
        )
        prefix = shm_prefix or f"sdb{uuid.uuid4().hex[:8]}."
        self._shm = SharedResultCache(prefix)
        #: LRU index of cache segments this router published/read, so the
        #: result-cache bound and close() can unlink deterministically.
        self._segments: "OrderedDict[str, str]" = OrderedDict()  # guarded-by: _lock
        self._ring = HashRing(replicas=ring_replicas)
        # Guards everything below; ordered *inside* the service lock
        # (never acquire the service lock while holding this one).
        self._cluster_lock = threading.RLock()
        self._handles: "dict[str, _WorkerHandle]" = {}  # guarded-by: _cluster_lock
        self._pending: "dict[int, _Dispatch]" = {}  # guarded-by: _cluster_lock
        self._ids = itertools.count(1)
        self._bootstraps: "dict[str, BackendBootstrap]" = {}  # guarded-by: _cluster_lock
        self._started = False  # guarded-by: _cluster_lock
        self._cluster_closed = False  # guarded-by: _cluster_lock
        self._closing = threading.Event()
        self._router_thread: "threading.Thread | None" = None
        self._monitor_thread: "threading.Thread | None" = None
        self.respawns = 0  # guarded-by: _cluster_lock
        self.retries = 0  # guarded-by: _cluster_lock
        self.ejections = 0  # guarded-by: _cluster_lock

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ClusterService":
        """Spawn the worker pool (idempotent).

        Call this before starting server threads when the start method is
        ``fork``; otherwise the first request starts the pool lazily.
        """
        with self._lock:
            self._require_open()
            bootstraps = {
                name: self._bootstrap_of(name, slot)
                for name, slot in self._slots.items()
            }
            with self._cluster_lock:
                if self._started:
                    return self
                if not bootstraps:
                    raise ConfigError(
                        "register at least one backend before starting the cluster"
                    )
                self._bootstraps = bootstraps
                for index in range(self.n_workers):
                    worker_id = f"w{index}"
                    self._handles[worker_id] = self._spawn(worker_id, generation=0)
                    self._ring.add(worker_id)
                self._router_thread = threading.Thread(
                    target=self._route_responses,
                    name="seedb-cluster-router",
                    daemon=True,
                )
                self._monitor_thread = threading.Thread(
                    target=self._monitor,
                    name="seedb-cluster-monitor",
                    daemon=True,
                )
                self._started = True
                self._router_thread.start()
                self._monitor_thread.start()
        return self

    def _bootstrap_of(self, name: str, slot: _BackendSlot) -> BackendBootstrap:
        from repro.backends.registry import available_backend_schemes

        scheme = slot.backend.name
        if scheme not in available_backend_schemes():
            raise ConfigError(
                f"backend {name!r} ({scheme!r}) has no URI scheme to build "
                "worker replicas from; the cluster tier needs "
                "backend_from_uri-constructible backends"
            )
        tables = [
            slot.backend.fetch_table(table_name)
            for table_name in slot.backend.table_names()
        ]
        return BackendBootstrap(
            name=name, scheme=scheme, config=slot.config, tables=tables
        )

    def _spawn(self, worker_id: str, generation: int) -> _WorkerHandle:
        """Fork one worker process. Caller holds the cluster lock."""
        inbox = self._ctx.Queue()
        reader, writer = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=worker_main,
            args=(
                worker_id,
                list(self._bootstraps.values()),
                self._shm.prefix,
                inbox,
                writer,
            ),
            name=f"seedb-{worker_id}",
            daemon=True,
        )
        process.start()
        # Drop the parent's write end immediately: the worker must be the
        # only writer so its death EOFs the pipe (even mid-message).
        writer.close()
        return _WorkerHandle(worker_id, process, inbox, reader, generation)

    def register_backend(self, name, backend, config=None, owned=False) -> None:
        with self._cluster_lock:
            if self._started:
                raise ConfigError(
                    "cannot register backends after the cluster started; "
                    "construct the service fully, then start()"
                )
        super().register_backend(name, backend, config=config, owned=owned)

    def close(self) -> None:
        """Drain in-flight requests, stop workers, release all segments."""
        with self._cluster_lock:
            already_closed = self._cluster_closed
            self._cluster_closed = True
            started = self._started
        if already_closed:
            # Idempotent re-close. The base close() acquires the service
            # lock, which orders *outside* the cluster lock (see start),
            # so it must never run under it.
            super().close()
            return
        # Drain first (the monitor still covers crashes mid-drain), then
        # stop respawns and take the pool down.
        super().close()
        self._closing.set()
        if started:
            self._shutdown_workers()
            if self._router_thread is not None:
                self._router_thread.join(timeout=self.timeouts.router_join_s)
            if self._monitor_thread is not None:
                self._monitor_thread.join(timeout=self.timeouts.monitor_join_s)
        self._fail_all_pending(QueryError("service closed"))
        # Final sweep: the LRU already unlinked indexed segments via
        # _cache_clear; this catches anything workers published that the
        # router never read.
        with self._lock:
            segments = list(self._segments.values())
            self._segments.clear()
        self._shm.unlink_all(segments)

    def _shutdown_workers(self) -> None:
        with self._cluster_lock:
            handles = list(self._handles.values())
        for handle in handles:
            try:
                handle.inbox.put({"op": "shutdown"})
            except (OSError, ValueError):
                pass
        for handle in handles:
            handle.process.join(timeout=self.timeouts.worker_join_s)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=self.timeouts.worker_terminate_s)
            if handle.process.is_alive():  # pragma: no cover - last resort
                handle.process.kill()
                handle.process.join(timeout=self.timeouts.worker_kill_s)
            handle.inbox.close()
            try:
                handle.outbox.close()
            except OSError:  # pragma: no cover - already closed
                pass

    # -- dispatch ----------------------------------------------------------

    def _run_execution(
        self,
        key: tuple,
        backend_name: str,
        slot: _BackendSlot,
        request: RecommendationRequest,
        resolved: ResolvedRequest,
        base: SeeDBConfig,
        token: "CancelToken | None" = None,
    ) -> RecommendationResult:
        with self._cluster_lock:
            started = self._started
        if not started:
            self.start()
        digest = key_digest(key)
        data_version = key[1]
        message = {
            "op": "request",
            "backend": backend_name,
            # The wire codec is the transport: the worker re-resolves this
            # exact request against the same base config, reproducing the
            # resolution the router keyed on.
            "request": dataclass_replace(request, k=resolved.k).to_dict(),
            "config": base,
            "digest": digest,
            "data_version": data_version,
            # With the result cache off nothing may outlive the reply, so
            # the worker ships bytes in-band instead of publishing a
            # segment (concurrent uncoalesced twins would otherwise race
            # an unlink-after-read on the shared name).
            "publish": bool(self.result_cache_size),
        }
        if token is not None:
            remaining_ms = token.remaining_ms()
            if remaining_ms is not None:
                # The worker enforces what's left of the budget, not the
                # original deadline_ms: queue wait already consumed some.
                message["deadline_ms"] = max(1.0, remaining_ms)
        reply = self._dispatch(message, digest, token=token)
        if "error" in reply:
            raise decode_error(reply["error"])
        if "shm" in reply:
            try:
                _, _, result = read_segment(reply["shm"])
            except (FileNotFoundError, OSError, ConfigError) as exc:
                raise QueryError(
                    f"worker result segment {reply['shm']!r} vanished "
                    f"before the router read it: {exc}"
                ) from exc
            return result
        # In-band fallback (shared memory unavailable): same encoding,
        # shipped as bytes; republish router-side so caching still works.
        _, _, result = decode_result(reply["payload"])
        if self.result_cache_size:
            self._shm.put(digest, data_version, result)
        return result

    def _dispatch(
        self,
        message: dict,
        digest: "str | None",
        token: "CancelToken | None" = None,
    ) -> dict:
        dispatch = _Dispatch(message, digest)
        if token is not None:
            remaining = token.remaining()
            if remaining is not None:
                dispatch.expires_at = time.monotonic() + max(0.0, remaining)
        with self._cluster_lock:
            if not self._ring:
                raise WorkerLost(
                    "no live workers (all worker slots failed); "
                    "restart the service"
                )
            worker_id = (
                self._ring.node_for(digest) if digest is not None else message["worker"]
            )
            dispatch.id = next(self._ids)
            dispatch.worker = worker_id
            dispatch.attempts = 1
            self._pending[dispatch.id] = dispatch
            self._handles[worker_id].inbox.put(dict(message, id=dispatch.id))
        # A cancelled request must not keep a router thread parked waiting
        # on a worker that is still (correctly) grinding: the token kicks
        # the event so the waiter can bail with the typed error.
        unregister = (
            token.on_cancel(dispatch.event.set) if token is not None else None
        )
        try:
            if dispatch.expires_at is None:
                dispatch.event.wait()
            else:
                # Bounded wait: the worker enforces the deadline itself and
                # normally replies with DeadlineExceeded; the grace covers
                # reply transit. A worker that *hangs* (never replies) is
                # cut off here instead of stranding the request forever.
                dispatch.event.wait(
                    max(0.0, dispatch.expires_at - time.monotonic())
                    + self.timeouts.dispatch_grace_s
                )
        finally:
            if unregister is not None:
                unregister()
        if dispatch.reply is None:
            with self._cluster_lock:
                self._pending.pop(dispatch.id, None)
            if token is not None:
                token.check()  # raises Cancelled / DeadlineExceeded
            raise DeadlineExceeded(
                f"worker {dispatch.worker} did not reply within the "
                f"request deadline (+{self.timeouts.dispatch_grace_s}s grace)"
            )
        return dispatch.reply

    def _broadcast(self, message: dict, timeout: float) -> "dict[str, dict | None]":
        """Send ``message`` to every worker; gather replies until timeout."""
        dispatches: "dict[str, _Dispatch]" = {}
        with self._cluster_lock:
            for worker_id, handle in self._handles.items():
                dispatch = _Dispatch(dict(message, worker=worker_id), digest=None)
                dispatch.id = next(self._ids)
                dispatch.worker = worker_id
                dispatch.attempts = 1
                self._pending[dispatch.id] = dispatch
                handle.inbox.put(dict(dispatch.message, id=dispatch.id))
                dispatches[worker_id] = dispatch
        deadline = time.monotonic() + timeout
        for dispatch in dispatches.values():
            dispatch.event.wait(max(0.0, deadline - time.monotonic()))
        with self._cluster_lock:
            for dispatch in dispatches.values():
                if not dispatch.event.is_set():
                    self._pending.pop(dispatch.id, None)
        return {
            worker_id: dispatch.reply
            for worker_id, dispatch in dispatches.items()
        }

    # -- response routing and crash monitoring -----------------------------

    def _route_responses(self) -> None:
        """Multiplex every worker's private reply pipe onto the pending map.

        A channel that EOFs or tears (its worker was SIGKILLed, possibly
        mid-``send``) is simply retired here — the monitor notices the
        death via the process sentinel and reassigns that worker's pending
        dispatches, so nothing in this loop may block on one worker's
        stream (the shared-queue design this replaces deadlocked exactly
        that way: one torn message skewed the framing for all replies).
        """
        dead: "set" = set()
        while not self._closing.is_set():
            with self._cluster_lock:
                conns = [
                    handle.outbox
                    for handle in self._handles.values()
                    if handle.outbox not in dead
                ]
            if not conns:
                self._closing.wait(0.2)
                continue
            try:
                ready = mp_connection.wait(conns, timeout=0.2)
            except OSError:  # pragma: no cover - raced a handle teardown
                continue
            for conn in ready:
                try:
                    reply = conn.recv()
                except (EOFError, OSError):
                    dead.add(conn)
                    try:
                        conn.close()
                    except OSError:  # pragma: no cover
                        pass
                    continue
                except Exception:  # noqa: BLE001 - torn/corrupt stream
                    dead.add(conn)
                    try:
                        conn.close()
                    except OSError:  # pragma: no cover
                        pass
                    continue
                op = reply.get("op")
                if op == "up":
                    with self._cluster_lock:
                        handle = self._handles.get(reply.get("worker", ""))
                        if handle is not None:
                            handle.booted = True
                    continue
                if op == "bye":
                    continue  # the monitor owns death handling
                with self._cluster_lock:
                    dispatch = self._pending.pop(reply.get("id"), None)
                if dispatch is not None:
                    dispatch.resolve(reply)

    def _monitor(self) -> None:
        while not self._closing.is_set():
            with self._cluster_lock:
                # No is_alive() filter: a worker that died *between* wait
                # cycles would be filtered out here before its sentinel
                # was ever waited on, and its death would never be
                # handled (pending dispatches stuck forever). A dead but
                # unhandled process's sentinel is ready immediately —
                # exactly the wake-up this loop exists for; handling it
                # removes or replaces the handle, so nothing busy-loops.
                sentinels = {
                    handle.process.sentinel: (worker_id, handle.generation)
                    for worker_id, handle in self._handles.items()
                }
            if not sentinels:
                self._closing.wait(0.2)
                continue
            try:
                dead = mp_connection.wait(list(sentinels), timeout=0.2)
            except OSError:  # pragma: no cover - raced a shutdown
                continue
            for sentinel in dead:
                worker_id, generation = sentinels[sentinel]
                self._on_worker_death(worker_id, generation)

    def _on_worker_death(self, worker_id: str, generation: int) -> None:
        with self._cluster_lock:
            if self._closing.is_set():
                return
            handle = self._handles.get(worker_id)
            if (
                handle is None
                or handle.generation != generation
                or handle.process.is_alive()
            ):
                return  # stale event: already respawned
            orphans = [
                dispatch
                for dispatch in self._pending.values()
                if dispatch.worker == worker_id and not dispatch.event.is_set()
            ]
            respawns = handle.respawns + 1
            permanent = (not handle.booted) or respawns > MAX_RESPAWNS
            if permanent:
                # A replica that cannot even boot (or crash-loops) gets its
                # shard redistributed instead of flapping forever. The
                # ejection is permanent for this service's lifetime, so
                # health() reports degraded from here on.
                self.ejections += 1
                self._ring.remove(worker_id)
                del self._handles[worker_id]
            else:
                self.respawns += 1
                replacement = self._spawn(worker_id, generation=generation + 1)
                replacement.respawns = respawns
                self._handles[worker_id] = replacement
            for dispatch in orphans:
                self._reassign(dispatch, dead_worker=worker_id)
        handle.process.join(timeout=self.timeouts.dead_worker_join_s)
        handle.inbox.close()
        # Retire the dead worker's reply pipe. The router tolerates this
        # racing its recv/wait (OSError/EOF land in its dead-channel
        # path); without it every respawn would leak the old reader fd.
        try:
            handle.outbox.close()
        except OSError:  # pragma: no cover - router closed it first
            pass

    def _reassign(self, dispatch: _Dispatch, dead_worker: str) -> None:
        """Retry one orphaned dispatch (caller holds the cluster lock).

        Retries are budget-gated: a request whose deadline already landed
        (or will land before a retry could plausibly finish) fails with
        the typed error immediately instead of burning a worker slot on an
        answer nobody is waiting for.
        """
        if dispatch.attempts >= MAX_ATTEMPTS:
            self._pending.pop(dispatch.id, None)
            dispatch.resolve(
                {
                    "error": {
                        "type": "WorkerLost",
                        "message": (
                            f"request failed on {dispatch.attempts} workers "
                            f"(last: {dead_worker} died mid-request)"
                        ),
                    }
                }
            )
            return
        if (
            dispatch.expires_at is not None
            and time.monotonic() >= dispatch.expires_at
        ):
            self._pending.pop(dispatch.id, None)
            dispatch.resolve(
                {
                    "error": {
                        "type": "DeadlineExceeded",
                        "message": (
                            f"worker {dead_worker} died mid-request and no "
                            "deadline budget remains to retry"
                        ),
                    }
                }
            )
            return
        if dispatch.digest is not None:
            # Prefer the first live ring node in failover order that is
            # not the worker that just died — the node that owns (or would
            # inherit) this shard. A single-worker pool falls back to the
            # respawned primary itself.
            order = self._ring.nodes_for(dispatch.digest, max(len(self._ring), 1))
            candidates = [
                node for node in order
                if node in self._handles and node != dead_worker
            ] or [node for node in order if node in self._handles]
        else:
            candidates = [dispatch.worker] if dispatch.worker in self._handles else []
        if not candidates:
            self._pending.pop(dispatch.id, None)
            dispatch.resolve(
                {
                    "error": {
                        "type": "WorkerLost",
                        "message": "no live workers left to retry on",
                    }
                }
            )
            return
        target = candidates[0]
        dispatch.attempts += 1
        dispatch.worker = target
        self.retries += 1
        handle = self._handles[target]
        # Jittered backoff (seeded per dispatch, so deterministic under
        # test): after a crash every orphan of the dead worker reassigns
        # at once; spreading the re-sends keeps the successor's inbox from
        # absorbing the whole burst in one scheduling quantum. Capped by
        # the remaining deadline budget — a retry that could only start
        # after expiry goes out immediately and lets the worker reject it.
        jitter = random.Random(dispatch.id).random()
        delay = self.timeouts.retry_backoff_s * dispatch.attempts * (0.5 + jitter)
        if dispatch.expires_at is not None:
            delay = min(delay, max(0.0, dispatch.expires_at - time.monotonic()))

        def _resend() -> None:
            with self._cluster_lock:
                if dispatch.event.is_set() or dispatch.id not in self._pending:
                    return
                try:
                    handle.inbox.put(dict(dispatch.message, id=dispatch.id))
                except (OSError, ValueError):  # pragma: no cover - raced close
                    pass

        if delay <= 0:
            _resend()
        else:
            timer = threading.Timer(delay, _resend)
            timer.daemon = True
            timer.start()

    def _fail_all_pending(self, error: Exception) -> None:
        with self._cluster_lock:
            pending = list(self._pending.values())
            self._pending.clear()
        for dispatch in pending:
            dispatch.resolve(
                {"error": {"type": type(error).__name__, "message": str(error)}}
            )

    # -- cross-process result cache ----------------------------------------

    def _cache_get(self, key: tuple) -> "RecommendationResult | None":
        """Shared-memory cache probe. Caller holds the service lock."""
        if not self.result_cache_size:
            return None
        digest = key_digest(key)
        result = self._shm.get(digest, key[1])
        if result is None:
            self._segments.pop(digest, None)
            return None
        self._index_segment(digest)
        return result

    def _cache_put(self, key: tuple, result: RecommendationResult) -> None:
        """Index a published segment. Caller holds the service lock."""
        # The worker already published the segment (or _run_execution
        # republished the in-band fallback); only the LRU index lives here.
        if not self.result_cache_size:
            return
        self._index_segment(key_digest(key))

    def _index_segment(self, digest: str) -> None:
        """LRU-touch a segment, evicting over budget.

        Caller holds the service lock.
        """
        self._segments[digest] = self._shm.segment_name(digest)
        self._segments.move_to_end(digest)
        while len(self._segments) > self.result_cache_size:
            _, name = self._segments.popitem(last=False)
            unlink_segment(name)

    def _cache_clear(self) -> None:
        """Unlink every indexed segment. Caller holds the service lock."""
        for name in self._segments.values():
            unlink_segment(name)
        self._segments.clear()

    # -- replica data management -------------------------------------------

    def update_table(
        self,
        table: Table,
        backend: str = DEFAULT_BACKEND,
        replace: bool = True,
    ) -> None:
        """Publish new table data to the authoritative backend and every
        worker replica.

        Holding the service lock across the broadcast serializes the
        update against new submissions: requests keyed at the old
        ``data_version`` were dispatched (FIFO inboxes) before the
        replicas swap, requests keyed at the new version can only be
        canonicalized after every replica acked — so no result is ever
        cached under a version its data didn't match.
        """
        with self._lock:
            self._require_open()
            slot = self._require_slot(backend)
            slot.backend.register_table(table, replace=replace)
            with self._cluster_lock:
                started = self._started
                spec = self._bootstraps.get(backend)
                if spec is not None:
                    spec.tables = [
                        existing for existing in spec.tables
                        if existing.name != table.name
                    ] + [table]
            if not started:
                return
            acks = self._broadcast(
                {"op": "register_table", "backend": backend, "table": table},
                timeout=self.timeouts.table_broadcast_s,
            )
            missing = sorted(
                worker_id for worker_id, reply in acks.items() if reply is None
            )
            if missing:
                raise QueryError(
                    f"table update not acknowledged by workers {missing}; "
                    "replicas may be inconsistent — restart the service"
                )
            errors = {
                worker_id: reply["error"]
                for worker_id, reply in acks.items()
                if reply is not None and "error" in reply
            }
            if errors:
                raise QueryError(f"table update failed on workers: {errors}")

    # -- observability -----------------------------------------------------

    def health(self) -> dict:
        base = super().health()
        base["mode"] = "processes"
        with self._cluster_lock:
            workers = [
                {
                    "id": worker_id,
                    "alive": handle.process.is_alive(),
                    "booted": handle.booted,
                    "pid": handle.process.pid,
                    "generation": handle.generation,
                }
                for worker_id, handle in sorted(self._handles.items())
            ]
            started = self._started
            ejections = self.ejections
        base["workers"] = workers
        base["ejected_workers"] = ejections
        if base["status"] == "ok" and started:
            alive = sum(1 for worker in workers if worker["alive"])
            if alive == 0:
                base["status"] = "down"
            elif alive < self.n_workers or ejections:
                # Ejections are permanent: even if every *remaining* slot
                # is alive, capacity is below what was provisioned.
                base["status"] = "degraded"
        return base

    def snapshot(self) -> dict:
        snap = super().snapshot()
        with self._cluster_lock:
            started = self._started
            n_live = sum(
                1 for handle in self._handles.values() if handle.process.is_alive()
            )
            respawns = self.respawns
            retries = self.retries
            ejections = self.ejections
        worker_stats = (
            {
                worker_id: (reply or {}).get("stats")
                for worker_id, reply in self._broadcast(
                    {"op": "stats"}, timeout=self.timeouts.stats_broadcast_s
                ).items()
            }
            if started
            else {}
        )
        executed_total = sum(
            (stats or {}).get("executed", 0) for stats in worker_stats.values()
        )
        snap["cluster"] = {
            "workers": self.n_workers,
            "live_workers": n_live,
            "started": started,
            "respawns": respawns,
            "retries": retries,
            "ejections": ejections,
            "executed_total": executed_total,
            "worker_stats": worker_stats,
            "shm_prefix": self._shm.prefix,
            "shm_cache": self._shm.stats(),
            "shm_segments_live": len(self._shm.live_segments()),
        }
        return snap


def cluster_service_from_uri(
    uri: str,
    config: "SeeDBConfig | None" = None,
    workers: int = 2,
    **service_kwargs,
) -> ClusterService:
    """A started cluster over one URI-constructed backend (CLI helper)."""
    service = ClusterService(workers=workers, **service_kwargs)
    service.register_backend_uri(DEFAULT_BACKEND, uri, config=config)
    return service


def single_backend_cluster(
    backend: Backend,
    config: "SeeDBConfig | None" = None,
    owned: bool = False,
    workers: int = 2,
    **service_kwargs,
) -> ClusterService:
    """A cluster wrapping one backend under the default name (tests)."""
    service = ClusterService(workers=workers, **service_kwargs)
    service.register_backend(DEFAULT_BACKEND, backend, config=config, owned=owned)
    return service
