"""Consistent-hash routing for the sharded serving tier.

The cluster tier routes every request to the worker that owns its key so
request coalescing and session-cache affinity survive sharding: identical
concurrent requests land on (and warm) the *same* worker-owned
:class:`~repro.engine.cache.EngineCache`, exactly as they land on the same
in-flight future inside one process. A consistent ring — each node hashed
onto the circle at ``replicas`` points, a key served by the first node
clockwise — keeps that mapping stable: adding or removing one worker moves
only ~1/N of the key space, so a respawn after a crash does not stampede
every warm cache in the pool.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable

from repro.util.errors import ConfigError


def stable_hash(key: "str | bytes") -> int:
    """A process-independent 64-bit hash (``hash()`` is salted per run)."""
    if isinstance(key, str):
        key = key.encode("utf-8")
    return int.from_bytes(hashlib.sha1(key).digest()[:8], "big")


class HashRing:
    """A consistent-hash ring over named nodes.

    ``replicas`` virtual points per node smooth the key distribution
    (with a handful of workers, one point each would make shard sizes
    wildly uneven). Nodes are arbitrary strings — the cluster uses worker
    ids like ``"w0"`` — and lookups accept the precomputed key digest the
    dispatch layer already has.
    """

    def __init__(self, nodes: "Iterable[str]" = (), replicas: int = 64):
        if replicas < 1:
            raise ConfigError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self._points: list[tuple[int, str]] = []
        self._nodes: set[str] = set()
        for node in nodes:
            self.add(node)

    # -- membership --------------------------------------------------------

    def add(self, node: str) -> None:
        if node in self._nodes:
            return
        self._nodes.add(node)
        for point in self._node_points(node):
            bisect.insort(self._points, point)

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        drop = set(self._node_points(node))
        self._points = [point for point in self._points if point not in drop]

    def _node_points(self, node: str) -> list[tuple[int, str]]:
        return [
            (stable_hash(f"{node}#{index}"), node)
            for index in range(self.replicas)
        ]

    @property
    def nodes(self) -> list[str]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    # -- lookup ------------------------------------------------------------

    def node_for(self, key: "str | bytes") -> str:
        """The node owning ``key`` (first ring point clockwise)."""
        nodes = self.nodes_for(key, 1)
        if not nodes:
            raise ConfigError("hash ring has no nodes")
        return nodes[0]

    def nodes_for(self, key: "str | bytes", n: int) -> list[str]:
        """The first ``n`` *distinct* nodes clockwise from ``key``.

        The failover order: entry 0 is the primary shard; a dead primary's
        in-flight requests retry on entry 1, which is the same node the
        ring would pick if the primary were removed — so retries land
        where re-routed traffic will keep landing.
        """
        if not self._points:
            return []
        point = stable_hash(key)
        index = bisect.bisect_right(self._points, (point, "￿"))
        found: list[str] = []
        for step in range(len(self._points)):
            _, node = self._points[(index + step) % len(self._points)]
            if node not in found:
                found.append(node)
                if len(found) >= n:
                    break
        return found
