"""SeeDBService: one warm engine stack serving many concurrent sessions.

SeeDB is middleware analysts query *repeatedly* (§3.2), and the paper's
framing — "SEEDB is designed as a layer on top of a database system" —
implies a long-lived process answering many overlapping requests, not a
per-script library object. This module is that process core:

* it owns named backends and one :class:`ExecutionEngine` per backend
  (each sharing the backend-wide :class:`~repro.engine.cache.EngineCache`
  and the process-wide worker pool);
* it schedules ``recommend()`` requests on a bounded request pool, so a
  burst of sessions queues instead of spawning unbounded threads;
* it *coalesces* identical in-flight requests — same backend, query,
  configuration, and k → one execution whose result fans out to every
  waiter — and keeps a small LRU of finished results keyed on the
  backend's ``data_version`` (a data change silently retires every stale
  entry: the version in the key can never match again);
* it exposes exact service statistics (in-flight, coalesced, cache hit
  rates) for the frontend's ``/stats`` endpoint.

Both the HTTP frontend (:mod:`repro.frontend.server`) and interactive
:class:`~repro.frontend.session.AnalystSession` objects route through one
service instance, which is what lets interactive and HTTP traffic share
caches, samples, and access-log history.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass

from repro.backends.base import Backend
from repro.core.config import SeeDBConfig
from repro.core.recommender import SeeDB
from repro.core.result import RecommendationResult
from repro.db.query import RowSelectQuery
from repro.engine.context import describe_predicate
from repro.engine.engine import ExecutionEngine
from repro.util.errors import ConfigError, QueryError

#: Name under which a single-backend service registers its backend.
DEFAULT_BACKEND = "default"


@dataclass
class ServiceStats:
    """Request accounting, kept exact by the service lock."""

    #: Requests accepted (coalesced and cache-served ones included).
    requests: int = 0
    #: Requests that scheduled a full pipeline execution. Steady-state
    #: invariant: requests == executions + coalesced + result_cache_hits.
    executions: int = 0
    #: Executions finished successfully.
    completed: int = 0
    #: Executions that raised (every waiter sees the exception).
    failed: int = 0
    #: Requests attached to an identical in-flight execution.
    coalesced: int = 0
    #: Requests served directly from the finished-result LRU.
    result_cache_hits: int = 0


@dataclass
class _BackendSlot:
    """Everything the service holds per registered backend."""

    backend: Backend
    config: SeeDBConfig
    facade: SeeDB
    owned: bool


class SeeDBService:
    """A thread-safe recommendation service over one or more backends.

    ``max_workers`` bounds concurrent request *executions* (the engines
    underneath additionally bound per-plan DBMS parallelism through the
    process-wide worker pool). ``coalesce_requests=False`` turns identical
    concurrent requests back into independent executions (the equivalence
    tests exercise both). ``result_cache_size=0`` disables the finished
    result LRU.
    """

    def __init__(
        self,
        max_workers: int = 8,
        coalesce_requests: bool = True,
        result_cache_size: int = 256,
    ):
        if max_workers < 1:
            raise ConfigError(f"max_workers must be >= 1, got {max_workers}")
        if result_cache_size < 0:
            raise ConfigError(
                f"result_cache_size must be >= 0, got {result_cache_size}"
            )
        self.max_workers = max_workers
        self.coalesce_requests = coalesce_requests
        self.result_cache_size = result_cache_size
        self.stats = ServiceStats()
        self._lock = threading.RLock()
        self._slots: dict[str, _BackendSlot] = {}
        self._in_flight: dict[tuple, Future] = {}
        self._results: "OrderedDict[tuple, RecommendationResult]" = OrderedDict()
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="seedb-service"
        )
        self._closed = False

    # -- backend registry -------------------------------------------------

    def register_backend(
        self,
        name: str,
        backend: Backend,
        config: "SeeDBConfig | None" = None,
        owned: bool = False,
    ) -> None:
        """Serve ``backend`` under ``name`` with a per-backend default config.

        ``owned=True`` hands the backend's lifecycle to the service:
        :meth:`close` will call its ``close()`` (connection cleanup) after
        the engines shut down.
        """
        with self._lock:
            self._require_open()
            if name in self._slots:
                raise ConfigError(f"backend {name!r} already registered")
            self._slots[name] = _BackendSlot(
                backend=backend,
                config=config if config is not None else SeeDBConfig(),
                facade=SeeDB(backend, config),
                owned=owned,
            )

    def backend_names(self) -> list[str]:
        with self._lock:
            return sorted(self._slots)

    def backend(self, name: str = DEFAULT_BACKEND) -> Backend:
        return self._slot(name).backend

    def facade(self, name: str = DEFAULT_BACKEND) -> SeeDB:
        """The engine-bound :class:`SeeDB` facade for one backend.

        Interactive sessions use this to share the service's engine (and
        therefore its caches and access log) for non-request work such as
        schema lookups and query resolution.
        """
        return self._slot(name).facade

    def engine(self, name: str = DEFAULT_BACKEND) -> ExecutionEngine:
        return self._slot(name).facade.engine

    def _slot(self, name: str) -> _BackendSlot:
        with self._lock:
            try:
                return self._slots[name]
            except KeyError:
                raise QueryError(
                    f"no backend named {name!r}; registered: {sorted(self._slots)}"
                ) from None

    # -- serving -----------------------------------------------------------

    def submit(
        self,
        query: "RowSelectQuery | str",
        backend: str = DEFAULT_BACKEND,
        k: "int | None" = None,
        config: "SeeDBConfig | None" = None,
        **overrides,
    ) -> "Future[RecommendationResult]":
        """Schedule a recommendation; returns a future for its result.

        Identical concurrent requests (same backend, resolved query,
        effective config, and k) share one execution when coalescing is
        enabled; requests matching a finished result at the same
        ``data_version`` resolve immediately from the LRU.
        """
        with self._lock:
            self._require_open()
            slot = self._slots.get(backend)
            if slot is None:
                raise QueryError(
                    f"no backend named {backend!r}; "
                    f"registered: {sorted(self._slots)}"
                )
            effective = config if config is not None else slot.config
            if overrides:
                effective = effective.with_overrides(**overrides)
            resolved = slot.facade.resolve_query(query)
            top_k = k if k is not None else effective.k
            key = self._request_key(backend, slot, resolved, effective, top_k)
            self.stats.requests += 1

            if self.result_cache_size:
                cached = self._results.get(key)
                if cached is not None:
                    self._results.move_to_end(key)
                    self.stats.result_cache_hits += 1
                    future: "Future[RecommendationResult]" = Future()
                    future.set_result(cached)
                    return future

            if self.coalesce_requests:
                in_flight = self._in_flight.get(key)
                if in_flight is not None:
                    self.stats.coalesced += 1
                    return in_flight

            future = Future()
            # With coalescing off an identical key may already be in
            # flight; keep the first occupant — the map only needs *a*
            # representative for joiners, and each execution resolves its
            # own future regardless.
            self._in_flight.setdefault(key, future)
            self.stats.executions += 1
        try:
            self._pool.submit(
                self._execute, key, slot, resolved, effective, top_k, future
            )
        except RuntimeError as exc:
            # close() shut the pool down between our lock release and the
            # schedule: resolve the future (coalesced waiters included)
            # instead of stranding them in result().
            with self._lock:
                if self._in_flight.get(key) is future:
                    del self._in_flight[key]
                self.stats.failed += 1
            future.set_exception(
                QueryError(f"service closed while scheduling request: {exc}")
            )
        return future

    def recommend(
        self,
        query: "RowSelectQuery | str",
        backend: str = DEFAULT_BACKEND,
        k: "int | None" = None,
        config: "SeeDBConfig | None" = None,
        **overrides,
    ) -> RecommendationResult:
        """Blocking :meth:`submit` — the call interactive sessions make."""
        return self.submit(
            query, backend=backend, k=k, config=config, **overrides
        ).result()

    def _execute(
        self,
        key: tuple,
        slot: _BackendSlot,
        query: RowSelectQuery,
        config: SeeDBConfig,
        k: int,
        future: "Future[RecommendationResult]",
    ) -> None:
        try:
            result = slot.facade.recommend(query, k=k, config=config)
        except BaseException as exc:  # noqa: BLE001 - delivered to waiters
            with self._lock:
                if self._in_flight.get(key) is future:
                    del self._in_flight[key]
                self.stats.failed += 1
            future.set_exception(exc)
            return
        with self._lock:
            if self._in_flight.get(key) is future:
                del self._in_flight[key]
            self.stats.completed += 1
            if self.result_cache_size:
                self._results[key] = result
                self._results.move_to_end(key)
                while len(self._results) > self.result_cache_size:
                    self._results.popitem(last=False)
        future.set_result(result)

    def _request_key(
        self,
        backend_name: str,
        slot: _BackendSlot,
        query: RowSelectQuery,
        config: SeeDBConfig,
        k: int,
    ) -> tuple:
        """Identity of a request for coalescing and result caching.

        The predicate is keyed by its rendered form (deterministic for
        every expression the SQL renderer knows; the ``repr`` fallback for
        custom expression objects simply never coalesces, which is safe).
        ``data_version`` in the key makes every cached result self-retiring
        on data change — eviction cannot race an invalidation because a
        bumped version is a *different key*, not a mutated entry.
        """
        return (
            backend_name,
            slot.backend.data_version,
            query.table,
            describe_predicate(query),
            query.limit,
            repr(config),
            k,
        )

    # -- observability -----------------------------------------------------

    def snapshot(self) -> dict:
        """A JSON-ready view of service, engine-cache, and backend stats."""
        with self._lock:
            backends = {}
            for name, slot in self._slots.items():
                cache_stats = slot.facade.engine.cache.stats
                hits, misses = cache_stats.hits, cache_stats.misses
                total = hits + misses
                backends[name] = {
                    "backend": slot.backend.name,
                    "data_version": slot.backend.data_version,
                    "queries_executed": slot.backend.queries_executed,
                    "engine_cache": {
                        "hits": hits,
                        "misses": misses,
                        "hit_rate": (hits / total) if total else None,
                        "invalidations": cache_stats.invalidations,
                        "samples_dropped": cache_stats.samples_dropped,
                    },
                }
            return {
                "requests": self.stats.requests,
                "executions": self.stats.executions,
                "completed": self.stats.completed,
                "failed": self.stats.failed,
                "coalesced": self.stats.coalesced,
                "result_cache_hits": self.stats.result_cache_hits,
                "in_flight": len(self._in_flight),
                "result_cache_entries": len(self._results),
                "coalescing_enabled": self.coalesce_requests,
                "max_workers": self.max_workers,
                "backends": backends,
            }

    @property
    def in_flight(self) -> int:
        with self._lock:
            return len(self._in_flight)

    def clear_result_cache(self) -> None:
        with self._lock:
            self._results.clear()

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Drain the request pool, close engines, release owned backends."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            slots = list(self._slots.values())
        self._pool.shutdown(wait=True)
        for slot in slots:
            slot.facade.close()
        for slot in slots:
            if slot.owned:
                close = getattr(slot.backend, "close", None)
                if close is not None:
                    close()
        with self._lock:
            self._in_flight.clear()
            self._results.clear()

    def _require_open(self) -> None:
        if self._closed:
            raise QueryError("service is closed")

    def __enter__(self) -> "SeeDBService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def single_backend_service(
    backend: Backend,
    config: "SeeDBConfig | None" = None,
    owned: bool = False,
    **service_kwargs,
) -> SeeDBService:
    """A service wrapping one backend under the default name."""
    service = SeeDBService(**service_kwargs)
    service.register_backend(DEFAULT_BACKEND, backend, config=config, owned=owned)
    return service
